#!/usr/bin/env python
"""Wall-clock benchmark: serial vs. parallel experiment execution.

Runs a fixed workload × setting matrix (the Figure 8 grid by default) twice
— once serially in-process, once fanned across worker processes via
:mod:`repro.eval.parallel` — and records wall times, the speedup, and the
kernel event-dispatch rate.  The two legs' metrics are asserted equal, so a
recorded speedup can never come from computing something different.

This seeds the repo's perf trajectory: the committed ``BENCH_parallel.json``
is a *record*, not a threshold — CI re-measures and uploads its own copy as
an artifact but only asserts the equality invariant, never a timing (see
docs/PERFORMANCE.md for how to read the file).

Usage::

    python tools/bench.py                 # full Fig-8 matrix, scale 0.25
    python tools/bench.py --quick         # small matrix for CI smoke runs
    python tools/bench.py --jobs 8 --out BENCH_parallel.json
    python tools/bench.py --load --out BENCH_load.json   # open-system sweep
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.eval.parallel import (  # noqa: E402
    RunRequest,
    _check_picklable,
    _mp_context,
    execute_request,
    resolve_jobs,
    run_requests,
)
from repro.eval.runner import run_workload, setting_by_name  # noqa: E402
from repro.workloads.registry import workload_names  # noqa: E402

#: The four evaluated settings' short-names, Figure 8 order.
FIG8_SETTINGS = ("vl", "0delay", "adapt", "tuned")

#: --quick: a 2-workload × 2-setting corner of the matrix at a small scale,
#: sized for a CI smoke job rather than a meaningful timing.
QUICK_WORKLOADS = ("ping-pong", "incast")
QUICK_SETTINGS = ("vl", "tuned")
QUICK_SCALE = 0.05


def build_requests(
    workloads: Sequence[str],
    settings: Sequence[str],
    scale: float,
    seed: int,
) -> List[RunRequest]:
    """The fixed matrix, flattened in Figure-8 (workload-major) order."""
    return [
        RunRequest.from_setting(w, setting_by_name(s), scale=scale, seed=seed)
        for w in workloads
        for s in settings
    ]


def measure_serial(requests: Sequence[RunRequest], clock=time.perf_counter):
    """Serial leg: metrics, wall seconds, and total kernel events dispatched.

    Runs in-process with ``return_system=True`` so the kernel's
    ``events_processed`` counter can be read per run — the events/sec
    denominator.  Event counts are deterministic, so they also stand for
    the parallel leg's work.
    """
    metrics, events = [], 0
    start = clock()
    for request in requests:
        m, system = run_workload(
            request.workload,
            request.setting(),
            scale=request.scale,
            config=request.config,
            seed=request.seed,
            limit=request.limit,
            return_system=True,
        )
        metrics.append(m)
        events += system.env.events_processed
    return metrics, clock() - start, events


def _warm_worker(token: int) -> int:
    """No-op task submitted once per worker to force its spawn."""
    return token


def measure_parallel(
    requests: Sequence[RunRequest],
    jobs: int,
    clock=time.perf_counter,
    pool_factory=None,
):
    """Parallel leg: metrics and wall seconds for the *simulation work only*.

    The pool is created and warmed (one no-op task per worker, so every
    worker process exists) before the clock starts: an events/sec figure
    that includes fork/spawn overhead understates throughput and shrinks
    as the matrix shrinks, which is exactly the distortion a CI smoke
    matrix maximizes.  *clock* and *pool_factory* are injectable for the
    fake-clock unit test (tests/test_bench_tool.py).
    """
    requests = list(requests)
    workers = min(resolve_jobs(jobs), len(requests)) if requests else 1
    if workers <= 1 and pool_factory is None:
        start = clock()
        metrics = run_requests(requests, jobs=1)
        return metrics, clock() - start
    if pool_factory is None:
        from concurrent.futures import ProcessPoolExecutor

        _check_picklable(requests)

        def pool_factory():
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=_mp_context()
            )

    with pool_factory() as pool:
        # Warm-up outside the timed region: one submit per worker makes
        # the executor spawn its full complement before the clock starts.
        for future in [pool.submit(_warm_worker, i) for i in range(workers)]:
            future.result()
        start = clock()
        futures = [pool.submit(execute_request, request) for request in requests]
        metrics = [future.result() for future in futures]
        wall = clock() - start
    return metrics, wall


def measure_obs_overhead(
    repeats: int = 3,
    scale: float = QUICK_SCALE,
    seed: int = 0xC0FFEE,
    threshold_pct: float = 3.0,
    clock=time.perf_counter,
) -> Dict:
    """The observability overhead gate (docs/OBSERVABILITY.md).

    Three serial legs over the quick matrix, best-of-*repeats* each:

    * ``off``  — plain runs, no registry, no subscribers (the perf-smoke
      path; every instrumentation site is behind a ``wants()``/``None``
      guard).
    * ``null`` — a :class:`~repro.obs.metrics.NullMetricsRegistry`
      attached: the disabled-stub configuration.  Its overhead over
      ``off`` is what the <3% gate bounds — the price of *having* the
      observability layer while it is switched off.
    * ``on``   — full MetricsRegistry + collector subscribed (recorded
      for the docs, not gated: enabling observability may legitimately
      cost more).

    Best-of-N damps scheduler noise; the legs alternate nothing (each leg
    finishes its repeats before the next starts) so turbo/thermal drift
    biases against no particular leg systematically.
    """
    from repro.obs.collector import MetricsCollector
    from repro.obs.metrics import NULL_METRICS, MetricsRegistry

    requests = build_requests(QUICK_WORKLOADS, QUICK_SETTINGS, scale, seed)

    def leg(on_system) -> float:
        best = None
        for _ in range(max(1, repeats)):
            start = clock()
            for request in requests:
                run_workload(
                    request.workload,
                    request.setting(),
                    scale=request.scale,
                    seed=request.seed,
                    on_system=on_system,
                )
            wall = clock() - start
            best = wall if best is None else min(best, wall)
        return best

    def attach_null(system) -> None:
        system.metrics = NULL_METRICS

    def attach_full(system) -> None:
        registry = MetricsRegistry()
        system.metrics = registry
        MetricsCollector(system.hooks, registry)

    # Untimed warmup pass: imports, registry resolution and allocator
    # warm-up otherwise land entirely on the first leg.
    for request in requests:
        run_workload(request.workload, request.setting(),
                     scale=request.scale, seed=request.seed)

    off = leg(None)
    null = leg(attach_null)
    on = leg(attach_full)
    overhead_null_pct = 100.0 * (null - off) / off if off else 0.0
    overhead_on_pct = 100.0 * (on - off) / off if off else 0.0
    return {
        "name": "obs-overhead-gate",
        "matrix": {
            "workloads": list(QUICK_WORKLOADS),
            "settings": list(QUICK_SETTINGS),
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
        },
        "off_s": round(off, 4),
        "null_s": round(null, 4),
        "on_s": round(on, 4),
        "overhead_disabled_pct": round(overhead_null_pct, 2),
        "overhead_enabled_pct": round(overhead_on_pct, 2),
        "threshold_pct": threshold_pct,
        "pass": overhead_null_pct < threshold_pct,
    }


#: The kernel-stress matrix: (name, steady pending entries, delta spread).
#: Each cell holds the pending set at a fixed depth (every dispatched tick
#: schedules one successor) with deterministic pseudo-random delays in
#: ``[1, spread]``, so events-per-cycle ≈ pending/spread.  These are the
#: deep-pending rows the ROADMAP's "10x the kernel" item targets (a
#: 256–1024-core system keeps hundreds-to-thousands of entries in
#: flight), where O(1) buckets beat O(log n) heap churn — the gated
#: bench matrix.
KERNEL_MATRIX = (
    ("dense-512", 512, 8),
    ("mixed-1024", 1024, 32),
    ("deep-4096", 4096, 64),
)

#: The shallow leg: C-heapq's historical home turf.  A 16-core sim queue
#: is about this deep; the ladder's sorted spine reclaimed it (both ends
#: are C calls with no heap sift), which is what earned the default flip
#: — so this row is now *gated* too: the default must not lose it
#: (docs/PERFORMANCE.md §5).
KERNEL_CONTEXT = (
    ("shallow-16", 16, 64),
)

#: The sim leg: the Figure-8/9 workload set end to end at a small scale.
#: Wall-clock differences here are diluted by device and workload code —
#: which is exactly the point: this is the rate real experiments see.
SIM_LEG_WORKLOADS = ("ping-pong", "incast", "pipeline", "firewall", "FIR")
SIM_LEG_SETTINGS = ("vl", "tuned")


def _kernel_stress(scheduler: str, pending: int, spread: int,
                   total_events: int, clock=time.perf_counter):
    """One pure-kernel cell: self-rescheduling deferred calls, no Events.

    Uses :meth:`Environment.call_later` so the measurement isolates queue
    push/pop/dispatch — no Event or Process allocation dilutes the
    scheduler difference.  Returns ``(events, wall_s, checksum, now)``;
    the checksum folds every ``(now, idx)`` dispatch into a rolling hash,
    so cross-scheduler equality of the tuple proves identical dispatch
    order, not just identical totals.
    """
    from repro.sim.kernel import Environment

    deltas = [1 + (i * 2654435761) % spread for i in range(1024)]
    env = Environment(scheduler=scheduler)
    state = [total_events - pending, 0]  # [remaining to spawn, checksum]

    def tick(idx: int) -> None:
        now = env.now
        state[1] = (state[1] * 1000003 + (now ^ idx)) & 0xFFFFFFFFFFFF
        if state[0] > 0:
            state[0] -= 1
            env.call_later(deltas[(now + idx) & 1023], tick, idx)

    for i in range(pending):
        env.call_later(deltas[i & 1023], tick, i)
    start = clock()
    env.run()
    wall = clock() - start
    return env.events_processed, wall, state[1], env.now


def profile_kernel(top_n: int = 15) -> List[Dict]:
    """cProfile the deep-pending stress cell; return the top-N rows.

    Committed as part of the bench record (``--kernel --profile``) so the
    hot-path shape is reviewable in the artifact: what should dominate is
    the tick callback and ``call_later`` themselves — any scheduler-side
    Python frame showing up high means an inline fast path regressed.
    """
    import cProfile
    import pstats
    from repro.sim.sched import DEFAULT_SCHEDULER

    profiler = cProfile.Profile()
    profiler.enable()
    _kernel_stress(DEFAULT_SCHEDULER, 4096, 64, 200_000)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )[:top_n]:
        filename, line, name = func
        rows.append({
            "function": f"{Path(filename).name}:{line}:{name}",
            "ncalls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
    return rows


def run_kernel_benchmark(
    schedulers: Optional[Sequence[str]] = None,
    total_events: int = 300_000,
    repeats: int = 3,
    scale: float = QUICK_SCALE,
    seed: int = 0xC0FFEE,
    quick: bool = False,
    profile: bool = False,
    clock=time.perf_counter,
) -> Dict:
    """Events/sec per scheduler × workload — the BENCH_kernel.json document.

    Three legs per scheduler, equality-asserted before anything is
    recorded:

    * **kernel** — the deep-pending stress matrix, best-of-*repeats* wall
      time per cell after one untimed warm-up iteration (first-iteration
      bytecode/allocator warm-up otherwise pollutes the shallow cells),
      with the dispatch-order checksum required identical across
      schedulers.
    * **kernel_context** — the shallow-16 cell, same protocol.
    * **sim** — the Figure-8/9 workload set end to end
      (:data:`SIM_LEG_WORKLOADS`), with every metrics dataclass required
      equal to the heap leg's.

    The committed gate is the default-flip evidence: the default
    scheduler must be at least as fast as the heap on the shallow-16 leg
    AND ≥1.3× the heap on the deep-pending aggregate.  Timings are
    otherwise records, not thresholds, like every BENCH_*.json.
    """
    from repro.sim.sched import DEFAULT_SCHEDULER, scheduler_names

    schedulers = list(schedulers or scheduler_names())
    if "heap" in schedulers:  # reference leg first
        schedulers.sort(key=lambda s: (s != "heap", s))
    if quick:
        total_events = min(total_events, 120_000)
        repeats = min(repeats, 2)
    repeats = max(1, repeats)
    warmup = 1

    aggregate = {name: [0, 0.0] for name in schedulers}  # events, wall

    def stress_rows(matrix, gated: bool, n_repeats: int) -> Dict[str, Dict]:
        rows: Dict[str, Dict] = {}
        for workload, pending, spread in matrix:
            # Untimed warm-up iteration per scheduler: the first pass pays
            # bytecode specialization and allocator growth; only the timed
            # repeats after it count.
            for name in schedulers:
                for _ in range(warmup):
                    _kernel_stress(name, pending, spread, total_events,
                                   clock=clock)
            # Timed repeats are *interleaved* across schedulers (repeat 1
            # of every scheduler, then repeat 2, ...) so CPU frequency
            # drift over the run biases no single strategy, and the order
            # *rotates* every round so no scheduler always runs in the
            # hottest (post-slow-run) slot; best-of-N then discards the
            # scheduling hiccups.
            best: Dict[str, tuple] = {}
            for rep in range(n_repeats):
                shift = rep % len(schedulers)
                for name in schedulers[shift:] + schedulers[:shift]:
                    events, wall, checksum, now = _kernel_stress(
                        name, pending, spread, total_events, clock=clock
                    )
                    if name not in best or wall < best[name][1]:
                        best[name] = (events, wall, checksum, now)
            row: Dict[str, Dict] = {}
            reference = None
            for name in schedulers:
                events, wall, checksum, now = best[name]
                if reference is None:
                    reference = (events, checksum, now)
                else:
                    assert (events, checksum, now) == reference, (
                        f"{workload}: {name} diverged from "
                        f"{schedulers[0]}: {(events, checksum, now)} != "
                        f"{reference}"
                    )
                row[name] = {
                    "events": events,
                    "wall_s": round(wall, 4),
                    "events_per_s": round(events / wall) if wall else None,
                }
                if gated:
                    aggregate[name][0] += events
                    aggregate[name][1] += wall
            rows[workload] = row
        return rows

    kernel = stress_rows(KERNEL_MATRIX, gated=True, n_repeats=repeats)
    kernel_context = stress_rows(KERNEL_CONTEXT, gated=False,
                                 n_repeats=repeats)

    # The shallow half of the flip gate is a few-percent effect measured
    # on machines whose clock drifts by more than that over minutes, so
    # a ratio of independent best-of-N rates flips sign with the
    # weather.  The gate therefore uses a *paired* measurement: heap and
    # the default run back-to-back (seconds apart), each pair yielding
    # one wall-clock ratio — common-mode drift cancels inside a pair.
    # The order alternates over an even pair count so whatever bias the
    # second-in-pair slot carries hits both sides equally, and the
    # statistic is the geometric mean with the single best and worst
    # pair trimmed (a background hiccup lands in exactly one run of one
    # pair, so trimming one tail each discards it without skew).
    def paired_shallow() -> Tuple[Optional[float], Dict[str, float]]:
        workload, pending, spread = KERNEL_CONTEXT[0]
        contenders = ("heap", DEFAULT_SCHEDULER)
        rates = {name: 0.0 for name in contenders}
        if DEFAULT_SCHEDULER == "heap":
            return 1.0, rates
        n_pairs = max(repeats * 3, 8)
        n_pairs += n_pairs % 2  # equal counts of both orders
        ratios = []
        for i in range(n_pairs):
            order = contenders if i % 2 == 0 else contenders[::-1]
            walls = {}
            for name in order:
                events, wall, _, _ = _kernel_stress(
                    name, pending, spread, total_events, clock=clock
                )
                walls[name] = wall
                if wall:
                    rates[name] = max(rates[name], events / wall)
            if walls[DEFAULT_SCHEDULER]:
                ratios.append(walls["heap"] / walls[DEFAULT_SCHEDULER])
        if not ratios:
            return None, rates
        ratios.sort()
        trimmed = ratios[1:-1] if len(ratios) > 2 else ratios
        log_mean = sum(math.log(r) for r in trimmed) / len(trimmed)
        return math.exp(log_mean), rates

    shallow_ratio, paired_rates = paired_shallow()

    # End-to-end sim leg: the Fig-8/9 workload set per scheduler, metrics
    # asserted equal — wall-clock differences here are diluted by device
    # and workload code, which is exactly why this leg is recorded next
    # to the synthetic ones.
    from repro.config import SystemConfig

    sim_workloads = QUICK_WORKLOADS if quick else SIM_LEG_WORKLOADS
    sim_settings = QUICK_SETTINGS if quick else SIM_LEG_SETTINGS

    def sim_requests(name):
        config = SystemConfig(scheduler=name)
        return [
            RunRequest.from_setting(w, setting_by_name(s), scale=scale,
                                    seed=seed, config=config)
            for w in sim_workloads
            for s in sim_settings
        ]

    # Untimed warm-up pass per scheduler (imports, registries, allocator,
    # bytecode specialization) so no timed leg is charged for start-up.
    for name in schedulers:
        measure_serial(sim_requests(name), clock=clock)

    # Interleaved, rotated repeats, same rationale as the stress rows.
    sim_best: Dict[str, tuple] = {}
    for rep in range(repeats):
        shift = rep % len(schedulers)
        for name in schedulers[shift:] + schedulers[:shift]:
            metrics, wall, events = measure_serial(sim_requests(name),
                                                   clock=clock)
            if name not in sim_best or wall < sim_best[name][1]:
                sim_best[name] = (metrics, wall, events)

    sim: Dict[str, Dict] = {}
    sim_reference = None
    sim_identical = True
    for name in schedulers:
        metrics, wall, events = sim_best[name]
        snapshot = [dataclasses.asdict(m) for m in metrics]
        if sim_reference is None:
            sim_reference = snapshot
        elif snapshot != sim_reference:
            sim_identical = False
        sim[name] = {
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_s": round(events / wall) if wall else None,
        }
    assert sim_identical, "sim metrics diverged across schedulers"

    rates = {
        name: (events / wall if wall else 0.0)
        for name, (events, wall) in aggregate.items()
    }
    heap_rate = rates.get("heap", 0.0)
    default_rate = rates.get(DEFAULT_SCHEDULER, 0.0)
    heap_shallow = paired_rates.get("heap", 0.0)
    default_shallow = paired_rates.get(DEFAULT_SCHEDULER, 0.0)
    heap_sim = sim.get("heap", {}).get("events_per_s") or 0
    default_sim = sim.get(DEFAULT_SCHEDULER, {}).get("events_per_s") or 0
    deep_ratio = default_rate / heap_rate if heap_rate else None
    result = {
        "name": "kernel-scheduler-wallclock",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "matrix": {
            "kernel": [
                {"workload": w, "pending": p, "delta_spread": d,
                 "total_events": total_events}
                for w, p, d in KERNEL_MATRIX
            ],
            "kernel_context": [
                {"workload": w, "pending": p, "delta_spread": d,
                 "total_events": total_events}
                for w, p, d in KERNEL_CONTEXT
            ],
            "sim": {
                "workloads": list(sim_workloads),
                "settings": list(sim_settings),
                "scale": scale,
                "seed": seed,
            },
            "repeats": repeats,
            "iterations": repeats,
            "warmup": warmup,
        },
        "schedulers": schedulers,
        "default_scheduler": DEFAULT_SCHEDULER,
        "kernel": kernel,
        "kernel_context": kernel_context,
        "sim": sim,
        "aggregate_events_per_s": {
            name: round(rate) for name, rate in rates.items()
        },
        "gate": {
            "metric": (
                f"default ({DEFAULT_SCHEDULER}) vs heap: shallow-16 "
                f"trimmed-gmean paired ratio >= 1.0 AND deep-pending "
                f"aggregate ratio >= 1.3"
            ),
            "shallow_method": (
                "trimmed geometric mean of wall-clock ratios over "
                "adjacent heap/default pairs, order alternating over an "
                "even pair count (common-mode drift cancels inside a "
                "pair, order bias cancels across the even split, and "
                "trimming the single best/worst pair discards a one-off "
                "background hiccup)"
            ),
            "heap_events_per_s": round(heap_rate),
            "default_events_per_s": round(default_rate),
            "deep_ratio": round(deep_ratio, 3) if deep_ratio else None,
            "shallow_heap_events_per_s": round(heap_shallow),
            "shallow_default_events_per_s": round(default_shallow),
            "shallow_ratio": (
                round(shallow_ratio, 3) if shallow_ratio else None
            ),
            "sim_heap_events_per_s": heap_sim,
            "sim_default_events_per_s": default_sim,
            "sim_ratio": (
                round(default_sim / heap_sim, 3) if heap_sim else None
            ),
            "pass": bool(
                shallow_ratio and deep_ratio
                and shallow_ratio >= 1.0 and deep_ratio >= 1.3
            ),
        },
        "identical": sim_identical,
    }
    if profile:
        result["profile"] = {
            "cell": {"pending": 4096, "delta_spread": 64,
                     "total_events": 200_000,
                     "scheduler": DEFAULT_SCHEDULER},
            "sort": "cumulative",
            "top": profile_kernel(),
        }
    return result


def check_perf_floor(result: Dict, baseline_path: Path,
                     tolerance_pct: float = 15.0) -> Optional[str]:
    """Record-and-tolerate perf floor against a committed BENCH_kernel.json.

    Returns an error string when the default scheduler's aggregate
    events/sec fell more than *tolerance_pct* below the committed record,
    None otherwise (including when the baseline is unreadable — a missing
    or foreign-format baseline must not fail CI).
    """
    try:
        baseline = json.loads(Path(baseline_path).read_text())
    except (OSError, ValueError):
        return None
    name = result.get("default_scheduler", "heap")
    committed = (baseline.get("aggregate_events_per_s") or {}).get(name)
    measured = (result.get("aggregate_events_per_s") or {}).get(name)
    if not committed or not measured:
        return None
    floor = committed * (1.0 - tolerance_pct / 100.0)
    if measured < floor:
        return (
            f"aggregate {name} events/sec {measured} fell more than "
            f"{tolerance_pct}% below the committed record {committed} "
            f"(floor {round(floor)})"
        )
    return None


def run_load_benchmark(
    workload: str = "incast",
    arrival: str = "poisson",
    scale: float = 0.25,
    seed: int = 0xC0FFEE,
    jobs: int = 0,
    quick: bool = False,
    clock=time.perf_counter,
) -> Dict:
    """Wall-clock the open-system load sweep (BENCH_load.json).

    Runs :func:`repro.eval.load.load_experiment` twice — ``jobs=1`` and
    ``jobs=N`` — and asserts the two reports are byte-identical before
    recording anything: the load sweep carries the same deterministic-
    across-``--jobs`` contract as the Figure-8 matrix.  The recorded rate
    is *simulated requests completed per wall second*, summed over the
    calibration and sweep phases.  Unlike :func:`measure_parallel` the
    parallel leg here includes pool spawn (the sweep spawns its own
    executors internally), so quick-matrix rates understate steady-state
    throughput — they are trend lines, not absolutes.
    """
    from repro.eval.load import (
        DEFAULT_RHOS,
        DEFAULT_SETTINGS,
        DEFAULT_TOPOLOGIES,
        load_experiment,
    )

    topologies = ("single-bus", "mesh") if quick else DEFAULT_TOPOLOGIES
    rhos = (0.5, 1.1) if quick else DEFAULT_RHOS
    settings = DEFAULT_SETTINGS
    effective_jobs = resolve_jobs(jobs)

    def leg(n_jobs: int):
        start = clock()
        result = load_experiment(
            workload=workload,
            arrival=arrival,
            settings=settings,
            topologies=topologies,
            rhos=rhos,
            scale=scale,
            seed=seed,
            jobs=n_jobs,
        )
        return result, clock() - start

    serial, serial_wall = leg(1)
    parallel, parallel_wall = leg(effective_jobs)
    identical = serial.to_json() == parallel.to_json()

    completed = sum(row["requests"] for row in serial.rows) + sum(
        cell["requests"] for cell in serial.calibration
    )
    return {
        "name": "load-sweep-wallclock",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "matrix": {
            "workload": workload,
            "arrival": arrival,
            "settings": list(settings),
            "topologies": list(topologies),
            "rhos": list(rhos),
            "scale": scale,
            "seed": seed,
            "runs": len(serial.calibration) + len(serial.rows),
        },
        "requests_completed": completed,
        "serial": {
            "wall_s": round(serial_wall, 4),
            "requests_per_s": (
                round(completed / serial_wall) if serial_wall else None
            ),
        },
        "parallel": {
            "jobs": effective_jobs,
            "wall_s": round(parallel_wall, 4),
            "requests_per_s": (
                round(completed / parallel_wall) if parallel_wall else None
            ),
        },
        "speedup": (
            round(serial_wall / parallel_wall, 3) if parallel_wall else None
        ),
        "identical": identical,
    }


def run_serve_benchmark(
    workloads: Optional[Sequence[str]] = None,
    settings: Optional[Sequence[str]] = None,
    scale: float = QUICK_SCALE,
    seed: int = 0xC0FFEE,
    jobs: int = 0,
    quick: bool = False,
    clock=time.perf_counter,
) -> Dict:
    """Wall-clock the serve layer against cold ``run_requests`` — the
    BENCH_serve.json document.

    Four passes over the same matrix, equality-asserted byte-wise (the
    pickled-metrics bytes the result cache stores) before anything is
    recorded:

    * **cold ×2** — ``run_requests(requests, jobs=N)`` twice, each call
      spawning and tearing down its own process pool.  This is what
      back-to-back sweeps pay without the serve layer: the worker spawn
      cost lands on every call.
    * **warm** — the same requests through
      :class:`~repro.serve.ServeExecutor` on an embedded daemon whose
      pool was started (and warmed) before the clock: the steady-state
      submit-to-result latency a resident daemon gives every sweep after
      the first.
    * **cached** — the same requests again on the same daemon: every
      cell is a content-addressed cache hit, asserted 100%, and the
      bytes returned are the exact bytes the warm pass stored.

    Timings are records, not thresholds, like every BENCH_*.json — but
    the warm-vs-cold comparison is the serve layer's reason to exist, so
    the document calls it out as ``speedup_warm_vs_cold``.
    """
    import pickle

    from repro.serve import ServeExecutor

    workloads = list(workloads or (QUICK_WORKLOADS if quick else workload_names()))
    settings = list(settings or (QUICK_SETTINGS if quick else FIG8_SETTINGS))
    effective_jobs = resolve_jobs(jobs)
    requests = build_requests(workloads, settings, scale, seed)

    def snapshot(metrics_list):
        from repro.eval.parallel import CACHE_PICKLE_PROTOCOL

        return [
            pickle.dumps(m, protocol=CACHE_PICKLE_PROTOCOL)
            for m in metrics_list
        ]

    # Untimed warm-up: imports, registries, bytecode specialization land
    # here rather than on the first timed pass.
    run_requests(requests[:1], jobs=1)

    cold_walls = []
    cold_snapshot = None
    for _ in range(2):
        start = clock()
        metrics = run_requests(requests, jobs=jobs)
        cold_walls.append(clock() - start)
        blobs = snapshot(metrics)
        assert cold_snapshot is None or blobs == cold_snapshot, (
            "cold passes diverged byte-wise"
        )
        cold_snapshot = blobs

    with ServeExecutor.local(jobs=jobs) as executor:
        start = clock()
        warm_metrics = executor(requests)
        warm_wall = clock() - start
        assert snapshot(warm_metrics) == cold_snapshot, (
            "warm-pool metrics diverged byte-wise from cold run_requests"
        )

        start = clock()
        cached_metrics = executor(requests)
        cached_wall = clock() - start
        assert snapshot(cached_metrics) == cold_snapshot, (
            "cached metrics diverged byte-wise from cold run_requests"
        )
        cache_stats = executor.daemon.cache.stats()

    hits = cache_stats["hits"]
    assert hits >= len(requests), (
        f"second serve pass was not fully cached: {hits} hits for "
        f"{len(requests)} requests"
    )

    cold_wall = min(cold_walls)
    n = len(requests)
    return {
        "name": "serve-wallclock",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "matrix": {
            "workloads": workloads,
            "settings": settings,
            "scale": scale,
            "seed": seed,
            "runs": n,
        },
        "jobs": effective_jobs,
        "cold": {
            "wall_s": [round(w, 4) for w in cold_walls],
            "best_wall_s": round(cold_wall, 4),
            "latency_ms_per_run": (
                round(1000.0 * cold_wall / n, 2) if n else None
            ),
        },
        "warm": {
            "wall_s": round(warm_wall, 4),
            "latency_ms_per_run": (
                round(1000.0 * warm_wall / n, 2) if n else None
            ),
        },
        "cached": {
            "wall_s": round(cached_wall, 4),
            "latency_ms_per_run": (
                round(1000.0 * cached_wall / n, 2) if n else None
            ),
            "hit_rate": cache_stats["hit_rate"],
        },
        "cache": cache_stats,
        "speedup_warm_vs_cold": (
            round(cold_wall / warm_wall, 3) if warm_wall else None
        ),
        "speedup_cached_vs_cold": (
            round(cold_wall / cached_wall, 3) if cached_wall else None
        ),
        "identical": True,
    }


def run_benchmark(
    workloads: Optional[Sequence[str]] = None,
    settings: Optional[Sequence[str]] = None,
    scale: float = 0.25,
    seed: int = 0xC0FFEE,
    jobs: int = 0,
    requests: Optional[List[RunRequest]] = None,
    name: str = "parallel-executor-wallclock",
    matrix_extra: Optional[Dict] = None,
) -> Dict:
    """Measure both legs and return the BENCH_parallel.json document.

    *requests* overrides the workload × setting matrix with a prebuilt
    request list (the ``--net`` scaling matrix); *matrix_extra* merges
    extra keys into the recorded matrix description.
    """
    workloads = list(workloads or workload_names())
    settings = list(settings or FIG8_SETTINGS)
    effective_jobs = resolve_jobs(jobs)
    if requests is None:
        requests = build_requests(workloads, settings, scale, seed)

    serial_metrics, serial_wall, events = measure_serial(requests)
    parallel_metrics, parallel_wall = measure_parallel(requests, jobs=jobs)

    identical = [dataclasses.asdict(m) for m in serial_metrics] == [
        dataclasses.asdict(m) for m in parallel_metrics
    ]
    matrix = {
        "workloads": workloads,
        "settings": settings,
        "scale": scale,
        "seed": seed,
        "runs": len(requests),
    }
    if matrix_extra:
        matrix.update(matrix_extra)
    return {
        "name": name,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "matrix": matrix,
        "serial": {
            "wall_s": round(serial_wall, 4),
            "kernel_events": events,
            "events_per_s": round(events / serial_wall) if serial_wall else None,
        },
        "parallel": {
            "jobs": effective_jobs,
            "wall_s": round(parallel_wall, 4),
            "events_per_s": (
                round(events / parallel_wall) if parallel_wall else None
            ),
        },
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else None,
        "identical": identical,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs parallel wall-clock benchmark "
                    "(record-only timings + equality check)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small matrix for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel-leg worker count (0 = all cores)")
    parser.add_argument("--scale", type=float, default=None,
                        help="message-count scale (default 0.25, quick 0.05)")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON document here "
                             "(e.g. BENCH_parallel.json)")
    parser.add_argument("--net", action="store_true",
                        help="bench the interconnect scaling matrix "
                             "(repro scale: cores x topology x device) "
                             "instead of the Fig-8 grid")
    parser.add_argument("--load", action="store_true",
                        help="bench the open-system load sweep "
                             "(repro load: tail latency vs offered load) "
                             "instead of the Fig-8 grid")
    parser.add_argument("--serve", action="store_true",
                        help="bench the serve layer: cold run_requests vs "
                             "warm-pool daemon vs 100%%-cached second pass, "
                             "byte-identity asserted across all legs "
                             "(writes BENCH_serve.json with --out)")
    parser.add_argument("--kernel", action="store_true",
                        help="bench events/sec per pending-queue scheduler "
                             "(pure-kernel stress matrix + Fig-8/9 sim "
                             "leg, equality-asserted; writes "
                             "BENCH_kernel.json with --out)")
    parser.add_argument("--profile", action="store_true",
                        help="with --kernel: cProfile the deep stress "
                             "cell and embed the top-N cumulative rows "
                             "in the record")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="with --kernel: fail if the default "
                             "scheduler's aggregate events/sec regresses "
                             ">15%% below this committed BENCH_kernel.json "
                             "(record-and-tolerate perf floor)")
    parser.add_argument("--obs-gate", type=int, default=0, metavar="N",
                        help="run the observability overhead gate instead "
                             "(best-of-N legs; fails if the disabled-"
                             "instrumentation overhead exceeds 3%%)")
    args = parser.parse_args(argv)

    if args.obs_gate:
        result = measure_obs_overhead(
            repeats=args.obs_gate,
            scale=args.scale if args.scale is not None else QUICK_SCALE,
            seed=args.seed,
        )
        document = json.dumps(result, indent=2, sort_keys=True)
        print(document)
        if args.out:
            Path(args.out).write_text(document + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        if not result["pass"]:
            print(
                f"FAIL: disabled-observability overhead "
                f"{result['overhead_disabled_pct']}% exceeds "
                f"{result['threshold_pct']}%",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.kernel:
        result = run_kernel_benchmark(
            scale=args.scale if args.scale is not None else QUICK_SCALE,
            seed=args.seed,
            quick=args.quick,
            profile=args.profile,
        )
        document = json.dumps(result, indent=2, sort_keys=True)
        print(document)
        if args.out:
            Path(args.out).write_text(document + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        if not result["gate"]["pass"]:
            gate = result["gate"]
            message = (
                f"default scheduler did not earn its flip: "
                f"shallow-16 ratio {gate['shallow_ratio']} (need >= 1.0), "
                f"deep aggregate ratio {gate['deep_ratio']} (need >= 1.3)"
            )
            if args.baseline:
                # Floor mode (CI): the flip gate was earned on the quiet
                # machine that committed the baseline; on shared runners
                # the shallow half is a ~5% effect inside scheduler noise,
                # so it only warns there — the 15% floor below is the
                # enforced contract.
                print(f"WARN: {message}", file=sys.stderr)
            else:
                print(f"FAIL: {message}", file=sys.stderr)
                return 1
        if args.baseline:
            error = check_perf_floor(result, Path(args.baseline))
            if error:
                print(f"FAIL: perf floor: {error}", file=sys.stderr)
                return 1
        return 0

    if args.serve:
        result = run_serve_benchmark(
            scale=args.scale if args.scale is not None else QUICK_SCALE,
            seed=args.seed,
            jobs=args.jobs,
            quick=args.quick,
        )
    elif args.load:
        result = run_load_benchmark(
            scale=args.scale if args.scale is not None else (
                QUICK_SCALE if args.quick else 0.25
            ),
            seed=args.seed,
            jobs=args.jobs,
            quick=args.quick,
        )
    elif args.net:
        from repro.eval.scaling import (  # noqa: E402
            DEFAULT_CORES,
            DEFAULT_SCALE,
            DEFAULT_SETTINGS,
            DEFAULT_TOPOLOGIES,
            scaling_requests,
        )

        cores = (8, 16) if args.quick else DEFAULT_CORES
        scale = args.scale if args.scale is not None else DEFAULT_SCALE
        result = run_benchmark(
            scale=scale,
            seed=args.seed,
            jobs=args.jobs,
            requests=scaling_requests(cores=cores, scale=scale,
                                      seed=args.seed),
            name="net-scaling-wallclock",
            matrix_extra={
                "workloads": ["scaling-halo"],
                "settings": list(DEFAULT_SETTINGS),
                "cores": list(cores),
                "topologies": list(DEFAULT_TOPOLOGIES),
            },
        )
    else:
        result = run_benchmark(
            workloads=QUICK_WORKLOADS if args.quick else None,
            settings=QUICK_SETTINGS if args.quick else None,
            scale=args.scale if args.scale is not None else (
                QUICK_SCALE if args.quick else 0.25
            ),
            seed=args.seed,
            jobs=args.jobs,
        )

    document = json.dumps(result, indent=2, sort_keys=True)
    print(document)
    if args.out:
        Path(args.out).write_text(document + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if not result["identical"]:
        print("FAIL: parallel metrics differ from serial metrics",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
