#!/usr/bin/env python
"""Wall-clock benchmark: serial vs. parallel experiment execution.

Runs a fixed workload × setting matrix (the Figure 8 grid by default) twice
— once serially in-process, once fanned across worker processes via
:mod:`repro.eval.parallel` — and records wall times, the speedup, and the
kernel event-dispatch rate.  The two legs' metrics are asserted equal, so a
recorded speedup can never come from computing something different.

This seeds the repo's perf trajectory: the committed ``BENCH_parallel.json``
is a *record*, not a threshold — CI re-measures and uploads its own copy as
an artifact but only asserts the equality invariant, never a timing (see
docs/PERFORMANCE.md for how to read the file).

Usage::

    python tools/bench.py                 # full Fig-8 matrix, scale 0.25
    python tools/bench.py --quick         # small matrix for CI smoke runs
    python tools/bench.py --jobs 8 --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.eval.parallel import RunRequest, resolve_jobs, run_requests  # noqa: E402
from repro.eval.runner import run_workload, setting_by_name  # noqa: E402
from repro.workloads.registry import workload_names  # noqa: E402

#: The four evaluated settings' short-names, Figure 8 order.
FIG8_SETTINGS = ("vl", "0delay", "adapt", "tuned")

#: --quick: a 2-workload × 2-setting corner of the matrix at a small scale,
#: sized for a CI smoke job rather than a meaningful timing.
QUICK_WORKLOADS = ("ping-pong", "incast")
QUICK_SETTINGS = ("vl", "tuned")
QUICK_SCALE = 0.05


def build_requests(
    workloads: Sequence[str],
    settings: Sequence[str],
    scale: float,
    seed: int,
) -> List[RunRequest]:
    """The fixed matrix, flattened in Figure-8 (workload-major) order."""
    return [
        RunRequest.from_setting(w, setting_by_name(s), scale=scale, seed=seed)
        for w in workloads
        for s in settings
    ]


def measure_serial(requests: Sequence[RunRequest]):
    """Serial leg: metrics, wall seconds, and total kernel events dispatched.

    Runs in-process with ``return_system=True`` so the kernel's
    ``events_processed`` counter can be read per run — the events/sec
    denominator.  Event counts are deterministic, so they also stand for
    the parallel leg's work.
    """
    metrics, events = [], 0
    start = time.perf_counter()
    for request in requests:
        m, system = run_workload(
            request.workload,
            request.setting(),
            scale=request.scale,
            config=request.config,
            seed=request.seed,
            limit=request.limit,
            return_system=True,
        )
        metrics.append(m)
        events += system.env.events_processed
    return metrics, time.perf_counter() - start, events


def measure_parallel(requests: Sequence[RunRequest], jobs: int):
    """Parallel leg: metrics and wall seconds (pool startup included)."""
    start = time.perf_counter()
    metrics = run_requests(requests, jobs=jobs)
    return metrics, time.perf_counter() - start


def run_benchmark(
    workloads: Optional[Sequence[str]] = None,
    settings: Optional[Sequence[str]] = None,
    scale: float = 0.25,
    seed: int = 0xC0FFEE,
    jobs: int = 0,
) -> Dict:
    """Measure both legs and return the BENCH_parallel.json document."""
    workloads = list(workloads or workload_names())
    settings = list(settings or FIG8_SETTINGS)
    effective_jobs = resolve_jobs(jobs)
    requests = build_requests(workloads, settings, scale, seed)

    serial_metrics, serial_wall, events = measure_serial(requests)
    parallel_metrics, parallel_wall = measure_parallel(requests, jobs=jobs)

    identical = [dataclasses.asdict(m) for m in serial_metrics] == [
        dataclasses.asdict(m) for m in parallel_metrics
    ]
    return {
        "name": "parallel-executor-wallclock",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "matrix": {
            "workloads": workloads,
            "settings": settings,
            "scale": scale,
            "seed": seed,
            "runs": len(requests),
        },
        "serial": {
            "wall_s": round(serial_wall, 4),
            "kernel_events": events,
            "events_per_s": round(events / serial_wall) if serial_wall else None,
        },
        "parallel": {
            "jobs": effective_jobs,
            "wall_s": round(parallel_wall, 4),
            "events_per_s": (
                round(events / parallel_wall) if parallel_wall else None
            ),
        },
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else None,
        "identical": identical,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs parallel wall-clock benchmark "
                    "(record-only timings + equality check)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small matrix for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel-leg worker count (0 = all cores)")
    parser.add_argument("--scale", type=float, default=None,
                        help="message-count scale (default 0.25, quick 0.05)")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON document here "
                             "(e.g. BENCH_parallel.json)")
    args = parser.parse_args(argv)

    result = run_benchmark(
        workloads=QUICK_WORKLOADS if args.quick else None,
        settings=QUICK_SETTINGS if args.quick else None,
        scale=args.scale if args.scale is not None else (
            QUICK_SCALE if args.quick else 0.25
        ),
        seed=args.seed,
        jobs=args.jobs,
    )

    document = json.dumps(result, indent=2, sort_keys=True)
    print(document)
    if args.out:
        Path(args.out).write_text(document + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if not result["identical"]:
        print("FAIL: parallel metrics differ from serial metrics",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
