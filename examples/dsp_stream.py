#!/usr/bin/env python
"""Streaming DSP: a real FIR filter distributed over a thread-per-tap chain.

Runs the paper's best-case workload (FIR, Table 2) at full scale under the
VL baseline and SPAMeR, verifies the filtered output against a direct
convolution, and shows the speedup and where it comes from (fast-path pops).

Run:  python examples/dsp_stream.py
"""

import numpy as np

from repro.eval import run_workload, standard_settings
from repro.units import cycles_to_us
from repro.workloads import make_workload
from repro.system import System


def main() -> None:
    # --- run the Table 2 FIR benchmark under every setting ----------------
    print("10-stage FIR chain, 600 samples (bursty source)\n")
    baseline = None
    for setting in standard_settings():
        metrics = run_workload("FIR", setting, scale=1.0)
        if baseline is None:
            baseline = metrics
        print(
            f"{setting.label:16s} {cycles_to_us(metrics.exec_cycles):9.1f} us  "
            f"speedup {metrics.speedup_over(baseline):4.2f}x  "
            f"push-failures {metrics.failure_rate:6.2%}  "
            f"bus {metrics.bus_utilization:6.2%}"
        )

    # --- show the numerics are real ---------------------------------------
    workload = make_workload("FIR", scale=0.5)
    system = System(device="spamer", algorithm="tuned")
    workload.build(system)
    system.run_to_completion()
    workload.validate()

    x = np.asarray(workload.inputs)
    y = np.empty(len(x))
    for n, value in workload.results:
        y[n] = value
    expected = np.convolve(x, workload.coefficients)[: len(x)]
    print(f"\nfiltered {len(x)} samples; max |error| vs numpy convolution: "
          f"{np.max(np.abs(y - expected)):.2e}")
    print(f"first taps of the distributed filter: {workload.coefficients[:4]}")


if __name__ == "__main__":
    main()
