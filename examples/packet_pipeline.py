#!/usr/bin/env python
"""Network-function pipeline: parse → classify (3-wide) → meter → transmit.

The kind of packet-processing dataflow the paper's introduction motivates:
a custom 4-stage pipeline built directly on the public queue API (not the
canned Table 2 workload), run under all four evaluated settings.

Run:  python examples/packet_pipeline.py
"""

from repro import System
from repro.eval import standard_settings
from repro.units import cycles_to_us
from repro.workloads import WorkCounter

PACKETS = 600
CLASSIFY_WIDTH = 3
PARSE = 90          # cycles per packet
CLASSIFY = 310      # the heavy multi-threaded stage
METER = 120
WINDOW = 16         # transmit->parse credit window


def run_pipeline(setting) -> int:
    system: System = setting.build_system()
    lib = system.library
    q_parse, q_meter, q_tx, q_credit = (lib.create_queue() for _ in range(4))

    parse_prod = lib.open_producer(q_parse, 0)
    classify_cons = [lib.open_consumer(q_parse, 1 + i) for i in range(CLASSIFY_WIDTH)]
    classify_prod = [lib.open_producer(q_meter, 1 + i) for i in range(CLASSIFY_WIDTH)]
    meter_cons = lib.open_consumer(q_meter, 1 + CLASSIFY_WIDTH)
    meter_prod = lib.open_producer(q_tx, 1 + CLASSIFY_WIDTH)
    tx_cons = lib.open_consumer(q_tx, 2 + CLASSIFY_WIDTH)
    credit_prod = lib.open_producer(q_credit, 2 + CLASSIFY_WIDTH)
    credit_cons = lib.open_consumer(q_credit, 0)

    classify_work = WorkCounter(PACKETS)

    def parser(ctx):
        in_flight = 0
        for i in range(PACKETS):
            if in_flight >= WINDOW:
                yield from ctx.pop(credit_cons)
                in_flight -= 1
            yield from ctx.compute_jittered(PARSE, 0.1)
            yield from ctx.push(parse_prod, ("pkt", i))
            in_flight += 1
        while in_flight:
            yield from ctx.pop(credit_cons)
            in_flight -= 1

    def make_classifier(idx):
        def classifier(ctx):
            while True:
                msg = yield from ctx.pop_until(classify_cons[idx], classify_work.all_done)
                if msg is None:
                    return
                yield from ctx.compute_jittered(CLASSIFY, 0.1)
                classify_work.mark_done()
                yield from ctx.push(classify_prod[idx], msg.payload)

        return classifier

    def meter(ctx):
        for _ in range(PACKETS):
            msg = yield from ctx.pop(meter_cons)
            yield from ctx.compute_jittered(METER, 0.1)
            yield from ctx.push(meter_prod, msg.payload)

    def transmit(ctx):
        for _ in range(PACKETS):
            msg = yield from ctx.pop(tx_cons)
            yield from ctx.push(credit_prod, ("credit",) + msg.payload)

    system.spawn(0, parser, "parse")
    for i in range(CLASSIFY_WIDTH):
        system.spawn(1 + i, make_classifier(i), f"classify{i}")
    system.spawn(1 + CLASSIFY_WIDTH, meter, "meter")
    system.spawn(2 + CLASSIFY_WIDTH, transmit, "transmit")
    return system.run_to_completion()


def main() -> None:
    print(f"{PACKETS} packets through parse -> classify(x{CLASSIFY_WIDTH}) "
          "-> meter -> transmit\n")
    baseline = None
    for setting in standard_settings():
        cycles = run_pipeline(setting)
        if baseline is None:
            baseline = cycles
        rate = PACKETS / cycles_to_us(cycles)
        print(f"{setting.label:16s} {cycles_to_us(cycles):8.1f} us "
              f"({rate:6.1f} pkt/us)  speedup {baseline / cycles:.2f}x")


if __name__ == "__main__":
    main()
