#!/usr/bin/env python
"""Security controls (Section 3.6): opt-outs and registration quotas.

Demonstrates the three mitigations the paper describes:

* per-endpoint / per-SQI speculation kill switches for confidentiality-
  sensitive threads (data still flows — it just falls back to on-demand
  style buffering at the device until popped);
* ulimit/MPAM-style quotas on specBuf registrations (DoS mitigation);
* a mixed system where only white-listed endpoints receive pushes.

Run:  python examples/security_controls.py
"""

from repro import RegistrationError, SecurityPolicy, System


def main() -> None:
    policy = SecurityPolicy(max_entries_per_core=2)
    system = System(device="spamer", algorithm="0delay", security=policy)
    lib = system.library

    # Two channels: one normal, one carrying sensitive data.
    q_fast = lib.create_queue()
    q_secret = lib.create_queue()
    prod_fast = lib.open_producer(q_fast, core_id=0)
    prod_secret = lib.open_producer(q_secret, core_id=0)
    cons_fast = lib.open_consumer(q_fast, core_id=1)
    # The sensitive consumer opts out of speculation entirely (legacy mode:
    # no spamer_register is issued, its lines are never push-enabled).
    cons_secret = lib.open_consumer(q_secret, core_id=2, speculative=False)

    # The quota holds: core 1 already registered one endpoint; a third
    # registration on the same core would be refused.
    lib.open_consumer(lib.create_queue(), core_id=1)
    try:
        lib.open_consumer(lib.create_queue(), core_id=1)
        raise SystemExit("quota should have been enforced!")
    except RegistrationError as exc:
        print(f"registration quota enforced: {exc}")

    # A per-SQI kill switch can also disable an already-registered channel.
    policy.disable_sqi(q_fast)
    print(f"speculation disabled for SQI {q_fast} at runtime")
    policy.enable_sqi(q_fast)

    n = 200

    def producer(ctx):
        for i in range(n):
            yield from ctx.push(prod_fast, ("public", i))
            yield from ctx.push(prod_secret, ("secret", i))
            yield from ctx.compute(150)

    def fast_consumer(ctx):
        for _ in range(n):
            yield from ctx.pop(cons_fast)
            yield from ctx.compute(180)

    def secret_consumer(ctx):
        for _ in range(n):
            yield from ctx.pop(cons_secret)
            yield from ctx.compute(180)

    system.spawn(0, producer, "producer")
    system.spawn(1, fast_consumer, "public-consumer")
    system.spawn(2, secret_consumer, "secret-consumer")
    system.run_to_completion()

    stats = system.device.stats
    fast_fills = sum(line.fills for line in cons_fast.lines)
    secret_fills = sum(line.fills for line in cons_secret.lines)
    print(
        f"\ndelivered: public={fast_fills} (speculative pushes "
        f"{stats.get('spec_pushes')}), secret={secret_fills} (on-demand only)"
    )
    assert stats.get("spec_pushes") > 0
    assert secret_fills == n and fast_fills == n
    print("secret channel never appeared in specBuf:",
          all(e.sqi != q_secret for e in system.device.specbuf.entries))


if __name__ == "__main__":
    main()
