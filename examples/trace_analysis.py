#!/usr/bin/env python
"""Transaction-trace analysis (the paper's Section 4.2 / Figure 7).

Traces incast with a single SQI / single consumer cacheline / single
producer under the VL baseline, prints the per-transaction event timeline,
and quantifies the latency a perfectly-timed speculative push would save —
then confirms SPAMeR realises that saving.

Run:  python examples/trace_analysis.py
"""

from repro.eval import standard_settings, trace_experiment
from repro.eval.report import format_trace_rows
from repro.sim.stats import RunningStats


def main() -> None:
    vl, spamer_0delay = standard_settings()[:2]

    result = trace_experiment(setting=vl, scale=0.2)
    txns = result.transactions
    mid = txns[len(txns) // 2].line_fill or 0
    print("VL baseline transactions (zoom window, cycles):")
    print(format_trace_rows(txns, mid - 3000, mid + 3000))

    load_to_use = RunningStats()
    for t in txns:
        if t.load_to_use is not None:
            load_to_use.add(t.load_to_use)
    print(
        f"\n{len(txns)} transactions; "
        f"{result.request_bound_count} request-bound "
        f"({result.request_bound_count / len(txns):.0%}); "
        f"potential speculative saving {result.total_potential_saving} cycles "
        f"({result.total_potential_saving / result.exec_cycles:.1%} of runtime); "
        f"mean load-to-use {load_to_use.mean:.0f} cycles"
    )

    spec = trace_experiment(setting=spamer_0delay, scale=0.2)
    print(
        f"\nSPAMeR(0delay): {spec.speculative_count}/{len(spec.transactions)} "
        f"transactions delivered speculatively; "
        f"execution {result.exec_cycles} -> {spec.exec_cycles} cycles "
        f"({result.exec_cycles / spec.exec_cycles:.2f}x)"
    )


if __name__ == "__main__":
    main()
