#!/usr/bin/env python
"""Quickstart: one hardware queue, one producer, one consumer.

Builds a SPAMeR system, pushes 1000 messages through a 1:1 queue while the
consumer does per-message work, and prints what speculation bought relative
to the Virtual-Link baseline.

Run:  python examples/quickstart.py
"""

from repro import System
from repro.units import cycles_to_us

MESSAGES = 1000
PRODUCER_WORK = 120   # cycles between pushes
CONSUMER_WORK = 260   # cycles of processing per message


def build_and_run(device: str, algorithm=None) -> System:
    system = System(device=device, algorithm=algorithm)
    queue = system.library.create_queue()
    producer_ep = system.library.open_producer(queue, core_id=0)
    consumer_ep = system.library.open_consumer(queue, core_id=1)

    def producer(ctx):
        for i in range(MESSAGES):
            yield from ctx.push(producer_ep, i)
            yield from ctx.compute(PRODUCER_WORK)

    def consumer(ctx):
        total = 0
        for _ in range(MESSAGES):
            msg = yield from ctx.pop(consumer_ep)
            total += msg.payload
            yield from ctx.compute(CONSUMER_WORK)
        assert total == MESSAGES * (MESSAGES - 1) // 2

    system.spawn(0, producer, "producer")
    system.spawn(1, consumer, "consumer")
    system.run_to_completion()
    return system


def main() -> None:
    baseline = build_and_run("vl")
    spamer = build_and_run("spamer", algorithm="tuned")

    for name, system in (("Virtual-Link", baseline), ("SPAMeR(tuned)", spamer)):
        stats = system.device.stats
        empty, _valid = system.consumer_line_cycles()
        print(
            f"{name:14s} {cycles_to_us(system.env.now):8.1f} us  "
            f"pushes={stats.get('push_attempts'):5d} "
            f"failed={stats.get('push_failures'):4d} "
            f"speculative={stats.get('spec_pushes'):5d} "
            f"bus={system.network.utilization():6.2%} "
            f"avg-line-empty={empty:9.0f} cyc"
        )
    speedup = baseline.env.now / spamer.env.now
    print(f"\nspeculative push speedup: {speedup:.2f}x")


if __name__ == "__main__":
    main()
