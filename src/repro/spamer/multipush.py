"""Confidence-gated multi-push speculation with misprediction rollback.

The paper's three delay algorithms decide *when* to push a single
anticipated message per specBuf entry (the ``on_fly`` throttle, Section
3.5).  This module borrows the acceptance-threshold idiom from speculative
decoding (``n_draft``/``n_min``/``p_min`` in llama.cpp's
``common_speculative_params``, and the draft/verify/rollback loop of
SPORK): when a per-queue acceptance estimator — an EWMA over confirmed
pops, seeded from the device's push precision counters — predicts the
consumer will keep up, the policy claims up to ``k`` *consecutive* specBuf
offsets of one entry and pushes a burst of ``k`` messages ahead.

Burst protocol:

* The burst **head** behaves exactly like single-push SPAMeR: its fill is
  consumer-visible immediately, it sticky-retries its slot on a miss, and
  the inner delay algorithm learns only from head responses (so the
  cadence latches match single-push behaviour).
* **Followers** land *unconfirmed*: their cachelines hold data but are
  invisible to the consumer (``ConsumerLine.poppable`` is False) until
  every older claim of the burst has confirmed — this is what makes a
  consumer pop out of the predicted order structurally impossible.
* A follower **miss** while it is not yet the oldest claim means the burst
  overshot the consumer: that claim and every younger claim roll back.
  Landed lines are invalidated by a rollback packet charged real traversal
  cycles on the network (:class:`~repro.mem.bus.PacketKind.COHERENCE`),
  the cancelled messages collect in a *pen*, and once the last doomed
  response and invalidation resolve the pen re-enters the front of the
  SQI's buffering queue in arrival order (FIFO preserved).

With ``burst_k == 1`` the policy degenerates to the base
:class:`~repro.spamer.policy.SpecBufSpeculation` walk bit-for-bit — no
follower claims, no estimator gates on the hot path, no extra events.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.mem.bus import PacketKind
from repro.registry import register_algorithm
from repro.sim.hooks import HookBus, SpecBufHook, SpecDecisionHook
from repro.sim.transaction import TxnState
from repro.spamer.delay import DelayAlgorithm, TunedDelay
from repro.spamer.policy import SpecBufSpeculation
from repro.vlink.linktab import LinkRow, LinkTab
from repro.vlink.packets import ProdEntry
from repro.vlink.pipeline import SpecTarget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.cacheline import ConsumerLine
    from repro.sim.stats import Counter
    from repro.spamer.security import SecurityPolicy
    from repro.spamer.specbuf import SpecBuf, SpecEntry
    from repro.vlink.vlrd import VirtualLinkRoutingDevice


@register_algorithm(
    "multipush",
    description="confidence-gated burst push over a tuned inner algorithm",
)
class MultiPushDelay(DelayAlgorithm):
    """A delay algorithm carrier that turns on burst speculation.

    Delegates every timing decision to *inner* (the paper's ``tuned``
    algorithm by default); ``burst_k``/``p_min`` override the system
    config when not None.  The SPAMeR device recognizes this type and
    plugs a :class:`MultiPushSpeculation` stage into its pipeline.
    """

    name = "multipush"

    def __init__(
        self,
        inner: Optional[DelayAlgorithm] = None,
        burst_k: Optional[int] = None,
        p_min: Optional[float] = None,
    ) -> None:
        self.inner = inner if inner is not None else TunedDelay()
        self.burst_k = burst_k
        self.p_min = p_min

    def send_tick(self, entry: "SpecEntry", now: int) -> Optional[int]:
        return self.inner.send_tick(entry, now)

    def on_response(self, entry: "SpecEntry", hit: bool, now: int) -> None:
        self.inner.on_response(entry, hit, now)


class AcceptanceEstimator:
    """Per-queue EWMA of burst-slot acceptance (confirm=1, rollback=0).

    Lazily seeded from the device's global push-precision counters
    (``spec_hits / spec_pushes``) so a warm queue starts from measured
    accuracy instead of blind optimism.
    """

    __slots__ = ("value", "alpha", "seeded")

    def __init__(self, alpha: float = 0.2) -> None:
        self.value = 1.0
        self.alpha = alpha
        self.seeded = False

    def seed(self, pushes: int, hits: int) -> None:
        if self.seeded:
            return
        self.seeded = True
        if pushes > 0:
            self.value = hits / pushes

    def record(self, accepted: bool) -> None:
        self.seeded = True
        self.value += self.alpha * ((1.0 if accepted else 0.0) - self.value)


class BurstClaim:
    """One claimed specBuf offset within an in-progress burst."""

    __slots__ = ("entry", "line", "landed", "doomed")

    def __init__(self, entry: ProdEntry, line: "ConsumerLine") -> None:
        self.entry = entry
        self.line = line
        self.landed = False   # hit response processed while not yet oldest
        self.doomed = False   # cancelled by a rollback; resolves on response


class BurstState:
    """Per-specBuf-entry burst bookkeeping (claims, rollback pen)."""

    __slots__ = ("sqi", "claims", "by_entry", "pen", "draining",
                 "outstanding", "invalidations")

    def __init__(self, sqi: int) -> None:
        self.sqi = sqi
        #: Claims in predicted (arrival) order; claims[0] is the oldest.
        self.claims: Deque[BurstClaim] = deque()
        self.by_entry: Dict[int, BurstClaim] = {}
        #: Rolled-back messages awaiting re-injection, in arrival order.
        self.pen: List[ProdEntry] = []
        self.draining = False
        #: Doomed claims whose responses have not come back yet.
        self.outstanding = 0
        #: Rollback-invalidation packets still traversing the network.
        self.invalidations = 0


class MultiPushSpeculation(SpecBufSpeculation):
    """specBuf speculation extended with confidence-gated bursts."""

    def __init__(
        self,
        specbuf: "SpecBuf",
        algorithm: DelayAlgorithm,
        security: "SecurityPolicy",
        linktab: LinkTab,
        stats: "Counter",
        device: "VirtualLinkRoutingDevice",
        burst_k: int,
        p_min: float,
        hooks: Optional[HookBus] = None,
    ) -> None:
        super().__init__(specbuf, algorithm, security, linktab, stats, hooks=hooks)
        #: Owning device — reached lazily for the pipeline (built after this
        #: policy) and the network (rollback packets pay real traversal).
        self.device = device
        self.burst_k = burst_k
        self.p_min = p_min
        self._bursts: Dict[int, BurstState] = {}
        self._estimators: Dict[int, AcceptanceEstimator] = {}

    # ------------------------------------------------------------------ helpers
    def estimator(self, sqi: int) -> AcceptanceEstimator:
        est = self._estimators.get(sqi)
        if est is None:
            est = self._estimators[sqi] = AcceptanceEstimator()
        if not est.seeded:
            est.seed(self.stats.get("spec_pushes"), self.stats.get("spec_hits"))
        return est

    def burst_snapshot(self) -> Dict[int, dict]:
        """Per-entry burst state for diagnostics and the property tests."""
        return {
            index: {
                "claims": len(b.claims),
                "pen": len(b.pen),
                "draining": b.draining,
                "outstanding": b.outstanding,
                "invalidations": b.invalidations,
            }
            for index, b in self._bursts.items()
        }

    # --------------------------------------------------------- speculation path
    def select(
        self, row: LinkRow, entry: ProdEntry, now: int
    ) -> Optional[SpecTarget]:
        """Base ring walk plus follower claims on busy entries we own."""
        if row.spec_head is None:
            return None
        start = self.specbuf.entry(row.spec_head)
        cursor = start
        while True:
            if not cursor.on_fly and self.security.speculation_allowed(cursor.endpoint):
                tick = self.algorithm.send_tick(cursor, now)
                if tick is not None:
                    cursor.on_fly = True
                    row.spec_head = cursor.next_index
                    burst = BurstState(cursor.sqi)
                    claim = BurstClaim(entry, cursor.target_line)
                    burst.claims.append(claim)
                    burst.by_entry[id(entry)] = claim
                    self._bursts[cursor.index] = burst
                    if self.hooks.wants(SpecDecisionHook):
                        self.hooks.publish(
                            SpecDecisionHook(
                                tick=now,
                                sqi=entry.sqi,
                                entry_index=cursor.index,
                                algorithm=self.algorithm.name,
                                delay=max(tick, now) - now,
                            )
                        )
                    return SpecTarget(cursor.target_line, cursor.index, max(tick, now))
            elif cursor.on_fly:
                target = self._follower_target(cursor, entry, now)
                if target is not None:
                    return target
            cursor = self.specbuf.entry(cursor.next_index)
            if cursor is start:
                return None

    def _follower_target(
        self, cursor: "SpecEntry", entry: ProdEntry, now: int
    ) -> Optional[SpecTarget]:
        """Claim the next consecutive offset of an in-progress burst."""
        burst = self._bursts.get(cursor.index)
        if burst is None or burst.draining or not burst.claims:
            return None
        if len(burst.claims) >= min(self.burst_k, cursor.length):
            return None
        if self.estimator(cursor.sqi).value < self.p_min:
            return None
        line = cursor.endpoint.lines[
            (cursor.offset + len(burst.claims)) % cursor.length
        ]
        claim = BurstClaim(entry, line)
        burst.claims.append(claim)
        burst.by_entry[id(entry)] = claim
        if self.hooks.wants(SpecDecisionHook):
            self.hooks.publish(
                SpecDecisionHook(
                    tick=now,
                    sqi=entry.sqi,
                    entry_index=cursor.index,
                    algorithm=self.algorithm.name,
                    delay=0,
                )
            )
        self.stats.add("burst_claims")
        return SpecTarget(line, cursor.index, now, unconfirmed=True)

    # ---------------------------------------------------------------- responses
    def on_response(
        self, entry: ProdEntry, hit: bool, now: int
    ) -> Optional[str]:
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        burst = self._bursts.get(spec_entry.index)
        claim = burst.by_entry.get(id(entry)) if burst is not None else None
        if claim is None:
            # Not part of a tracked burst (defensive): base behaviour.
            super().on_response(entry, hit, now)
            return None
        if claim.doomed:
            # A cancelled claim's response came back; the device stamps
            # ROLLED_BACK and hands the entry to complete_rollback().
            burst.outstanding -= 1
            if self.hooks.wants(SpecBufHook):
                self.hooks.publish(
                    SpecBufHook(tick=now, sqi=entry.sqi,
                                entry_index=spec_entry.index, hit=hit)
                )
            self.estimator(entry.sqi).record(False)
            return "rollback"
        if burst.claims[0] is claim:
            # Oldest claim: exactly the single-push response path — the
            # inner algorithm learns, a miss sticky-retries via retry().
            self.algorithm.on_response(spec_entry, hit, now)
            if self.hooks.wants(SpecBufHook):
                self.hooks.publish(
                    SpecBufHook(tick=now, sqi=entry.sqi,
                                entry_index=spec_entry.index, hit=hit)
                )
            if hit:
                self._confirm_front(burst, spec_entry, now)
            return None
        if self.hooks.wants(SpecBufHook):
            self.hooks.publish(
                SpecBufHook(tick=now, sqi=entry.sqi,
                            entry_index=spec_entry.index, hit=hit)
            )
        if hit:
            # Landed ahead of schedule; stays unconfirmed until every older
            # claim confirms (the consumer cannot pop it meanwhile).
            claim.landed = True
            return None
        # A follower missed while an older claim is still unresolved: the
        # burst overshot the consumer.  Cancel it and every younger claim.
        self._begin_rollback(burst, claim)
        self.estimator(entry.sqi).record(False)
        return "rollback"

    def retry(self, entry: ProdEntry, now: int) -> Optional[SpecTarget]:
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        burst = self._bursts.get(spec_entry.index)
        if burst is None or not burst.claims or burst.claims[0].entry is not entry:
            return super().retry(entry, now)
        # Once a claim is the oldest of its burst it is the next expected
        # delivery: redispatch confirmed so the fill is immediately poppable.
        entry.spec_unconfirmed = False
        target = super().retry(entry, now)
        if target is not None:
            return target
        if len(burst.claims) > 1 or burst.draining or burst.outstanding:
            # The inner algorithm refuses to retry, but younger claims
            # depend on this slot staying claimed (abandoning it would
            # orphan their unconfirmed fills).  Hold the claim and retry
            # immediately; the response round-trip paces the loop.
            spec_entry.on_fly = True
            return SpecTarget(spec_entry.target_line, spec_entry.index, now)
        # Solo claim abandoned (base semantics): drop the burst bookkeeping.
        burst.by_entry.pop(id(entry), None)
        burst.claims.clear()
        del self._bursts[spec_entry.index]
        return None

    # ----------------------------------------------------------------- confirm
    def _confirm_front(
        self, burst: BurstState, spec_entry: "SpecEntry", now: int
    ) -> None:
        """Pop the confirmed front claim and every landed successor."""
        est = self.estimator(burst.sqi)
        while True:
            claim = burst.claims.popleft()
            del burst.by_entry[id(claim.entry)]
            claim.line.confirm()
            spec_entry.advance_offset()
            claim.entry.spec_entry_index = None
            claim.entry.spec_unconfirmed = False
            est.record(True)
            self.stats.add("burst_confirms")
            if not burst.claims or not burst.claims[0].landed:
                break
        self._maybe_finish(burst, spec_entry)

    def _maybe_finish(self, burst: BurstState, spec_entry: "SpecEntry") -> None:
        """Release the specBuf slot once the burst fully resolves."""
        if burst.claims or burst.draining or burst.outstanding or burst.pen:
            return
        del self._bursts[spec_entry.index]
        spec_entry.on_fly = False

    # ---------------------------------------------------------------- rollback
    def _begin_rollback(self, burst: BurstState, claim: BurstClaim) -> None:
        """Cancel *claim* and every younger claim of its burst.

        Younger claims are still in flight (responses come back in dispatch
        order), so they are doomed in place and resolve through the device's
        rollback verdict when their own responses arrive.
        """
        burst.draining = True
        idx = burst.claims.index(claim)
        while len(burst.claims) > idx + 1:
            doomed = burst.claims.pop()
            doomed.doomed = True
            burst.outstanding += 1
        burst.claims.pop()  # the triggering claim (resolves synchronously)

    def complete_rollback(self, entry: ProdEntry, hit: bool, now: int) -> None:
        """Device callback after a "rollback" verdict was stamped.

        Pens the cancelled message for FIFO re-injection; if its stash had
        landed, an invalidation packet is charged real traversal cycles on
        the network before the unconfirmed line is vacated.
        """
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        burst = self._bursts[spec_entry.index]
        claim = burst.by_entry.pop(id(entry))
        entry.spec_entry_index = None
        entry.spec_unconfirmed = False
        self.stats.add("spec_rollbacks")
        if hit:
            # The stash filled claim.line (unconfirmed).  Invalidating it
            # costs a real network traversal — the wasted-push charge.
            burst.invalidations += 1
            network = self.device.network
            src = network.srd_node(self.device.srd_index)
            dst = network.core_node(claim.line.core_id)
            self.stats.add("rollback_invalidations")
            network.transit(
                PacketKind.COHERENCE, txn=entry.message.txn, src=src, dst=dst
            ).subscribe(
                lambda _ev, b=burst, c=claim, s=spec_entry: self._invalidated(
                    b, c, s
                )
            )
        burst.pen.append(entry)
        self._maybe_flush(burst, spec_entry)

    def _invalidated(
        self, burst: BurstState, claim: BurstClaim, spec_entry: "SpecEntry"
    ) -> None:
        """The invalidation packet reached the consumer: vacate the line."""
        claim.line.rollback()
        burst.invalidations -= 1
        self._maybe_flush(burst, spec_entry)

    def _maybe_flush(self, burst: BurstState, spec_entry: "SpecEntry") -> None:
        """Re-inject the pen once the rollback has fully drained.

        The pen re-enters the *front* of the SQI's buffering queue in
        arrival order — older than everything buffered behind the burst —
        so per-producer FIFO survives the misprediction.
        """
        if burst.outstanding or burst.invalidations or not burst.draining:
            return
        pipeline = self.device.pipeline
        row = self.linktab.row(burst.sqi)
        pen, burst.pen = burst.pen, []
        for entry in reversed(pen):
            row.buffered_data.appendleft(entry)
        burst.draining = False
        for entry in pen:
            pipeline.stamp(entry.message.txn, TxnState.BUFFERED, entry.sqi,
                           "rollback")
        self._maybe_finish(burst, spec_entry)
        pipeline.kick(row)
