"""Extended delay-prediction algorithms (Section 3.5's design space).

The paper notes speculative pushing "could be history-based, profiling-
guided, heuristic-oriented, or perceptron-style" like prefetching, and
evaluates three points in that space.  This module implements two more
families as extensions, using the same per-entry latch interface so they
drop into the SRD unchanged:

* :class:`HistoryDelay` — an EWMA interval predictor with additive safety
  margin: the classic history-based approach (global-history-buffer style
  smoothing instead of the tuned algorithm's last-interval reference).
* :class:`PerceptronDelay` — a perceptron-style predictor in the spirit of
  perceptron prefetch filtering [8]: a small online-trained linear model
  over binary features of the entry's recent behaviour gates *how
  aggressively* to push (now vs the smoothed interval).

Both keep their state in side tables keyed by specBuf entry index — the
hardware analogy is an extra SRAM column next to specBuf, like the tuned
algorithm's latches (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.registry import register_algorithm
from repro.spamer.delay import DelayAlgorithm, MAX_DELAY
from repro.spamer.specbuf import SpecEntry


@dataclass
class _HistoryState:
    """Per-entry EWMA latches."""

    ewma_interval: float = 0.0
    samples: int = 0
    last_success: int = 0
    consecutive_failures: int = 0


@register_algorithm("history")
class HistoryDelay(DelayAlgorithm):
    """History-based prediction: EWMA of success intervals minus a margin.

    ``delay = max(0, ewma * (1 - margin))`` measured from the last success;
    consecutive failures back the push off additively (the EWMA itself is
    only trained on successes, so failure noise cannot corrupt the
    interval estimate — the weakness of the adaptive algorithm).
    """

    name = "history"

    def __init__(
        self,
        smoothing: float = 0.25,
        margin: float = 0.25,
        backoff_step: int = 48,
        max_delay: int = MAX_DELAY,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ConfigError(f"smoothing must be in (0, 1], got {smoothing}")
        if not 0.0 <= margin < 1.0:
            raise ConfigError(f"margin must be in [0, 1), got {margin}")
        if backoff_step < 1:
            raise ConfigError(f"backoff_step must be >= 1, got {backoff_step}")
        self.smoothing = smoothing
        self.margin = margin
        self.backoff_step = backoff_step
        self.max_delay = max_delay
        self._state: Dict[int, _HistoryState] = {}

    def _entry_state(self, entry: SpecEntry) -> _HistoryState:
        return self._state.setdefault(entry.index, _HistoryState())

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        s = self._entry_state(entry)
        if s.samples == 0:
            # No history yet: push immediately to start learning.
            return now + s.consecutive_failures * self.backoff_step
        planned = int(s.ewma_interval * (1.0 - self.margin))
        planned += s.consecutive_failures * self.backoff_step
        planned = min(planned, self.max_delay)
        return max(now, s.last_success + planned)

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        s = self._entry_state(entry)
        if hit:
            if s.samples > 0:
                interval = now - s.last_success
                s.ewma_interval += self.smoothing * (interval - s.ewma_interval)
            s.samples += 1
            s.last_success = now
            s.consecutive_failures = 0
            entry.nfills += 1
            entry.last = now
        else:
            s.consecutive_failures += 1
        entry.failed = not hit


@dataclass
class _PerceptronState:
    """Per-entry perceptron weights and feature history."""

    weights: List[float] = field(default_factory=lambda: [0.0] * 4)
    bias: float = 0.0
    last_success: int = 0
    ewma_interval: float = 0.0
    samples: int = 0
    last_features: List[int] = field(default_factory=lambda: [0] * 4)
    last_aggressive: bool = True
    consecutive_failures: int = 0


@register_algorithm("perceptron")
class PerceptronDelay(DelayAlgorithm):
    """Perceptron-style prediction: gate aggressive pushes with a linear
    model over recent-behaviour features.

    Features (binary, per decision): last push hit; two hits in a row
    observed recently; the elapsed time already exceeds half the smoothed
    interval; the entry has enough training samples.  Positive activation →
    push *now* (aggressive); negative → wait out the smoothed interval
    (conservative).  Training is the standard perceptron rule: on a wrong
    outcome (aggressive push missed, or conservative wait that would have
    hit immediately anyway) the weights move toward the correct decision.
    """

    name = "perceptron"

    def __init__(
        self,
        learning_rate: float = 0.25,
        threshold: float = 0.0,
        max_delay: int = MAX_DELAY,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate
        self.threshold = threshold
        self.max_delay = max_delay
        self._state: Dict[int, _PerceptronState] = {}

    def _entry_state(self, entry: SpecEntry) -> _PerceptronState:
        return self._state.setdefault(entry.index, _PerceptronState())

    def _features(self, entry: SpecEntry, s: _PerceptronState, now: int) -> List[int]:
        elapsed = now - s.last_success
        return [
            0 if entry.failed else 1,
            1 if s.consecutive_failures == 0 and s.samples >= 2 else 0,
            1 if s.samples and elapsed * 2 >= s.ewma_interval else 0,
            1 if s.samples >= 4 else 0,
        ]

    def _activate(self, s: _PerceptronState, features: List[int]) -> float:
        return s.bias + sum(w * f for w, f in zip(s.weights, features))

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        s = self._entry_state(entry)
        features = self._features(entry, s, now)
        aggressive = self._activate(s, features) >= self.threshold
        s.last_features = features
        s.last_aggressive = aggressive
        if aggressive or s.samples == 0:
            return now
        planned = min(int(s.ewma_interval), self.max_delay)
        return max(now, s.last_success + planned)

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        s = self._entry_state(entry)
        # Perceptron update: an aggressive push that missed was a wrong
        # "push now"; a push that hit says "push now" was right.
        target = 1.0 if hit else -1.0
        if s.last_aggressive != hit:
            for i, f in enumerate(s.last_features):
                s.weights[i] += self.learning_rate * target * f
            s.bias += self.learning_rate * target
        if hit:
            if s.samples > 0:
                interval = now - s.last_success
                s.ewma_interval += 0.25 * (interval - s.ewma_interval)
            s.samples += 1
            s.last_success = now
            s.consecutive_failures = 0
            entry.nfills += 1
            entry.last = now
        else:
            s.consecutive_failures += 1
        entry.failed = not hit
