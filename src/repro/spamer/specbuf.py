"""specBuf — the speculative-push target store (Section 3.2).

Every valid specBuf entry represents a segment of consumer memory
(``base + len × cacheline``) the SRD may speculatively push into.  The
``offset`` field rotates through the segment's cachelines on *successful*
pushes, so all registered lines take turns receiving data; the ``next``
field links the entries of one SQI into a ring so successive predictions
rotate across consumer endpoints; the ``on_fly`` bit throttles each entry
to one outstanding speculative push (Section 3.5).

Entries also carry the per-endpoint latch state of the delay-prediction
algorithms (the yellow blocks of Figure 6): ``nfills``, ``last``, ``ddl``,
``failed`` and ``delay``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import RegistrationError
from repro.mem.cacheline import ConsumerLine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vlink.endpoint import ConsumerEndpoint


class SpecEntry:
    """One specBuf row: a speculative-push window over an endpoint."""

    __slots__ = (
        "index", "sqi", "endpoint", "base", "length", "offset", "next_index",
        "on_fly",
        # delay-prediction latch state (Figure 6)
        "nfills", "last", "ddl", "failed", "delay",
    )

    def __init__(self, index: int, endpoint: "ConsumerEndpoint") -> None:
        self.index = index
        self.sqi = endpoint.sqi
        self.endpoint = endpoint
        self.base = endpoint.segment.base
        self.length = len(endpoint.lines)
        self.offset = 0
        self.next_index = index  # singleton ring until linked
        self.on_fly = False
        # Delay-algorithm state; interpreted by the active algorithm.
        self.nfills = 0
        self.last = 0
        self.ddl = 0
        self.failed = False
        self.delay = 0

    @property
    def target_line(self) -> ConsumerLine:
        """The cacheline the current offset points at (specTgt derivation)."""
        return self.endpoint.lines[self.offset]

    def advance_offset(self) -> None:
        """Rotate to the next cacheline after a successful push."""
        self.offset += 1
        if self.offset >= self.length:
            self.offset = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpecEntry {self.index} sqi={self.sqi} off={self.offset}/{self.length}"
            f"{' on_fly' if self.on_fly else ''}>"
        )


class SpecBuf:
    """The table of :class:`SpecEntry` rows plus the per-SQI rings."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise RegistrationError(f"specBuf capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.entries: List[SpecEntry] = []
        self._ring_tail: Dict[int, SpecEntry] = {}  # sqi -> last-registered entry

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, index: int) -> SpecEntry:
        return self.entries[index]

    def register(self, endpoint: "ConsumerEndpoint") -> SpecEntry:
        """Handle a ``spamer_register`` store: allocate and ring-link an entry.

        Entries of one SQI form a loop used in turn (Section 3.2); the new
        entry is spliced in after the SQI's current tail.
        """
        if len(self.entries) >= self.capacity:
            raise RegistrationError(
                f"specBuf full ({self.capacity} entries); the OS must manage "
                "specBuf like other limited resources (Section 4.5)"
            )
        entry = SpecEntry(len(self.entries), endpoint)
        self.entries.append(entry)
        tail = self._ring_tail.get(endpoint.sqi)
        if tail is None:
            entry.next_index = entry.index
        else:
            entry.next_index = tail.next_index  # ring head
            tail.next_index = entry.index
        self._ring_tail[endpoint.sqi] = entry
        return entry

    def ring_of(self, sqi: int) -> List[SpecEntry]:
        """All entries of *sqi*, in ring order starting at the ring head."""
        tail = self._ring_tail.get(sqi)
        if tail is None:
            return []
        out: List[SpecEntry] = []
        cursor = self.entries[tail.next_index]
        while True:
            out.append(cursor)
            cursor = self.entries[cursor.next_index]
            if cursor is out[0]:
                break
        return out

    def ring_head(self, sqi: int) -> Optional[SpecEntry]:
        """The first entry of the SQI's ring (used to seed linkTab.specHead)."""
        tail = self._ring_tail.get(sqi)
        return self.entries[tail.next_index] if tail is not None else None

    # ----------------------------------------------------------- diagnostics
    def on_fly_count(self) -> int:
        """Entries with an outstanding speculative push (Section 3.5 throttle)."""
        return sum(1 for entry in self.entries if entry.on_fly)

    def snapshot(self) -> List[dict]:
        """Per-entry state for stall diagnostics (what the watchdog dumps)."""
        return [
            {
                "index": e.index,
                "sqi": e.sqi,
                "endpoint": e.endpoint.endpoint_id,
                "offset": e.offset,
                "on_fly": e.on_fly,
                "nfills": e.nfills,
                "delay": e.delay,
                "failed": e.failed,
            }
            for e in self.entries
        ]
