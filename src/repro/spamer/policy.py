"""The SPAMeR speculation policy: the pluggable Stage-2 of the pipeline.

:class:`SpecBufSpeculation` packages everything Section 3.2 adds to the
mapping pipeline — the specBuf ring walk behind ``linkTab.specHead``, the
``on_fly`` throttle, the security gate, and the delay-prediction algorithm —
as a :class:`~repro.vlink.pipeline.SpeculationPolicy` the SPAMeR device
plugs into the shared :class:`~repro.vlink.pipeline.MappingPipeline`.  The
hit/miss feedback loop of Figure 6 lives here too, publishing a
:class:`~repro.sim.hooks.SpecBufHook` per response so instrumentation can
watch speculation accuracy without touching the device.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import RegistrationError
from repro.sim.hooks import HookBus, SpecBufHook, SpecDecisionHook
from repro.vlink.linktab import LinkRow, LinkTab
from repro.vlink.packets import ProdEntry
from repro.vlink.pipeline import SpecTarget, SpeculationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.stats import Counter
    from repro.spamer.delay import DelayAlgorithm
    from repro.spamer.security import SecurityPolicy
    from repro.spamer.specbuf import SpecBuf
    from repro.vlink.endpoint import ConsumerEndpoint


class SpecBufSpeculation(SpeculationPolicy):
    """specBuf + delay algorithm + security gate as one pipeline stage."""

    def __init__(
        self,
        specbuf: "SpecBuf",
        algorithm: "DelayAlgorithm",
        security: "SecurityPolicy",
        linktab: LinkTab,
        stats: "Counter",
        hooks: Optional[HookBus] = None,
    ) -> None:
        self.specbuf = specbuf
        self.algorithm = algorithm
        self.security = security
        self.linktab = linktab
        self.stats = stats
        self.hooks = hooks if hooks is not None else HookBus()

    # ------------------------------------------------------------- registration
    def register(self, endpoint: "ConsumerEndpoint") -> None:
        """Handle ``spamer_register`` stores for *endpoint* (Section 3.3).

        The library issues one register per consumer endpoint, covering all
        its cachelines; the policy allocates a specBuf entry, links it into
        the SQI's ring, and seeds ``linkTab.specHead`` for the SQI.
        """
        if not endpoint.spec_enabled:
            raise RegistrationError(
                f"{endpoint!r} was opened as a legacy (non-speculative) endpoint"
            )
        self.security.check_registration(endpoint)
        self.specbuf.register(endpoint)
        row = self.linktab.row(endpoint.sqi)
        if row.spec_head is None:
            head = self.specbuf.ring_head(endpoint.sqi)
            assert head is not None
            row.spec_head = head.index
        self.stats.add("spec_registrations")

    # --------------------------------------------------------- speculation path
    def select(
        self, row: LinkRow, entry: ProdEntry, now: int
    ) -> Optional[SpecTarget]:
        """Stage-2 specBuf lookup: pick an entry from the SQI's ring.

        Starting at ``specHead``, walk the ring for the first entry that is
        not throttled (``on_fly``) and whose endpoint is allowed to receive
        speculative pushes.  On a selection, ``specHead`` advances past the
        chosen entry (the Stage-3 writeback), so entries are used in turn.
        """
        if row.spec_head is None:
            return None
        start = self.specbuf.entry(row.spec_head)
        cursor = start
        while True:
            if not cursor.on_fly and self.security.speculation_allowed(cursor.endpoint):
                tick = self.algorithm.send_tick(cursor, now)
                if tick is not None:
                    cursor.on_fly = True
                    row.spec_head = cursor.next_index
                    if self.hooks.wants(SpecDecisionHook):
                        self.hooks.publish(
                            SpecDecisionHook(
                                tick=now,
                                sqi=entry.sqi,
                                entry_index=cursor.index,
                                algorithm=self.algorithm.name,
                                delay=max(tick, now) - now,
                            )
                        )
                    return SpecTarget(cursor.target_line, cursor.index, max(tick, now))
            cursor = self.specbuf.entry(cursor.next_index)
            if cursor is start:
                return None

    def on_response(self, entry: ProdEntry, hit: bool, now: int) -> None:
        """Feed the hit/miss response into the entry's latches (Figure 6)."""
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        self.algorithm.on_response(spec_entry, hit, now)
        if self.hooks.wants(SpecBufHook):
            self.hooks.publish(
                SpecBufHook(
                    tick=now, sqi=entry.sqi, entry_index=spec_entry.index, hit=hit
                )
            )
        if hit:
            spec_entry.on_fly = False
            spec_entry.advance_offset()
            entry.spec_entry_index = None
        # On a miss the packet keeps its claim: ``on_fly`` stays set and the
        # offset does not rotate, so the subsequent :meth:`retry` re-targets
        # the same slot and no younger packet can be selected past it.

    def retry(self, entry: ProdEntry, now: int) -> Optional[SpecTarget]:
        """Sticky-slot retry for a missed speculative push (Section 3.5).

        Offsets rotate only on hits, so every packet occupies ring slots in
        strict arrival order; retrying the *same* target line (rather than
        re-walking the ring from ``specHead``) preserves per-producer FIFO
        delivery across mis-speculations.  The delay algorithm — which just
        learned the miss in :meth:`on_response` — decides the backoff.
        """
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        tick = self.algorithm.send_tick(spec_entry, now)
        if self.hooks.wants(SpecDecisionHook):
            self.hooks.publish(
                SpecDecisionHook(
                    tick=now,
                    sqi=entry.sqi,
                    entry_index=spec_entry.index,
                    algorithm=self.algorithm.name,
                    delay=-1 if tick is None else max(tick, now) - now,
                    retry=True,
                )
            )
        if tick is None:
            # The algorithm refuses to retry: release the claim and let the
            # device park the packet on the buffering queue instead.
            spec_entry.on_fly = False
            return None
        return SpecTarget(spec_entry.target_line, spec_entry.index, max(tick, now))
