"""Security controls for speculative pushes (Section 3.6).

The paper argues SPAMeR resists prefetch-style side channels because
(1) delay latches are isolated per endpoint, (2) the ``bithash`` obfuscation
adds randomness, and (3) targets must be explicitly white-listed via
``spamer_register``.  It further notes speculation can be disabled
*per endpoint* or *per SQI* for confidentiality-sensitive threads, and that
registration is resource-limited like memory (ulimit / MPAM-style caps).

:class:`SecurityPolicy` implements those controls; the SRD consults it on
every registration and every speculation decision.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, TYPE_CHECKING

from repro.errors import RegistrationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vlink.endpoint import ConsumerEndpoint


class SecurityPolicy:
    """White-listing, kill switches and registration quotas for speculation."""

    def __init__(self, max_entries_per_core: Optional[int] = None) -> None:
        if max_entries_per_core is not None and max_entries_per_core < 0:
            raise RegistrationError("max_entries_per_core must be >= 0")
        #: ulimit-style cap on specBuf entries a single core may register.
        self.max_entries_per_core = max_entries_per_core
        self._disabled_sqis: Set[int] = set()
        self._disabled_endpoints: Set[int] = set()
        self._registered_per_core: Dict[int, int] = {}

    # -- kill switches -------------------------------------------------------
    def disable_sqi(self, sqi: int) -> None:
        """Turn speculation off for a whole queue (per-SQI opt-out)."""
        self._disabled_sqis.add(sqi)

    def enable_sqi(self, sqi: int) -> None:
        self._disabled_sqis.discard(sqi)

    def disable_endpoint(self, endpoint_id: int) -> None:
        """Turn speculation off for one endpoint (per-endpoint opt-out)."""
        self._disabled_endpoints.add(endpoint_id)

    def enable_endpoint(self, endpoint_id: int) -> None:
        self._disabled_endpoints.discard(endpoint_id)

    # -- queries ---------------------------------------------------------------
    def speculation_allowed(self, endpoint: "ConsumerEndpoint") -> bool:
        """May the SRD speculatively push into *endpoint* right now?"""
        return (
            endpoint.sqi not in self._disabled_sqis
            and endpoint.endpoint_id not in self._disabled_endpoints
        )

    def check_registration(self, endpoint: "ConsumerEndpoint") -> None:
        """Admit or reject a ``spamer_register`` (quota enforcement).

        Raises :class:`RegistrationError` when the core exceeded its quota —
        the DoS mitigation of Section 3.6.
        """
        if endpoint.sqi in self._disabled_sqis:
            raise RegistrationError(
                f"speculation disabled for SQI {endpoint.sqi}; registration refused"
            )
        if self.max_entries_per_core is not None:
            used = self._registered_per_core.get(endpoint.core_id, 0)
            if used >= self.max_entries_per_core:
                raise RegistrationError(
                    f"core {endpoint.core_id} exceeded its specBuf quota "
                    f"({self.max_entries_per_core} entries)"
                )
        self._registered_per_core[endpoint.core_id] = (
            self._registered_per_core.get(endpoint.core_id, 0) + 1
        )

    def registered_by(self, core_id: int) -> int:
        return self._registered_per_core.get(core_id, 0)
