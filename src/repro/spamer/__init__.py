"""SPAMeR — the paper's primary contribution.

Speculative push for hardware message queues: the :class:`SpamerRoutingDevice`
extends the Virtual-Link routing device with a specBuf-driven speculation
path, governed by pluggable delay-prediction algorithms and per-endpoint
security controls.
"""

from repro.spamer.delay import (
    AdaptiveDelay,
    DelayAlgorithm,
    FixedDelay,
    MAX_DELAY,
    NeverPush,
    TunedDelay,
    TunedParams,
    ZeroDelay,
    algorithm_by_name,
)
from repro.spamer.learned import HistoryDelay, PerceptronDelay
from repro.spamer.security import SecurityPolicy
from repro.spamer.specbuf import SpecBuf, SpecEntry
from repro.spamer.srd import SpamerRoutingDevice

__all__ = [
    "AdaptiveDelay",
    "DelayAlgorithm",
    "FixedDelay",
    "HistoryDelay",
    "MAX_DELAY",
    "NeverPush",
    "PerceptronDelay",
    "SecurityPolicy",
    "SpamerRoutingDevice",
    "SpecBuf",
    "SpecEntry",
    "TunedDelay",
    "TunedParams",
    "ZeroDelay",
    "algorithm_by_name",
]
