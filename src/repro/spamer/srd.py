"""The SPAMeR Routing Device (SRD) — Section 3.2.

The SRD is the VLRD plus a parallel speculation path: when the address
mapping pipeline finds no consumer request for an incoming packet's SQI, it
looks up ``linkTab.specHead`` → specBuf in parallel with the consBuf lookup
and, if the entry is available (valid, not throttled by ``on_fly``, and
permitted by the security policy), derives a speculative target
``specTgt = base + offset × cacheline`` and a *send tick* from the delay
prediction algorithm.  The packet then takes path (A) of Figure 5 — the
speculative push queue — instead of parking on the SQI's buffering queue.

Responses from speculative pushes feed the algorithm's per-endpoint latches
(Figure 6) and rotate the entry's ``offset`` (on hits only, so a missed
line is retried before its successors — preserving round-robin delivery
order into each endpoint).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import RegistrationError
from repro.mem.bus import CoherenceNetwork
from repro.sim.trace import TraceRecorder
from repro.spamer.delay import DelayAlgorithm
from repro.spamer.security import SecurityPolicy
from repro.spamer.specbuf import SpecBuf
from repro.vlink.linktab import LinkRow
from repro.vlink.packets import ProdEntry
from repro.vlink.vlrd import SpecTarget, VirtualLinkRoutingDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment
    from repro.vlink.endpoint import ConsumerEndpoint


class SpamerRoutingDevice(VirtualLinkRoutingDevice):
    """VLRD extended with specBuf, linkTabSpec and the speculative push path."""

    kind = "SRD"

    def __init__(
        self,
        env: "Environment",
        config: SystemConfig,
        network: CoherenceNetwork,
        algorithm: DelayAlgorithm,
        trace: Optional[TraceRecorder] = None,
        security: Optional[SecurityPolicy] = None,
    ) -> None:
        super().__init__(env, config, network, trace=trace)
        self.algorithm = algorithm
        self.specbuf = SpecBuf(config.specbuf_entries)
        self.security = security or SecurityPolicy()

    # ------------------------------------------------------------- registration
    def register_spec_target(self, endpoint: "ConsumerEndpoint") -> None:
        """Handle ``spamer_register`` stores for *endpoint* (Section 3.3).

        The library issues one register per consumer endpoint, covering all
        its cachelines; the SRD allocates a specBuf entry, links it into the
        SQI's ring, and seeds ``linkTab.specHead`` for the SQI.
        """
        if not endpoint.spec_enabled:
            raise RegistrationError(
                f"{endpoint!r} was opened as a legacy (non-speculative) endpoint"
            )
        self.security.check_registration(endpoint)
        entry = self.specbuf.register(endpoint)
        row = self.linktab.row(endpoint.sqi)
        if row.spec_head is None:
            head = self.specbuf.ring_head(endpoint.sqi)
            assert head is not None
            row.spec_head = head.index
        self.stats.add("spec_registrations")
        return None

    # --------------------------------------------------------- speculation path
    def _speculation_target(self, row: LinkRow, entry: ProdEntry) -> Optional[SpecTarget]:
        """Stage-2 specBuf lookup: pick an entry from the SQI's ring.

        Starting at ``specHead``, walk the ring for the first entry that is
        not throttled (``on_fly``) and whose endpoint is allowed to receive
        speculative pushes.  On a selection, ``specHead`` advances past the
        chosen entry (the Stage-3 writeback), so entries are used in turn.
        """
        if row.spec_head is None:
            return None
        start = self.specbuf.entry(row.spec_head)
        cursor = start
        while True:
            if not cursor.on_fly and self.security.speculation_allowed(cursor.endpoint):
                tick = self.algorithm.send_tick(cursor, self.env.now)
                if tick is not None:
                    cursor.on_fly = True
                    row.spec_head = cursor.next_index
                    return SpecTarget(cursor.target_line, cursor.index, max(tick, self.env.now))
            cursor = self.specbuf.entry(cursor.next_index)
            if cursor is start:
                return None

    def _on_spec_response(self, entry: ProdEntry, hit: bool) -> None:
        """Feed the hit/miss response into the entry's latches (Figure 6)."""
        assert entry.spec_entry_index is not None
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        spec_entry.on_fly = False
        self.algorithm.on_response(spec_entry, hit, self.env.now)
        if hit:
            spec_entry.advance_offset()
            entry.spec_entry_index = None

    # ------------------------------------------------------------------ metrics
    def spec_failure_rate(self) -> float:
        attempts = self.stats.get("spec_pushes")
        return self.stats.get("spec_failures") / attempts if attempts else 0.0
