"""The SPAMeR Routing Device (SRD) — Section 3.2.

The SRD is the VLRD plus a parallel speculation path: when the address
mapping pipeline finds no consumer request for an incoming packet's SQI, it
looks up ``linkTab.specHead`` → specBuf in parallel with the consBuf lookup
and, if the entry is available (valid, not throttled by ``on_fly``, and
permitted by the security policy), derives a speculative target
``specTgt = base + offset × cacheline`` and a *send tick* from the delay
prediction algorithm.  The packet then takes path (A) of Figure 5 — the
speculative push queue — instead of parking on the SQI's buffering queue.

Architecturally the SRD is a thin composition: it owns the specBuf, the
security policy and the algorithm, and plugs them into the shared
:class:`~repro.vlink.pipeline.MappingPipeline` as a
:class:`~repro.spamer.policy.SpecBufSpeculation` stage — everything the
speculation path does (Figure 6's latches, ``offset`` rotation on hits,
throttling) lives in the policy, not in subclass overrides.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import SystemConfig
from repro.mem.bus import CoherenceNetwork
from repro.registry import register_device
from repro.sim.hooks import HookBus
from repro.sim.trace import TraceRecorder
from repro.spamer.delay import DelayAlgorithm
from repro.spamer.policy import SpecBufSpeculation
from repro.spamer.security import SecurityPolicy
from repro.spamer.specbuf import SpecBuf
from repro.vlink.pipeline import SpeculationPolicy
from repro.vlink.vlrd import VirtualLinkRoutingDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment
    from repro.vlink.endpoint import ConsumerEndpoint


@register_device(
    "spamer",
    accepts_algorithm=True,
    default_algorithm="tuned",
    accepts_security=True,
    description="SPAMeR device (specBuf + delay-predicted speculative pushes)",
)
class SpamerRoutingDevice(VirtualLinkRoutingDevice):
    """VLRD extended with specBuf, linkTabSpec and the speculative push path."""

    kind = "SRD"
    supports_speculation = True

    def __init__(
        self,
        env: "Environment",
        config: SystemConfig,
        network: CoherenceNetwork,
        algorithm: DelayAlgorithm,
        trace: Optional[TraceRecorder] = None,
        security: Optional[SecurityPolicy] = None,
        hooks: Optional[HookBus] = None,
    ) -> None:
        # The policy components must exist before the base constructor
        # builds the pipeline (it calls _make_speculation).
        self.algorithm = algorithm
        self.specbuf = SpecBuf(config.specbuf_entries)
        self.security = security or SecurityPolicy()
        super().__init__(env, config, network, trace=trace, hooks=hooks)

    def _make_speculation(self) -> SpeculationPolicy:
        # Burst (multi-push) speculation turns on when either the config
        # asks for it (``burst_k > 1``) or the algorithm is the multipush
        # carrier; with the single-push default the plain specBuf policy is
        # built, keeping the golden runs bit-identical.
        from repro.spamer.multipush import MultiPushDelay, MultiPushSpeculation

        algorithm = self.algorithm
        burst_k = self.config.burst_k
        p_min = self.config.p_min
        if isinstance(algorithm, MultiPushDelay):
            if algorithm.burst_k is not None:
                burst_k = algorithm.burst_k
            if algorithm.p_min is not None:
                p_min = algorithm.p_min
            algorithm = algorithm.inner
            multipush = True
        else:
            multipush = burst_k > 1
        if multipush:
            return MultiPushSpeculation(
                self.specbuf,
                algorithm,
                self.security,
                self.linktab,
                self.stats,
                device=self,
                burst_k=burst_k,
                p_min=p_min,
                hooks=self.hooks,
            )
        return SpecBufSpeculation(
            self.specbuf,
            algorithm,
            self.security,
            self.linktab,
            self.stats,
            hooks=self.hooks,
        )

    # ------------------------------------------------------------------ metrics
    def spec_failure_rate(self) -> float:
        attempts = self.stats.get("spec_pushes")
        return self.stats.get("spec_failures") / attempts if attempts else 0.0
