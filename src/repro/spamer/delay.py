"""Delay-prediction algorithms (Section 3.5, Listing 1, Figure 6).

Speculation in SPAMeR answers two questions; *which* cacheline to push to is
handled by specBuf rotation, and *when* to push is delegated to one of the
pluggable algorithms here:

* :class:`ZeroDelay` — push as soon as producer data is available; never
  misses an opportunity but wastes bus bandwidth and energy on failures.
* :class:`AdaptiveDelay` — halve the per-endpoint delay on a successful
  push, double it on a failure; cheap but "too simple to fully model the
  consumer behavior" (it learns FIR's slow-path period).
* :class:`TunedDelay` — the paper's Listing 1: uses the interval between
  the two most recent successful pushes as a reference and scans a window
  ``[ref - τ, ref + ζ]`` around it in additive steps of δ, escalating
  multiplicatively (left shift by α) past the deadline; β controls the
  initialization phase.
* :class:`FixedDelay` / :class:`NeverPush` — ablation controls beyond the
  paper's minimum.

All state lives in the :class:`~repro.spamer.specbuf.SpecEntry` latches
(per-endpoint isolation, Section 3.6); algorithm instances are stateless
policy objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.registry import register_algorithm
from repro.sim.rng import bithash
from repro.spamer.specbuf import SpecEntry

#: Liveness cap: spec-enabled endpoints have no request fallback (their
#: dequeue path skips vl_fetch entirely — Section 3.4), so a delay allowed
#: to grow without bound would stall the consumer forever.
MAX_DELAY = 1 << 15


class DelayAlgorithm:
    """Interface: decide the send tick and learn from push responses."""

    name = "abstract"

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        """Absolute cycle to send the speculative push (None = never)."""
        raise NotImplementedError

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        """Update the entry's latches with the hit/miss response signal."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


@register_algorithm("0delay")
class ZeroDelay(DelayAlgorithm):
    """Push immediately whenever producer data is available (Section 3.5)."""

    name = "0delay"

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        return now

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        entry.failed = not hit
        if hit:
            entry.nfills += 1
            entry.last = now


@register_algorithm("adapt")
class AdaptiveDelay(DelayAlgorithm):
    """Halve the delay on success, double it on failure (Section 3.5)."""

    name = "adapt"

    def __init__(self, initial_delay: int = 64, max_delay: int = MAX_DELAY) -> None:
        if initial_delay < 0 or max_delay < 1:
            raise ConfigError("AdaptiveDelay: invalid delay bounds")
        self.initial_delay = initial_delay
        self.max_delay = max_delay

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        if entry.nfills == 0 and entry.delay == 0 and not entry.failed:
            entry.delay = self.initial_delay
        return now + entry.delay

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        if hit:
            entry.delay >>= 1
            entry.nfills += 1
            entry.last = now
        else:
            entry.delay = min(self.max_delay, max(1, entry.delay << 1))
        entry.failed = not hit


@dataclass(frozen=True)
class TunedParams:
    """The five tuned-algorithm parameters (orange Greek letters, Fig 6).

    Defaults are the paper's chosen set, tuned on FIR and cross-validated on
    the other benchmarks: ζ=256, τ=96, δ=64, α=1, β=2.
    """

    zeta: int = 256   # ζ: deadline margin past the reference interval
    tau: int = 96     # τ: how far below the reference the scan starts
    delta: int = 64   # δ: additive step within the scanning range
    alpha: int = 1    # α: left-shift applied past the deadline
    beta: int = 2     # β: length of the initialization phase (in fills)

    def __post_init__(self) -> None:
        if self.zeta < 0 or self.tau < 0 or self.delta < 1:
            raise ConfigError(f"invalid tuned parameters: {self}")
        if self.alpha < 0 or self.beta < 1:
            raise ConfigError(f"invalid tuned parameters: {self}")

    def label(self) -> str:
        return (
            f"z{self.zeta}-t{self.tau}-d{self.delta}-a{self.alpha}-b{self.beta}"
        )


@register_algorithm("tuned")
class TunedDelay(DelayAlgorithm):
    """The paper's tuned delay prediction (Listing 1)."""

    name = "tuned"

    def __init__(self, params: TunedParams = TunedParams(), max_delay: int = MAX_DELAY) -> None:
        self.params = params
        self.max_delay = max_delay

    # -- Listing 1, lookupSpecTab ------------------------------------------------
    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        p = self.params
        tsc = now
        halved = entry.delay >> bithash(entry.delay, tsc)
        elapse = tsc - entry.last
        if entry.nfills < p.beta:
            # Initializing phase: no reference interval yet.
            return tsc + (p.delta if entry.failed else 0)
        if elapse < halved:
            # Early enough to try the (hash-)halved delay.
            return entry.last + halved
        if elapse < entry.delay:
            # Early enough for the planned delay.
            return entry.last + entry.delay
        if not entry.failed:
            # Data became available later than planned; try right away.
            return tsc
        if elapse < entry.ddl:
            # Planned delay fell behind but the deadline has not passed:
            # scan forward in additive steps.
            return tsc + p.delta
        return tsc + min(entry.delay, self.max_delay)

    # -- Listing 1, updateResponse -----------------------------------------------
    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        p = self.params
        tsc = now
        if hit:
            # The interval between the two most recent hits is the reference;
            # [ref - tau, ref + zeta] becomes the next scanning range.
            entry.delay = max(0, tsc - p.tau - entry.last)
            entry.ddl = tsc + p.zeta - entry.last
            entry.nfills += 1
            entry.last = tsc
        else:
            stepped = entry.delay + p.delta
            doubled = entry.delay << p.alpha
            if entry.delay < entry.ddl:
                # Before the deadline: retry after an additive step.
                entry.delay = min(self.max_delay, stepped)
            else:
                # Past the deadline: escalate multiplicatively.
                entry.delay = min(self.max_delay, max(stepped, doubled))
        entry.failed = not hit


@register_algorithm("fixed", requires_params=True)
class FixedDelay(DelayAlgorithm):
    """Ablation control: always wait a constant number of cycles."""

    name = "fixed"

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ConfigError(f"FixedDelay: negative delay {delay}")
        self.delay = delay

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        return now + self.delay

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:
        entry.failed = not hit
        if hit:
            entry.nfills += 1
            entry.last = now


@register_algorithm("never")
class NeverPush(DelayAlgorithm):
    """Ablation control: speculation disabled (degenerates to VL behaviour
    for endpoints that still issue requests).

    Spec-enabled endpoints never issue fetches, so running this setting on
    a workload whose consumers are speculative stalls by construction: the
    stall watchdog detects it and raises
    :class:`~repro.errors.SimDeadlockError` naming the blocked consumers —
    the diagnostic that makes the ablation safe to offer as a setting.
    """

    name = "never"

    def send_tick(self, entry: SpecEntry, now: int) -> Optional[int]:
        return None

    def on_response(self, entry: SpecEntry, hit: bool, now: int) -> None:  # pragma: no cover
        raise AssertionError("NeverPush cannot receive responses")


def algorithm_by_name(name: str, **kwargs) -> DelayAlgorithm:
    """Factory used by the evaluation harness and the examples.

    A thin shim over :func:`repro.registry.resolve_algorithm` — the single
    name→constructor map every layer shares.  Unknown names raise
    :class:`~repro.errors.ConfigError` listing the registered algorithms.
    """
    from repro.registry import resolve_algorithm

    return resolve_algorithm(name, **kwargs)
