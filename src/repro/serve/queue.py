"""The admission-controlled job queue behind the serve daemon.

A :class:`Job` wraps one :class:`~repro.eval.parallel.RunRequest` with
its serving lifecycle — ``QUEUED → RUNNING → DONE | FAILED`` (or
``CANCELLED`` when a stop discards queued work).  The queue itself is
deliberately small: it owns admission (a bounded depth that rejects with
the typed :class:`~repro.errors.AdmissionError` instead of queueing
unboundedly) and delegates *which job runs next* to a registered
:class:`~repro.serve.policy.SchedPolicy`.  Wall-clock timestamps live on
the job so the daemon can report per-job wait vs service time — these are
serving metrics, measured in real seconds, entirely separate from the
deterministic simulated clock inside each run.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.errors import AdmissionError, ConfigError, JobNotFoundError
from repro.eval.metrics import RunMetrics
from repro.eval.parallel import RunRequest
from repro.serve.policy import DEFAULT_POLICY, SchedPolicy, make_sched_policy

#: Default bound on queued (admitted, not yet running) jobs.
DEFAULT_MAX_DEPTH = 64


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One admitted run request and its serving lifecycle."""

    job_id: str
    request: RunRequest
    priority: int = 0
    #: Rank-only cost estimate (see :func:`repro.serve.policy.estimate_cost`).
    estimate: float = 0.0
    #: Monotone admission sequence number — FIFO order within the daemon.
    seq: int = 0
    state: JobState = JobState.QUEUED
    #: Times the shortest-first policy skipped this job (starvation aging).
    passed_over: int = 0
    #: Wall-clock lifecycle stamps (seconds, time.monotonic domain).
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Set on completion: exactly one of metrics/error for DONE/FAILED.
    metrics: Optional[RunMetrics] = None
    error: Optional[BaseException] = None
    #: True when the result came straight from the result cache.
    cache_hit: bool = False
    cache_key: Optional[str] = None

    @property
    def wait_s(self) -> Optional[float]:
        """Admission-to-dispatch wall time (None while queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def service_s(self) -> Optional[float]:
        """Dispatch-to-completion wall time (None until finished)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def describe(self) -> Dict:
        """A JSON-able status snapshot (spool heartbeats, CLI status)."""
        return {
            "job_id": self.job_id,
            "workload": self.request.workload,
            "setting": self.request.setting().label,
            "priority": self.priority,
            "estimate": self.estimate,
            "state": self.state.value,
            "cache_hit": self.cache_hit,
            "wait_s": self.wait_s,
            "service_s": self.service_s,
        }


class JobQueue:
    """Bounded queue of admitted jobs with pluggable dispatch order."""

    def __init__(
        self,
        policy: str | SchedPolicy = DEFAULT_POLICY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        if max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        self.policy = (
            policy if isinstance(policy, SchedPolicy)
            else make_sched_policy(policy)
        )
        self.max_depth = max_depth
        self._queued: List[Job] = []
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count()
        #: Lifetime counters (exported as ``serve.admission.*`` metrics).
        self.admitted = 0
        self.rejected = 0

    # --------------------------------------------------------------- admission
    def submit(
        self,
        job_id: str,
        request: RunRequest,
        priority: int = 0,
        estimate: float = 0.0,
    ) -> Job:
        """Admit one request, or raise :class:`AdmissionError` at the gate."""
        if len(self._queued) >= self.max_depth:
            self.rejected += 1
            raise AdmissionError(
                f"job queue is full ({len(self._queued)}/{self.max_depth} "
                f"queued); rejected {request.workload!r} — back off and "
                "resubmit",
                depth=len(self._queued),
                limit=self.max_depth,
            )
        if job_id in self._jobs:
            raise ConfigError(f"job id {job_id!r} was already submitted")
        job = Job(
            job_id=job_id,
            request=request,
            priority=priority,
            estimate=estimate,
            seq=next(self._seq),
        )
        self._jobs[job_id] = job
        self._queued.append(job)
        self.admitted += 1
        return job

    def adopt(self, job: Job) -> Job:
        """Register a job that bypassed the queue (a cache hit is born
        terminal and never consumes queue depth)."""
        if job.job_id in self._jobs:
            raise ConfigError(f"job id {job.job_id!r} was already submitted")
        job.seq = next(self._seq)
        self._jobs[job.job_id] = job
        return job

    # ---------------------------------------------------------------- dispatch
    def select_next(self) -> Optional[Job]:
        """Pop the policy's pick (None when nothing is queued)."""
        if not self._queued:
            return None
        job = self.policy.select(self._queued)
        self._queued.remove(job)
        job.state = JobState.RUNNING
        job.started_at = time.monotonic()
        return job

    def cancel_queued(self) -> List[Job]:
        """Cancel every still-queued job (a stop discarding backlog)."""
        cancelled = []
        for job in self._queued:
            job.state = JobState.CANCELLED
            job.finished_at = time.monotonic()
            cancelled.append(job)
        self._queued.clear()
        return cancelled

    # ----------------------------------------------------------------- queries
    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet dispatched."""
        return len(self._queued)

    def jobs(self) -> List[Job]:
        """Every job ever admitted, in admission order."""
        return sorted(self._jobs.values(), key=lambda job: job.seq)
