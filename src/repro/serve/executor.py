"""A serve-backed drop-in for :func:`repro.eval.parallel.run_requests`.

Every sweep in ``repro.eval`` funnels through one API — a list of
:class:`~repro.eval.parallel.RunRequest` in, a list of
:class:`~repro.eval.metrics.RunMetrics` out, submission order preserved,
first failure re-raised typed.  :class:`ServeExecutor` implements exactly
that contract on top of the serve layer, so ``repro batch``, ``repro
load`` and ``repro autotune --burst`` can route through a daemon (its
warm pool and result cache included) by passing ``executor=`` — no other
code changes, and byte-identical results by the same determinism
argument as ``--jobs``.

Two backends:

* **embedded** (:meth:`ServeExecutor.local`) — a private in-process
  :class:`~repro.serve.daemon.ServeDaemon`.  The pool stays warm across
  calls, which is the whole point: back-to-back sweeps stop paying the
  worker spawn cost that made ``--jobs`` a loss on small hosts.
* **remote** (:meth:`ServeExecutor.remote`) — a
  :class:`~repro.serve.client.ServeClient` on a spool served by a
  ``repro serve start`` daemon in another process.  An admission
  rejection mid-grid is retried with backoff (the gate says "later",
  not "never"), so grids larger than the daemon's queue bound still
  complete.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.errors import AdmissionError, ConfigError, ServeError
from repro.eval.metrics import RunMetrics
from repro.eval.parallel import RunRequest
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.policy import DEFAULT_POLICY
from repro.serve.queue import DEFAULT_MAX_DEPTH, JobState

#: Outstanding submissions a remote executor keeps in flight per chunk —
#: below the default admission bound so a well-configured daemon never
#: rejects a chunk outright.
DEFAULT_CHUNK = 32


class ServeExecutor:
    """``run_requests``-shaped callable backed by the serve layer."""

    def __init__(
        self,
        daemon: Optional[ServeDaemon] = None,
        client: Optional[ServeClient] = None,
        chunk: int = DEFAULT_CHUNK,
        timeout: Optional[float] = 600.0,
    ) -> None:
        if (daemon is None) == (client is None):
            raise ConfigError(
                "ServeExecutor needs exactly one backend: an embedded "
                "daemon or a spool client"
            )
        if chunk < 1:
            raise ConfigError(f"chunk must be >= 1, got {chunk}")
        self.daemon = daemon
        self.client = client
        self.chunk = chunk
        self.timeout = timeout
        self._owns_daemon = False

    # -------------------------------------------------------------- constructors
    @classmethod
    def local(
        cls,
        jobs: Optional[int] = None,
        policy: str = DEFAULT_POLICY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        cache_dir=None,
        cache: bool = True,
        **daemon_kwargs,
    ) -> "ServeExecutor":
        """An executor owning a private, already-warmed embedded daemon."""
        daemon = ServeDaemon(
            jobs=jobs, policy=policy, max_depth=max_depth,
            cache_dir=cache_dir, cache=cache, **daemon_kwargs,
        ).start()
        executor = cls(daemon=daemon)
        executor._owns_daemon = True
        return executor

    @classmethod
    def remote(cls, spool, **kwargs) -> "ServeExecutor":
        """An executor talking to a ``repro serve start`` daemon."""
        return cls(client=ServeClient(spool), **kwargs)

    # ------------------------------------------------------------------ running
    def __call__(
        self, requests: Sequence[RunRequest], jobs: Optional[int] = None
    ) -> List[RunMetrics]:
        """Run every request; submission order, first typed error re-raised.

        ``jobs`` is accepted for signature compatibility with
        :func:`~repro.eval.parallel.run_requests` and ignored — the
        daemon's worker pool governs parallelism.
        """
        requests = list(requests)
        if self.daemon is not None:
            return self._run_embedded(requests)
        return self._run_remote(requests)

    def run_requests(
        self, requests: Sequence[RunRequest], jobs: Optional[int] = None
    ) -> List[RunMetrics]:
        """Alias of :meth:`__call__`, for callers that prefer the name."""
        return self(requests, jobs=jobs)

    def _run_embedded(self, requests: List[RunRequest]) -> List[RunMetrics]:
        jobs = []
        for request in requests:
            while True:
                try:
                    jobs.append(self.daemon.submit(request))
                    break
                except AdmissionError:
                    # The gate is a *flow-control* signal here: make
                    # progress (dispatch + harvest frees depth) and retry.
                    if not self.daemon.step():
                        time.sleep(0.005)
        self.daemon.drain()
        for job in jobs:
            if job.state is JobState.FAILED:
                raise job.error
            if job.state is not JobState.DONE:
                raise ServeError(
                    f"job {job.job_id} ended {job.state.value!r} mid-grid"
                )
        return [job.metrics for job in jobs]

    def _run_remote(self, requests: List[RunRequest]) -> List[RunMetrics]:
        metrics: List[RunMetrics] = []
        for base in range(0, len(requests), self.chunk):
            window = requests[base:base + self.chunk]
            job_ids = [self.client.submit(request) for request in window]
            for offset, job_id in enumerate(job_ids):
                while True:
                    try:
                        metrics.append(
                            self.client.result(job_id, timeout=self.timeout)
                        )
                        break
                    except AdmissionError:
                        # Rejected at the gate: back off and resubmit the
                        # same request (same cache key, so nothing is
                        # recomputed if it completed elsewhere meanwhile).
                        time.sleep(0.05)
                        job_id = self.client.submit(window[offset])
        return metrics

    # ------------------------------------------------------------------ cleanup
    def close(self) -> None:
        """Stop the embedded daemon (remote daemons belong to their spool)."""
        if self._owns_daemon and self.daemon is not None:
            self.daemon.stop()

    def __enter__(self) -> "ServeExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
