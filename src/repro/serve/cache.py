"""The content-addressed result cache: repeated sweep cells cost zero.

Every simulation in this repo is bit-wise deterministic — the same
:class:`~repro.eval.parallel.RunRequest` produces byte-identical
:class:`~repro.eval.metrics.RunMetrics` in any process on any run (the
contract the parallel executor is built on and ``tests/test_parallel.py``
pins).  That determinism upgrades result caching from a heuristic into a
*proof*: keyed by :meth:`RunRequest.cache_key` — a canonical, versioned
hash of everything a run depends on — a cache hit is not "probably the
same result", it **is** the result, byte for byte.

The cache stores the pinned-protocol pickle of the metrics object
(:data:`~repro.eval.parallel.CACHE_PICKLE_PROTOCOL`), so a hit returns
the exact bytes a fresh run would serialize to.  Storage is two-tier:

* an in-memory dict, always on — the fast path inside one daemon;
* an optional spill directory, one file per key (content-addressed:
  ``<sha256>.pkl``), written atomically (tmp + rename) so a crashed
  daemon never leaves a truncated entry and a restarted daemon warms
  from disk for free.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, Optional

from repro.eval.metrics import RunMetrics
from repro.eval.parallel import CACHE_PICKLE_PROTOCOL, RunRequest


def metrics_bytes(metrics: RunMetrics) -> bytes:
    """The canonical cached serialization of one run's metrics."""
    return pickle.dumps(metrics, protocol=CACHE_PICKLE_PROTOCOL)


class ResultCache:
    """Content-addressed ``cache_key -> pickled RunMetrics`` store."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self._memory: Dict[str, bytes] = {}
        self._dir: Optional[Path] = None
        #: Lifetime hit/miss/store counters (exported as ``serve.cache.*``).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if directory is not None:
            self._dir = Path(directory)
            self._dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ lookup
    def get_bytes(self, key: str) -> Optional[bytes]:
        """The cached pickle for *key*, or None; counts the hit/miss."""
        payload = self._memory.get(key)
        if payload is None and self._dir is not None:
            path = self._dir / f"{key}.pkl"
            if path.exists():
                payload = path.read_bytes()
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get(self, key: str) -> Optional[RunMetrics]:
        """The cached metrics object for *key*, or None."""
        payload = self.get_bytes(key)
        return pickle.loads(payload) if payload is not None else None

    def lookup(self, request: RunRequest) -> Optional[RunMetrics]:
        """One-call convenience: key the request, then :meth:`get`."""
        return self.get(request.cache_key())

    def contains(self, key: str) -> bool:
        """Membership test that does not disturb the hit/miss counters."""
        if key in self._memory:
            return True
        return self._dir is not None and (self._dir / f"{key}.pkl").exists()

    # ------------------------------------------------------------------- store
    def put(self, key: str, metrics: RunMetrics) -> bytes:
        """Store *metrics* under *key*; returns the canonical bytes."""
        payload = metrics_bytes(metrics)
        self._memory[key] = payload
        self.stores += 1
        if self._dir is not None:
            path = self._dir / f"{key}.pkl"
            tmp = self._dir / f".{key}.{os.getpid()}.tmp"
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        return payload

    # ----------------------------------------------------------------- queries
    def __len__(self) -> int:
        if self._dir is not None:
            on_disk = {p.stem for p in self._dir.glob("*.pkl")}
            return len(on_disk | set(self._memory))
        return len(self._memory)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }
