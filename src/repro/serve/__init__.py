"""``repro.serve`` — the long-lived experiment service.

The serving layer on top of the deterministic batch machinery: a resident
daemon with a persistent warmed worker pool, an admission-controlled job
queue with registry-driven scheduling policies, and a content-addressed
result cache made provably exact by bit-wise determinism.  Architecture,
cache-correctness argument and policy guide: ``docs/SERVING.md``.
"""

from repro.serve.cache import ResultCache, metrics_bytes
from repro.serve.client import ServeClient
from repro.serve.daemon import JobEventLog, ServeDaemon
from repro.serve.executor import ServeExecutor
from repro.serve.policy import (
    DEFAULT_POLICY,
    STARVATION_LIMIT,
    SchedPolicy,
    calibrated_estimates,
    estimate_cost,
    make_sched_policy,
    register_sched_policy,
    sched_policy_names,
)
from repro.serve.queue import DEFAULT_MAX_DEPTH, Job, JobQueue, JobState
from repro.serve.spool import Spool, new_job_id

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_POLICY",
    "Job",
    "JobEventLog",
    "JobQueue",
    "JobState",
    "ResultCache",
    "STARVATION_LIMIT",
    "SchedPolicy",
    "ServeClient",
    "ServeDaemon",
    "ServeExecutor",
    "Spool",
    "calibrated_estimates",
    "estimate_cost",
    "make_sched_policy",
    "metrics_bytes",
    "new_job_id",
    "register_sched_policy",
    "sched_policy_names",
]
