"""Registry-driven scheduling policies for the serve job queue.

The daemon's dispatch loop asks its policy one question — *of the queued
jobs, which runs next?* — every time a worker slot frees up.  Policies
never touch running jobs (no preemption of in-flight simulations; a
dispatched run always completes or fails on its own), so a policy is one
pure selection function over the queued set, registered by name exactly
like devices, topologies, arrivals and kernel schedulers:

* ``fifo`` (default) — strict submission order, the rtp-llm
  ``FIFOScheduler`` shape: predictable, starvation-free.
* ``priority`` — highest ``Job.priority`` first, submission order within
  a priority level.  A late high-priority probe overtakes every *queued*
  sweep cell but never an already-running one.
* ``shortest-first`` — smallest cost estimate first, with an explicit
  starvation bound: a job passed over :data:`STARVATION_LIMIT` times is
  selected regardless of its estimate, so one long sweep behind a stream
  of short probes waits a bounded, testable number of dispatches.

Cost estimates come from :func:`estimate_cost`: a calibration table
measured by the load sweep (:class:`repro.eval.load.LoadResult` phase 1 —
closed-batch cycles per (topology, setting) cell) when one is supplied,
else a static per-request heuristic (the workload's nominal request quota
scaled by message scale).  Estimates only ever *rank* jobs; no policy
reads them as absolute time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.parallel import RunRequest
    from repro.serve.queue import Job

#: Times a queued job may be passed over by ``shortest-first`` before it
#: is forcibly selected (the starvation bound the tests pin).
STARVATION_LIMIT = 8

DEFAULT_POLICY = "fifo"

_POLICIES: Dict[str, type] = {}


def register_sched_policy(name: str, *, description: str = ""):
    """Class decorator: make a scheduling policy constructible by *name*."""

    def decorator(cls):
        if name in _POLICIES:
            raise ConfigError(f"sched policy {name!r} is already registered")
        cls.name = name
        cls.description = (
            description or (cls.__doc__ or "").strip().split("\n")[0]
        )
        _POLICIES[name] = cls
        return cls

    return decorator


def sched_policy_names() -> List[str]:
    return sorted(_POLICIES)


def make_sched_policy(name: str) -> "SchedPolicy":
    cls = _POLICIES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown sched policy {name!r}; registered: {sched_policy_names()}"
        )
    return cls()


class SchedPolicy(ABC):
    """Selects the next queued job when a worker slot frees up."""

    name = "abstract"

    @abstractmethod
    def select(self, queued: Sequence["Job"]) -> "Job":
        """The job to dispatch next; *queued* is non-empty, in seq order."""


@register_sched_policy("fifo", description="strict submission order")
class FifoPolicy(SchedPolicy):
    """First submitted, first dispatched — the predictable default."""

    def select(self, queued: Sequence["Job"]) -> "Job":
        return min(queued, key=lambda job: job.seq)


@register_sched_policy(
    "priority", description="highest priority first, FIFO within a level"
)
class PriorityPolicy(SchedPolicy):
    """Short probe runs jump the queue ahead of long sweeps.

    Only *queued* work is overtaken: a running job is never preempted, so
    a high-priority submission waits at most one in-flight service time
    per worker before dispatch.
    """

    def select(self, queued: Sequence["Job"]) -> "Job":
        return min(queued, key=lambda job: (-job.priority, job.seq))


@register_sched_policy(
    "shortest-first",
    description="smallest cost estimate first, with a starvation bound",
)
class ShortestFirstPolicy(SchedPolicy):
    """Minimize mean wait by running cheap jobs first — boundedly.

    Pure shortest-job-first starves a long job under a steady stream of
    short ones; here every pass-over increments ``Job.passed_over`` and a
    job that reaches :data:`STARVATION_LIMIT` is dispatched next no
    matter its estimate (oldest such job first), so the wait of any job
    is bounded by ``STARVATION_LIMIT`` dispatches.
    """

    def __init__(self, starvation_limit: int = STARVATION_LIMIT) -> None:
        if starvation_limit < 1:
            raise ConfigError(
                f"starvation_limit must be >= 1, got {starvation_limit}"
            )
        self.starvation_limit = starvation_limit

    def select(self, queued: Sequence["Job"]) -> "Job":
        starved = [j for j in queued if j.passed_over >= self.starvation_limit]
        if starved:
            chosen = min(starved, key=lambda job: job.seq)
        else:
            chosen = min(queued, key=lambda job: (job.estimate, job.seq))
        for job in queued:
            if job is not chosen:
                job.passed_over += 1
        return chosen


# ------------------------------------------------------------------- estimates
def calibrated_estimates(load_result) -> Dict[Tuple[str, str], float]:
    """A calibration table from a load sweep's closed-batch phase.

    Maps ``(topology, setting label) -> measured closed-batch cycles``,
    the exact quantity :func:`repro.eval.load.load_experiment` measures
    before sweeping — so a daemon warmed with one cheap load sweep ranks
    subsequent jobs by *measured* cost instead of the static heuristic.
    """
    return {
        (row["topology"], row["setting"]): float(row["cycles"])
        for row in load_result.calibration
    }


def estimate_cost(
    request: "RunRequest",
    calibration: Optional[Dict[Tuple[str, str], float]] = None,
) -> float:
    """A rank-only cost estimate for one request.

    With a *calibration* table (see :func:`calibrated_estimates`), a
    matching (topology, setting-label) cell returns its measured cycles.
    Otherwise the estimate is the workload's nominal request quota at the
    request's scale — the same size proxy the load sweep's rate math uses
    — falling back to the thread count for closed-only workloads.  Only
    the *ordering* of estimates matters to any policy.
    """
    from repro.workloads.registry import make_workload

    if calibration:
        topology = (
            request.config.topology if request.config is not None
            else "single-bus"
        )
        label = request.setting().label
        measured = calibration.get((topology, label))
        if measured is not None:
            return measured
    workload = make_workload(request.workload, scale=request.scale)
    try:
        return float(sum(workload.session_quotas().values()))
    except WorkloadError:
        # Closed-only (dependency-driven) workloads have no sessions; the
        # thread count scaled by message scale still ranks small probes
        # below big sweeps, which is all a policy needs.
        return float(workload.num_threads()) * request.scale
