"""The long-lived experiment daemon: warm pool + queue + result cache.

``repro serve start`` turns the repo from a batch runner into a service:
one resident process owns a **persistent warmed**
:class:`~concurrent.futures.ProcessPoolExecutor` (worker spawn — the cost
that made ``--jobs`` a loss on small hosts — is paid once at startup, not
once per sweep), an admission-controlled :class:`~repro.serve.queue
.JobQueue` dispatching by a registered scheduling policy, and a
content-addressed :class:`~repro.serve.cache.ResultCache` that turns any
repeated sweep cell into a zero-cost, provably byte-identical hit.

The daemon is a plain polling loop (:meth:`ServeDaemon.step`) so tests
drive it deterministically in-process while ``serve_forever`` runs the
same loop against a filesystem :class:`~repro.serve.spool.Spool` for real
multi-process clients.  Crash isolation mirrors the parallel executor's
contract: a typed simulation failure (deadlock, verification) travels
back pickled and marks only its own job ``FAILED``; a hard worker death
(the pool breaks) fails the in-flight jobs with a typed
:class:`~repro.errors.ServeError` and the daemon rebuilds its pool and
keeps serving.

Observability rides the standard :class:`~repro.obs.MetricsRegistry`:
``serve.*`` counters/gauges/histograms (queue depth, admission rejects,
cache hit/miss, per-job wait vs service wall time) plus a per-job JSONL
event log.  Serve metrics are *wall-clock* — they describe the service,
never the simulations, whose own metrics stay purely simulated-time.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import AdmissionError, ServeError
from repro.eval.parallel import RunRequest, execute_request, make_pool, resolve_jobs
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.policy import DEFAULT_POLICY, estimate_cost
from repro.serve.queue import DEFAULT_MAX_DEPTH, Job, JobQueue, JobState
from repro.serve.spool import Spool

#: Result-file state for a submission refused at the admission gate.
REJECTED = "rejected"


class JobEventLog:
    """Append-only JSONL log of per-job serving events.

    One line per lifecycle transition — ``{"t": wall seconds, "event":
    ..., "job": ..., ...}`` — the serving-side sibling of the simulation
    JSONL stream (:class:`~repro.obs.JsonlTraceSink`).  ``path=None``
    disables logging at one ``is not None`` check per event.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = Path(path) if path is not None else None

    def emit(self, event: str, job_id: str = "", **fields) -> None:
        if self.path is None:
            return
        record = {"t": round(time.time(), 6), "event": event}
        if job_id:
            record["job"] = job_id
        record.update(fields)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


class ServeDaemon:
    """The resident experiment service; see the module docstring."""

    def __init__(
        self,
        spool: Optional[Spool] = None,
        jobs: Optional[int] = None,
        policy: str = DEFAULT_POLICY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        cache_dir: Optional[Path] = None,
        cache: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        events_path: Optional[Path] = None,
        calibration: Optional[Dict] = None,
        runner: Callable[[RunRequest], object] = execute_request,
    ) -> None:
        self.spool = spool
        self.queue = JobQueue(policy=policy, max_depth=max_depth)
        if cache_dir is None and spool is not None:
            cache_dir = spool.cache_dir
        self.cache = ResultCache(cache_dir) if cache else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if events_path is None and spool is not None:
            events_path = spool.events_path
        self.events = JobEventLog(events_path)
        self.calibration = calibration
        self._runner = runner
        self._workers = resolve_jobs(jobs)
        self._pool = None
        self._running: Dict[str, Future] = {}
        self._started = False
        self._stopped = False

    @property
    def workers(self) -> int:
        """Resolved size of the persistent worker pool."""
        return self._workers

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "ServeDaemon":
        """Create and warm the persistent worker pool; idempotent."""
        if self._pool is None and not self._stopped:
            t0 = time.monotonic()
            self._pool = make_pool(self._workers, warm=True)
            self.metrics.gauge_set(
                "serve.pool.workers", float(self._workers)
            )
            self.metrics.gauge_set(
                "serve.pool.warmup_ms",
                round((time.monotonic() - t0) * 1000.0, 3),
            )
            self.events.emit("start", workers=self._workers)
            self._started = True
        return self

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ---------------------------------------------------------------- admission
    def submit(
        self,
        request: RunRequest,
        priority: int = 0,
        estimate: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Job:
        """Admit one request (or serve it straight from the cache).

        Raises :class:`AdmissionError` when the queue is at its depth
        bound or the daemon is stopped.  A cache hit never consumes queue
        depth: the job is born terminal with the cached metrics attached.
        """
        from repro.serve.spool import new_job_id

        if self._stopped:
            raise AdmissionError(
                "daemon is stopped; restart it before submitting",
                depth=self.queue.depth,
                limit=self.queue.max_depth,
            )
        job_id = job_id or new_job_id()
        key = None
        if self.cache is not None:
            key = request.cache_key()
            payload = self.cache.get_bytes(key)
            if payload is not None:
                self.metrics.inc("serve.cache.hits")
                import pickle

                job = Job(job_id=job_id, request=request, priority=priority)
                job.state = JobState.DONE
                job.started_at = job.submitted_at
                job.finished_at = time.monotonic()
                job.metrics = pickle.loads(payload)
                job.cache_hit = True
                job.cache_key = key
                self.queue.adopt(job)
                self.metrics.inc("serve.jobs.completed")
                self.events.emit(
                    "cache-hit", job_id, key=key, workload=request.workload
                )
                self._publish(job)
                return job
            self.metrics.inc("serve.cache.misses")
        try:
            job = self.queue.submit(
                job_id,
                request,
                priority=priority,
                estimate=(
                    estimate if estimate is not None
                    else estimate_cost(request, self.calibration)
                ),
            )
        except AdmissionError as exc:
            self.metrics.inc("serve.admission.rejected")
            self.events.emit(
                "rejected", job_id, depth=exc.depth, limit=exc.limit
            )
            raise
        job.cache_key = key
        self.metrics.inc("serve.jobs.submitted")
        self.metrics.gauge_set("serve.queue.depth", float(self.queue.depth))
        self.metrics.gauge_max(
            "serve.queue.depth.max", float(self.queue.depth)
        )
        self.events.emit(
            "submitted", job_id,
            workload=request.workload,
            setting=request.setting().label,
            priority=priority,
        )
        return job

    # -------------------------------------------------------------------- step
    def step(self) -> int:
        """One poll: ingest spool, harvest finished runs, dispatch.

        Returns the number of state transitions made — zero means idle,
        which is what the serve loop keys its sleep on.
        """
        self.start()
        progress = self._ingest()
        progress += self._harvest()
        progress += self._dispatch()
        return progress

    def _ingest(self) -> int:
        """Pull spooled submissions into the queue (multi-process path)."""
        if self.spool is None:
            return 0
        progress = 0
        for path in self.spool.pending_jobs():
            entry = self.spool.claim(path)
            if entry is None:
                continue
            progress += 1
            try:
                self.submit(
                    entry["request"],
                    priority=entry.get("priority", 0),
                    estimate=entry.get("estimate"),
                    job_id=entry["job_id"],
                )
            except AdmissionError as exc:
                # The gate's verdict travels back typed through the spool.
                self.spool.write_result(
                    entry["job_id"],
                    {
                        "job_id": entry["job_id"],
                        "state": REJECTED,
                        "metrics_bytes": None,
                        "error": exc,
                        "cache_hit": False,
                        "cache_key": None,
                        "wait_s": None,
                        "service_s": None,
                    },
                )
        return progress

    def _harvest(self) -> int:
        """Collect finished futures; rebuild the pool after a worker death."""
        progress = 0
        pool_broken = False
        for job_id in [j for j, f in self._running.items() if f.done()]:
            future = self._running.pop(job_id)
            job = self.queue.get(job_id)
            try:
                job.metrics = future.result()
                job.state = JobState.DONE
            except BrokenProcessPool as exc:
                pool_broken = True
                job.error = ServeError(
                    f"worker died mid-job while running "
                    f"{job.request.workload!r} ({job.job_id}): {exc}"
                )
                job.state = JobState.FAILED
            except Exception as exc:  # noqa: BLE001 - typed errors pass through
                job.error = exc
                job.state = JobState.FAILED
            job.finished_at = time.monotonic()
            progress += 1
            self._finish(job)
        if pool_broken and not self._stopped:
            # Crash isolation: the broken pool took its workers down, not
            # the service.  Stand a fresh warmed pool up and keep going.
            self._pool.shutdown(wait=False)
            self._pool = make_pool(self._workers, warm=True)
            self.metrics.inc("serve.pool.rebuilds")
            self.events.emit("pool-rebuilt", workers=self._workers)
        return progress

    def _dispatch(self) -> int:
        """Fill free worker slots in policy order."""
        progress = 0
        while len(self._running) < self._workers:
            job = self.queue.select_next()
            if job is None:
                break
            self._running[job.job_id] = self._pool.submit(
                self._runner, job.request
            )
            self.metrics.gauge_set(
                "serve.queue.depth", float(self.queue.depth)
            )
            self.events.emit(
                "dispatched", job.job_id,
                wait_ms=round((job.wait_s or 0.0) * 1000.0, 3),
            )
            progress += 1
        return progress

    def _finish(self, job: Job) -> None:
        """Terminal bookkeeping: cache, metrics, events, spool result."""
        if job.state is JobState.DONE:
            self.metrics.inc("serve.jobs.completed")
            if self.cache is not None and job.cache_key is not None:
                self.cache.put(job.cache_key, job.metrics)
        elif job.state is JobState.FAILED:
            self.metrics.inc("serve.jobs.failed")
        else:
            self.metrics.inc("serve.jobs.cancelled")
        if job.wait_s is not None:
            self.metrics.observe(
                "serve.job.wait_ms", int(job.wait_s * 1000.0)
            )
        if job.service_s is not None:
            self.metrics.observe(
                "serve.job.service_ms", int(job.service_s * 1000.0)
            )
        self.events.emit(
            job.state.value, job.job_id,
            wait_ms=round((job.wait_s or 0.0) * 1000.0, 3),
            service_ms=round((job.service_s or 0.0) * 1000.0, 3),
            error=(str(job.error) if job.error is not None else None),
        )
        self._publish(job)

    def _publish(self, job: Job) -> None:
        """Write a terminal job's result payload to the spool (if any)."""
        if self.spool is None or not job.state.terminal:
            return
        from repro.serve.cache import metrics_bytes

        self.spool.write_result(
            job.job_id,
            {
                "job_id": job.job_id,
                "state": job.state.value,
                "metrics_bytes": (
                    metrics_bytes(job.metrics)
                    if job.metrics is not None else None
                ),
                "error": job.error,
                "cache_hit": job.cache_hit,
                "cache_key": job.cache_key,
                "wait_s": job.wait_s,
                "service_s": job.service_s,
            },
        )

    # -------------------------------------------------------------- drain/stop
    def drain(self, poll_s: float = 0.01) -> None:
        """Finish every accepted and spooled job; returns when idle."""
        self.start()
        while True:
            progress = self.step()
            if (
                not progress
                and not self._running
                and self.queue.depth == 0
                and (self.spool is None or not self.spool.pending_jobs())
            ):
                break
            if not progress:
                time.sleep(poll_s)
        self.events.emit("drained")

    def stop(self) -> None:
        """Finish in-flight jobs, cancel the backlog, release the pool.

        Idempotent: a second (or tenth) call on a stopped daemon — or a
        call on one that never started — is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        for job in self.queue.cancel_queued():
            self._finish(job)
        # In-flight jobs run to completion: dispatched simulations are
        # never preempted, matching every scheduling policy's contract.
        while self._running:
            if not self._harvest():
                time.sleep(0.01)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.events.emit("stop")
        if self.spool is not None:
            self.spool.write_status(self.status())
            self.spool.clear_pid()

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ----------------------------------------------------------------- status
    def status(self) -> Dict:
        """The heartbeat document (also ``repro serve status``)."""
        jobs = self.queue.jobs()
        return {
            "stopped": self._stopped,
            "workers": self._workers,
            "policy": self.queue.policy.name,
            "max_depth": self.queue.max_depth,
            "queued": self.queue.depth,
            "running": len(self._running),
            "admitted": self.queue.admitted,
            "rejected": self.queue.rejected,
            "completed": sum(
                1 for j in jobs if j.state is JobState.DONE
            ),
            "failed": sum(1 for j in jobs if j.state is JobState.FAILED),
            "cache": self.cache.stats() if self.cache is not None else None,
            "metrics": self.metrics.as_dict(),
        }

    def serve_forever(self, poll_s: float = 0.05) -> None:
        """The spool-driven service loop (``repro serve start``)."""
        if self.spool is None:
            raise ServeError("serve_forever needs a spool to poll")
        self.spool.clear_control()
        self.spool.write_pid()
        self.start()
        self.spool.write_status(self.status())
        last_beat = time.monotonic()
        try:
            while True:
                progress = self.step()
                for drain_marker in self.spool.pending_drains():
                    self.drain()
                    self.spool.ack_drain(drain_marker)
                    self.spool.write_status(self.status())
                if self.spool.stop_requested():
                    break
                now = time.monotonic()
                if progress or now - last_beat >= 1.0:
                    self.spool.write_status(self.status())
                    last_beat = now
                if not progress:
                    time.sleep(poll_s)
        finally:
            self.stop()
            self.spool.stop_file.unlink(missing_ok=True)
