"""The filesystem spool: the daemon's client-facing wire protocol.

``repro serve`` talks over a plain directory instead of a socket: a
submission is an atomically-renamed pickle in ``jobs/``, a result is an
atomically-renamed pickle in ``results/<job_id>.result``, and control
actions (drain, stop) are marker files in ``control/``.  Atomic rename is
the whole protocol — a reader never observes a half-written file, any
number of client processes can submit concurrently, and everything works
on any local filesystem with no daemon-side accept loop to crash.  Job
ids embed a nanosecond timestamp + pid + per-process counter, so
lexicographic filename order *is* cross-client submission order and the
daemon's FIFO policy stays meaningful across processes.

Layout under one spool root::

    jobs/<job_id>.job          pending submissions (daemon deletes on claim)
    results/<job_id>.result    terminal payloads (pickle: state/metrics/error)
    cache/<sha256>.pkl         the content-addressed result cache
    control/stop               stop marker (daemon exits after in-flight work)
    control/drain-<token>      drain request; acked as drained-<token>
    status.json                heartbeat: queue depth, cache stats, metrics
    events.jsonl               per-job JSONL event log (see repro.obs docs)
    daemon.pid                 liveness marker for `repro serve status`
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional

from repro.eval.parallel import CACHE_PICKLE_PROTOCOL, RunRequest

_JOB_SUFFIX = ".job"
_RESULT_SUFFIX = ".result"

_local_counter = itertools.count()


def new_job_id() -> str:
    """Sortable, collision-free job id (timestamp.pid.counter.nonce)."""
    return (
        f"{time.time_ns():020d}-{os.getpid():07d}"
        f"-{next(_local_counter):06d}-{uuid.uuid4().hex[:8]}"
    )


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


class Spool:
    """One spool root, shared by a daemon and any number of clients."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.cache_dir = self.root / "cache"
        self.control_dir = self.root / "control"
        for directory in (
            self.jobs_dir, self.results_dir, self.cache_dir, self.control_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- submissions
    def submit(
        self,
        request: RunRequest,
        priority: int = 0,
        estimate: Optional[float] = None,
    ) -> str:
        """Spool one request; returns its job id."""
        job_id = new_job_id()
        payload = pickle.dumps(
            {
                "job_id": job_id,
                "request": request,
                "priority": priority,
                "estimate": estimate,
            },
            protocol=CACHE_PICKLE_PROTOCOL,
        )
        _atomic_write(self.jobs_dir / f"{job_id}{_JOB_SUFFIX}", payload)
        return job_id

    def pending_jobs(self) -> List[Path]:
        """Unclaimed submissions, in cross-client submission order."""
        return sorted(
            p for p in self.jobs_dir.iterdir()
            if p.suffix == _JOB_SUFFIX and not p.name.startswith(".")
        )

    def claim(self, path: Path) -> Optional[Dict]:
        """Read-and-delete one submission (None if another reader won)."""
        try:
            payload = path.read_bytes()
            path.unlink()
        except FileNotFoundError:
            return None
        return pickle.loads(payload)

    # ----------------------------------------------------------------- results
    def write_result(self, job_id: str, payload: Dict) -> None:
        _atomic_write(
            self.results_dir / f"{job_id}{_RESULT_SUFFIX}",
            pickle.dumps(payload, protocol=CACHE_PICKLE_PROTOCOL),
        )

    def read_result(self, job_id: str) -> Optional[Dict]:
        path = self.results_dir / f"{job_id}{_RESULT_SUFFIX}"
        try:
            return pickle.loads(path.read_bytes())
        except FileNotFoundError:
            return None

    def has_pending(self, job_id: str) -> bool:
        """True while the submission file exists unclaimed."""
        return (self.jobs_dir / f"{job_id}{_JOB_SUFFIX}").exists()

    # ----------------------------------------------------------------- control
    @property
    def stop_file(self) -> Path:
        return self.control_dir / "stop"

    def request_stop(self) -> None:
        _atomic_write(self.stop_file, b"stop\n")

    def stop_requested(self) -> bool:
        return self.stop_file.exists()

    def request_drain(self) -> str:
        token = uuid.uuid4().hex[:12]
        _atomic_write(self.control_dir / f"drain-{token}", b"drain\n")
        return token

    def pending_drains(self) -> List[Path]:
        return sorted(self.control_dir.glob("drain-*"))

    def ack_drain(self, path: Path) -> None:
        token = path.name[len("drain-"):]
        _atomic_write(self.control_dir / f"drained-{token}", b"drained\n")
        path.unlink(missing_ok=True)

    def drain_acked(self, token: str) -> bool:
        return (self.control_dir / f"drained-{token}").exists()

    def clear_control(self) -> None:
        """Remove stale control markers (a daemon starting fresh)."""
        for path in self.control_dir.iterdir():
            path.unlink(missing_ok=True)

    # --------------------------------------------------------------- heartbeat
    @property
    def status_path(self) -> Path:
        return self.root / "status.json"

    @property
    def pid_path(self) -> Path:
        return self.root / "daemon.pid"

    @property
    def events_path(self) -> Path:
        return self.root / "events.jsonl"

    def write_status(self, status: Dict) -> None:
        _atomic_write(
            self.status_path,
            (json.dumps(status, sort_keys=True, indent=2) + "\n").encode(),
        )

    def read_status(self) -> Optional[Dict]:
        try:
            return json.loads(self.status_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def write_pid(self) -> None:
        _atomic_write(self.pid_path, f"{os.getpid()}\n".encode())

    def read_pid(self) -> Optional[int]:
        try:
            return int(self.pid_path.read_text().strip())
        except (FileNotFoundError, ValueError):
            return None

    def clear_pid(self) -> None:
        self.pid_path.unlink(missing_ok=True)
