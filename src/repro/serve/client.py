"""The serve client: submit / status / result / drain / stop over a spool.

A thin, daemon-free view of one :class:`~repro.serve.spool.Spool`: submit
pickles a :class:`~repro.eval.parallel.RunRequest` into ``jobs/``, result
polls ``results/<job_id>.result`` and either returns the deserialized
:class:`~repro.eval.metrics.RunMetrics` or re-raises the job's *typed*
error — a deadlocked run raises its :class:`~repro.errors
.SimDeadlockError` with ``.tick``/``.blocked`` intact, an admission
rejection its :class:`~repro.errors.AdmissionError` with
``.depth``/``.limit`` — exactly as if the run had happened in-process.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional

from repro.errors import JobNotFoundError, ServeError
from repro.eval.metrics import RunMetrics
from repro.eval.parallel import RunRequest
from repro.serve.spool import Spool

DEFAULT_TIMEOUT_S = 300.0


class ServeClient:
    """Client handle on one spool directory (see module docstring)."""

    def __init__(self, spool) -> None:
        self.spool = spool if isinstance(spool, Spool) else Spool(spool)

    # ------------------------------------------------------------------ submit
    def submit(
        self,
        request: RunRequest,
        priority: int = 0,
        estimate: Optional[float] = None,
    ) -> str:
        """Spool one request; returns the job id immediately."""
        return self.spool.submit(request, priority=priority, estimate=estimate)

    # ------------------------------------------------------------------ status
    def status(self, job_id: str) -> Dict:
        """One job's status snapshot: pending, or its terminal payload."""
        payload = self.spool.read_result(job_id)
        if payload is not None:
            return {
                "job_id": job_id,
                "state": payload["state"],
                "cache_hit": payload.get("cache_hit", False),
                "wait_s": payload.get("wait_s"),
                "service_s": payload.get("service_s"),
            }
        if self.spool.has_pending(job_id):
            return {"job_id": job_id, "state": "pending"}
        # Claimed by the daemon but not yet finished — or never submitted;
        # the spool cannot tell those apart, the daemon heartbeat can.
        return {"job_id": job_id, "state": "in-service"}

    def stats(self) -> Optional[Dict]:
        """The daemon's latest heartbeat document (None before first beat)."""
        return self.spool.read_status()

    def ping(self) -> bool:
        """True when a daemon has registered a pid on this spool."""
        return self.spool.read_pid() is not None

    # ------------------------------------------------------------------ result
    def result_payload(
        self, job_id: str, timeout: Optional[float] = DEFAULT_TIMEOUT_S,
        poll_s: float = 0.02,
    ) -> Dict:
        """Block until the job's terminal payload lands; returns it raw."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            payload = self.spool.read_result(job_id)
            if payload is not None:
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id!r}; is a daemon serving this spool? "
                    f"(`repro serve status`)"
                )
            time.sleep(poll_s)

    def result(
        self, job_id: str, timeout: Optional[float] = DEFAULT_TIMEOUT_S
    ) -> RunMetrics:
        """The job's metrics — or its typed error, re-raised."""
        payload = self.result_payload(job_id, timeout=timeout)
        error = payload.get("error")
        if error is not None:
            raise error
        blob = payload.get("metrics_bytes")
        if blob is None:
            raise JobNotFoundError(
                f"job {job_id!r} ended {payload['state']!r} with no metrics"
            )
        return pickle.loads(blob)

    def results(
        self,
        job_ids: List[str],
        timeout: Optional[float] = DEFAULT_TIMEOUT_S,
    ) -> List[RunMetrics]:
        """Metrics for every job, in the given (submission) order."""
        return [self.result(job_id, timeout=timeout) for job_id in job_ids]

    # ----------------------------------------------------------------- control
    def drain(
        self, timeout: Optional[float] = DEFAULT_TIMEOUT_S,
        poll_s: float = 0.05,
    ) -> None:
        """Ask the daemon to finish everything accepted; block until acked."""
        token = self.spool.request_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.spool.drain_acked(token):
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"drain not acknowledged after {timeout:g}s; is a "
                    "daemon serving this spool?"
                )
            time.sleep(poll_s)

    def stop(
        self, timeout: Optional[float] = DEFAULT_TIMEOUT_S,
        poll_s: float = 0.05, wait: bool = True,
    ) -> None:
        """Ask the daemon to stop; idempotent from the client side too.

        With ``wait=True`` blocks until the daemon clears its pid file
        (in-flight jobs finished, pool released).  Stopping a spool with
        no live daemon just leaves the marker for the next daemon, which
        clears stale control files at startup.
        """
        self.spool.request_stop()
        if not wait or not self.ping():
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.spool.read_pid() is not None:
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"daemon did not stop within {timeout:g}s (pid "
                    f"{self.spool.read_pid()})"
                )
            time.sleep(poll_s)
