"""The VL/SPAMeR ISA extension (Sections 3.1, 3.3).

Four instructions extend AArch64:

* ``vl_select``  — translate a cacheline's virtual address and latch the
  physical address into a system register (not user-readable).
* ``vl_push``    — copy the selected line to the routing device's device
  memory; like a writeback but leaves the line's coherence state unchanged.
* ``vl_fetch``   — store the latched physical address to a routing-device
  window, registering a consumer request (consBuf window) …
* ``spamer_register`` — … or, aliased to the specBuf window, registering a
  speculative push target (new in SPAMeR).

The core model charges each instruction a fixed issue cost; the packet the
instruction emits then travels the coherence network independently (the
instructions are posted, writeback-style — the core does not stall for the
round trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from repro.config import SystemConfig


class Opcode(Enum):
    """Instructions relevant to the queue fast path."""

    VL_SELECT = "vl_select"
    VL_PUSH = "vl_push"
    VL_FETCH = "vl_fetch"
    SPAMER_REGISTER = "spamer_register"
    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"  # abstract ALU work between queue operations


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction with its operand address (when applicable)."""

    opcode: Opcode
    address: int = 0


def issue_cost_table(config: SystemConfig) -> Dict[Opcode, int]:
    """Per-opcode issue costs in cycles, derived from the system config.

    ``vl_select`` + ``vl_push`` together cost ``push_instruction_cost`` and
    ``vl_select`` + ``vl_fetch`` cost ``fetch_instruction_cost`` (the paper
    always pairs them); the table splits the pair cost evenly so either
    decomposition adds up.
    """
    half_push = config.push_instruction_cost // 2
    half_fetch = config.fetch_instruction_cost // 2
    return {
        Opcode.VL_SELECT: min(half_push, half_fetch),
        Opcode.VL_PUSH: config.push_instruction_cost - min(half_push, half_fetch),
        Opcode.VL_FETCH: config.fetch_instruction_cost - min(half_push, half_fetch),
        Opcode.SPAMER_REGISTER: config.fetch_instruction_cost,
        Opcode.LOAD: config.l1d.hit_latency,
        Opcode.STORE: config.l1d.hit_latency,
        Opcode.COMPUTE: 1,
    }
