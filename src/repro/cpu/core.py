"""Core model: one pinned software thread per core (Section 4.1).

The benchmarks pin each thread to a core "to reduce the migration overhead",
so the core model is deliberately thin: a core runs exactly one thread
program (a generator), tracks busy/idle accounting, and charges instruction
issue costs.  Out-of-order micro-architecture is abstracted into the
transaction-level costs of :class:`~repro.config.SystemConfig` (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.cpu.isa import Instruction, Opcode, issue_cost_table
from repro.errors import WorkloadError
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.kernel import Environment


class Core:
    """One CPU core with a single pinned thread."""

    def __init__(self, env: "Environment", core_id: int, config: "SystemConfig") -> None:
        self.env = env
        self.core_id = core_id
        self.config = config
        self._costs = issue_cost_table(config)
        self.thread: Optional[Process] = None
        self.thread_name: Optional[str] = None
        self.instructions_issued = 0

    @property
    def busy(self) -> bool:
        return self.thread is not None and self.thread.is_alive

    def pin(self, program: Generator, name: str) -> Process:
        """Pin *program* to this core; at most one thread per core."""
        if self.thread is not None:
            raise WorkloadError(
                f"core {self.core_id} already runs {self.thread_name!r}; the "
                "benchmarks pin one thread per core (Section 4.1)"
            )
        self.thread = self.env.process(program, name=name)
        self.thread_name = name
        return self.thread

    def issue(self, instruction: Instruction):
        """Charge one instruction's issue cost; returns a timeout event."""
        self.instructions_issued += 1
        return self.env.timeout(self._costs[instruction.opcode])

    def compute(self, cycles: int):
        """Model *cycles* of pure computation between queue operations."""
        if cycles < 0:
            raise WorkloadError(f"negative compute time {cycles}")
        self.instructions_issued += max(1, cycles)  # ~1 IPC abstraction
        return self.env.timeout(cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.core_id} thread={self.thread_name!r}>"
