"""Thread-program abstraction.

A *thread program* is a generator function taking a :class:`ThreadContext`;
workloads are written against this context rather than raw simulator
objects, which keeps benchmark code looking like the paper's pseudo-code::

    def consumer(ctx):
        for _ in range(n_messages):
            msg = yield from ctx.pop(endpoint)
            yield from ctx.compute(work_cycles)

The context also gives each thread a private jittered RNG stream so compute
times vary realistically but reproducibly.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import Core
    from repro.sim.rng import RngPool
    from repro.system import System
    from repro.vlink.endpoint import ConsumerEndpoint, ProducerEndpoint


class ThreadContext:
    """Per-thread façade over the system: queue ops, compute, RNG."""

    def __init__(self, system: "System", core: "Core", name: str) -> None:
        self.system = system
        self.core = core
        self.name = name
        self.env = system.env

    # -- queue operations -----------------------------------------------------
    def push(self, producer: "ProducerEndpoint", payload: Any) -> Generator:
        """Enqueue *payload*; ``yield from`` inside a thread program."""
        if producer.core_id != self.core.core_id:
            raise WorkloadError(
                f"{self.name}: producer endpoint pinned to core "
                f"{producer.core_id}, thread runs on {self.core.core_id}"
            )
        return self.system.library.push(producer, payload)

    def pop(self, consumer: "ConsumerEndpoint") -> Generator:
        """Dequeue one message; ``yield from`` inside a thread program."""
        if consumer.core_id != self.core.core_id:
            raise WorkloadError(
                f"{self.name}: consumer endpoint pinned to core "
                f"{consumer.core_id}, thread runs on {self.core.core_id}"
            )
        return self.system.library.pop(consumer)

    def pop_until(self, consumer: "ConsumerEndpoint", stop_check) -> Generator:
        """Dequeue one message or None once *stop_check()* is true."""
        if consumer.core_id != self.core.core_id:
            raise WorkloadError(
                f"{self.name}: consumer endpoint pinned to core "
                f"{consumer.core_id}, thread runs on {self.core.core_id}"
            )
        return self.system.library.pop_until(consumer, stop_check)

    # -- computation ------------------------------------------------------------
    def compute(self, cycles: int) -> Generator:
        """Burn *cycles* of work on this thread's core."""
        yield self.core.compute(int(cycles))

    def compute_jittered(self, base: int, fraction: float = 0.1) -> Generator:
        """Burn ``base ± fraction`` cycles, drawn from this thread's stream."""
        cycles = self.system.rng.jitter(f"compute:{self.name}", base, fraction)
        yield self.core.compute(cycles)

    def wait_until(self, tick: int) -> Generator:
        """Sleep (off-core, plain timeout) until absolute *tick*.

        No-op when *tick* is already past — an open-system session that
        falls behind its arrival schedule admits the next request
        immediately instead of waiting.
        """
        delay = int(tick) - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)

    @property
    def now(self) -> int:
        return self.env.now
