"""CPU layer: cores, the VL/SPAMeR ISA extension, and thread programs."""

from repro.cpu.core import Core
from repro.cpu.isa import Instruction, Opcode, issue_cost_table
from repro.cpu.thread import ThreadContext

__all__ = ["Core", "Instruction", "Opcode", "ThreadContext", "issue_cost_table"]
