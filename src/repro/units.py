"""Unit helpers: cycles, seconds, bytes.

The simulator counts time in integer *CPU cycles*.  The paper's system runs
at 2 GHz (Table 1), so 1 ns equals 2 cycles.  These helpers keep unit
conversions explicit at call sites and make the evaluation code read like the
paper ("execution time in milliseconds", "8 GiB DRAM").
"""

from __future__ import annotations

#: Cycles per second for the default 2 GHz clock (Table 1).
DEFAULT_CLOCK_HZ = 2_000_000_000

#: Bytes per cache line on the modelled AArch64 system.
CACHELINE_BYTES = 64


def KiB(n: float) -> int:
    """Return *n* kibibytes in bytes."""
    return int(n * 1024)


def MiB(n: float) -> int:
    """Return *n* mebibytes in bytes."""
    return int(n * 1024 * 1024)


def GiB(n: float) -> int:
    """Return *n* gibibytes in bytes."""
    return int(n * 1024 * 1024 * 1024)


def ns_to_cycles(ns: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> int:
    """Convert nanoseconds to (rounded) cycles at *clock_hz*."""
    return int(round(ns * clock_hz / 1e9))


def cycles_to_ns(cycles: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert cycles at *clock_hz* to nanoseconds."""
    return cycles * 1e9 / clock_hz


def cycles_to_us(cycles: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert cycles at *clock_hz* to microseconds."""
    return cycles * 1e6 / clock_hz


def cycles_to_ms(cycles: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert cycles at *clock_hz* to milliseconds."""
    return cycles * 1e3 / clock_hz
