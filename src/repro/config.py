"""System configuration (paper Table 1) and timing parameters.

:class:`SystemConfig` carries the hardware configuration the paper simulates
in gem5 plus the transaction-level latency parameters our discrete-event
substrate needs.  Defaults reproduce Table 1:

========  =====================================================
Cores     16 × AArch64 OoO CPU @ 2 GHz
Caches    32 KiB private 2-way L1D, 48 KiB private 3-way L1I,
          1 MiB shared 16-way mostly-inclusive L2
DRAM      8 GiB 2400 MHz DDR4
SRD       64 entries per prodBuf, consBuf, linkTab, and specBuf
========  =====================================================

The latency parameters are not in the paper (they are implied by the gem5
Ruby model); we pick values representative of a 16-core CMP at 2 GHz and
document them here so that sensitivity to the substitution can be explored
(see ``benchmarks/bench_ablation_latency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.sched import DEFAULT_SCHEDULER
from repro.units import CACHELINE_BYTES, DEFAULT_CLOCK_HZ, GiB, KiB, MiB


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry."""

    size_bytes: int
    associativity: int
    line_bytes: int = CACHELINE_BYTES
    hit_latency: int = 4  # cycles

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration: Table 1 plus substrate latencies."""

    # ------------------------------------------------------------------ Table 1
    num_cores: int = 16
    clock_hz: int = DEFAULT_CLOCK_HZ
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(KiB(32), 2, hit_latency=4)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(KiB(48), 3, hit_latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(MiB(1), 16, hit_latency=12)
    )
    dram_bytes: int = GiB(8)
    dram_mhz: int = 2400
    dram_latency: int = 160  # cycles, loaded-latency DDR4-2400 estimate

    # SRD / VLRD buffer geometry (Table 1: 64 entries each).
    prodbuf_entries: int = 64
    consbuf_entries: int = 64
    linktab_entries: int = 64
    specbuf_entries: int = 64
    #: Number of routing devices attached to the network.  The paper treats
    #: the router "like a slice of system cache ... (as such a system could
    #: have more than one router)" but evaluates one; more routers shard
    #: SQIs across independent buffer pools and mapping pipelines.
    num_routers: int = 1

    # -------------------------------------------------- transaction latencies
    #: One-way propagation core <-> routing device over the coherence network.
    bus_latency: int = 36
    #: Cycles a packet occupies the shared network (serialization of a
    #: 64-byte line onto a wide on-chip interconnect).
    bus_occupancy: int = 3
    #: Parallel network channels: 1 = shared bus (the evaluated model);
    #: more approximate a crossbar/NoC with independent links.
    bus_channels: int = 1

    # ------------------------------------------------------------- interconnect
    #: Interconnect fabric (any name in :func:`repro.net.topology_names`).
    #: ``single-bus`` is the distance-free model the paper's 16-core
    #: evaluation implies and keeps all golden figures bit-identical;
    #: ``mesh``/``ring``/``crossbar`` route hop-by-hop through per-link
    #: servers, so placement and distance become visible (docs/MODEL.md,
    #: "Network model").
    topology: str = "single-bus"
    #: Mesh geometry as ``(rows, cols)``; ``None`` derives the most-square
    #: factorization of the core count (16 → 4×4, 64 → 8×8).  Only
    #: meaningful with ``topology="mesh"``.
    mesh_dims: Optional[Tuple[int, int]] = None
    #: Per-hop propagation delay on NoC topologies.  Defaults near
    #: ``bus_latency / 3`` so a 3-hop NoC route costs about one bus
    #: traversal — the calibration that makes mesh-vs-bus comparisons
    #: about *contention and distance spread*, not a flat rescale.
    link_latency: int = 12
    #: Number of SRD shards.  Virtual links partition across shards by
    #: queue id (``sqi % num_srds``); each shard has its own buffer pool
    #: and mapping pipeline, sits on its own network node, and cross-shard
    #: stash traffic pays real network distance.  Alias of the older
    #: ``num_routers`` knob (they must agree when both are set).
    num_srds: int = 1
    #: SRD/VLRD address-mapping pipeline depth (Section 3.1: three stages).
    srd_pipeline_latency: int = 3
    #: Core-side cost of vl_select + vl_push (writeback-like, off critical path).
    push_instruction_cost: int = 6
    #: Core-side cost of vl_select + vl_fetch on the pop slow path.
    fetch_instruction_cost: int = 6
    #: Fast-path pop cost when the consumer cacheline already holds data
    #: (an L1 hit plus queue-state bookkeeping).
    pop_fast_path_cost: int = 10
    #: Extra per-iteration overhead of the pop slow path's poll loop.
    poll_interval: int = 16
    #: First refetch delay of the pop poll loop, chosen near the on-demand
    #: load-to-use round trip so a re-issued vl_fetch races the expected
    #: stash — the paper's "prerequest" (Section 4.2).  Re-issues back off
    #: exponentially; duplicates coalesce at the device.
    refetch_interval: int = 160
    #: Cacheline write cost on the producer side before vl_push.
    line_write_cost: int = 4
    #: Poll cycles after which a stalled consumer scans its other lines; a
    #: stale prerequest (Section 4.2) can park a message in a future
    #: round-robin slot, and a robust library recovers by scanning forward.
    stale_scan_threshold: int = 1024

    # ------------------------------------------------------------ library knobs
    #: Model the Section 3.4 macro-inlining of hot queue functions: a per-call
    #: overhead added to every push/pop when *not* inlined.
    call_overhead: int = 8
    inline_library: bool = True

    #: One-time cost of leaving the pop slow path (spin-loop exit: branch
    #: recovery and pipeline refill).  SPAMeR's fast path avoids it — the
    #: paper's FIR analysis attributes part of the gain to "avoiding the
    #: slow path" (Section 4.3).
    slow_path_penalty: int = 24
    #: Ablation knob: spin-then-yield dequeue discipline.  When enabled the
    #: pop slow path spins ``spin_threshold`` cycles, then deschedules and
    #: only re-checks the line every ``yield_penalty`` cycles — coarsening
    #: delivery detection for late data.  Off by default: the pure spin
    #: model matches the paper's latency-focused library.
    spin_then_yield: bool = False
    spin_threshold: int = 128
    yield_penalty: int = 360
    #: Number of cachelines per *speculative* consumer endpoint the library
    #: allocates (used round-robin; a double buffer by default — incast's
    #: master registers 32, Section 4.3).  Legacy endpoints use one line.
    lines_per_endpoint: int = 2

    # --------------------------------------------------- multi-push speculation
    #: Maximum burst depth of confidence-gated multi-push speculation: the
    #: SPAMeR device may claim up to this many *consecutive* specBuf
    #: offsets of one entry and push that many messages ahead
    #: (:mod:`repro.spamer.multipush`).  The default 1 is single-push
    #: SPAMeR, bit-identical to the paper's model; values > 1 switch the
    #: device's Stage-2 policy to burst speculation with rollback.
    burst_k: int = 1
    #: Acceptance threshold gating burst (non-head) claims: a follower slot
    #: is only claimed while the per-queue acceptance estimator — an EWMA
    #: over confirmed/rolled-back burst slots, seeded from push precision —
    #: predicts at least this probability of acceptance.
    p_min: float = 0.75

    # ------------------------------------------------------------- verification
    #: Attach the live invariant checker (:mod:`repro.verify.invariants`) to
    #: the system's hook bus.  The checker is a plain subscriber: it observes
    #: every lifecycle/occupancy event, accumulates violations, and raises a
    #: :class:`~repro.errors.VerificationError` at quiesce — it schedules no
    #: events, so figures stay bit-identical with verification on or off.
    verify: bool = False
    #: Stall-watchdog window: abort with
    #: :class:`~repro.errors.SimDeadlockError` when the queue machinery makes
    #: no progress (no push, pop, or device action) for this many cycles.
    watchdog_cycles: int = 1_000_000

    # ------------------------------------------------------- component defaults
    #: Routing-device flavor :class:`~repro.system.System` builds when the
    #: caller names none (any name in :func:`repro.registry.device_names`).
    default_device: str = "vl"
    #: Delay algorithm used when a speculating device is built without one;
    #: ``None`` defers to the device registration's own default.
    default_algorithm: Optional[str] = None

    # ------------------------------------------------------------------ kernel
    #: Pending-event queue strategy for the simulation kernel (any name in
    #: :func:`repro.sim.sched.scheduler_names`).  ``ladder`` — the default
    #: — is the two-tier ladder queue that won both benchmark legs
    #: (shallow/sim-leg *and* deep stress; the flip evidence lives in the
    #: committed ``BENCH_kernel.json`` and docs/PERFORMANCE.md §5).
    #: ``heap`` is the reference binary heap; ``calendar`` (slotted
    #: per-cycle ring) and ``batch`` (same-timestamp bucket dispatcher)
    #: are the deep-pending bucket strategies.  Every strategy produces
    #: identical simulated results — only wall-clock speed differs.
    scheduler: str = DEFAULT_SCHEDULER

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError(f"need at least one core, got {self.num_cores}")
        for name in (
            "prodbuf_entries",
            "consbuf_entries",
            "linktab_entries",
            "specbuf_entries",
            "num_routers",
            "num_srds",
            "bus_channels",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        for name in (
            "bus_latency",
            "bus_occupancy",
            "link_latency",
            "srd_pipeline_latency",
            "push_instruction_cost",
            "fetch_instruction_cost",
            "pop_fast_path_cost",
            "poll_interval",
            "refetch_interval",
            "line_write_cost",
            "call_overhead",
            "dram_latency",
            "stale_scan_threshold",
            "slow_path_penalty",
            "spin_threshold",
            "yield_penalty",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.lines_per_endpoint < 1:
            raise ConfigError("lines_per_endpoint must be >= 1")
        if self.burst_k < 1:
            raise ConfigError(f"burst_k must be >= 1, got {self.burst_k}")
        if not 0.0 <= self.p_min <= 1.0:
            raise ConfigError(
                f"p_min must be a probability in [0, 1], got {self.p_min}"
            )
        if self.watchdog_cycles < 1:
            raise ConfigError("watchdog_cycles must be >= 1")
        # bus_occupancy=0 on ONE channel is the legal ideal-network
        # ablation (infinite bandwidth, pure latency).  With several
        # channels it is contradictory: channel selection and utilization
        # both key on occupancy, so extra channels can neither be chosen
        # differently nor accumulate busy cycles — the configuration
        # silently degenerates to one channel while reporting many.
        if self.bus_occupancy == 0 and self.bus_channels > 1:
            raise ConfigError(
                "bus_occupancy=0 with bus_channels>1 is contradictory: "
                "zero-occupancy packets never distinguish channels, so "
                "utilization accounting over multiple channels is "
                "meaningless; use bus_channels=1 for the ideal-network "
                "ablation"
            )
        if self.num_srds > 1 and self.num_routers > 1 and (
            self.num_srds != self.num_routers
        ):
            raise ConfigError(
                f"num_srds={self.num_srds} conflicts with "
                f"num_routers={self.num_routers}; the knobs are aliases — "
                "set one (or both to the same value)"
            )
        if self.mesh_dims is not None:
            if self.topology not in ("mesh", "torus"):
                raise ConfigError(
                    f"mesh_dims is only meaningful with a grid fabric "
                    f"(topology='mesh' or 'torus'), "
                    f"got topology={self.topology!r}"
                )
            rows, cols = self.mesh_dims
            if rows < 1 or cols < 1:
                raise ConfigError(f"mesh_dims must be positive, got {self.mesh_dims}")
            if rows * cols < self.num_cores:
                raise ConfigError(
                    f"mesh_dims {rows}x{cols} has {rows * cols} nodes, "
                    f"fewer than num_cores={self.num_cores}"
                )
        # Component defaults are validated against the registry lazily: the
        # shipped defaults skip the check so importing this module does not
        # drag in the device/algorithm modules (registry imports are cycle
        # prone at config-import time).
        if self.default_device != "vl":
            from repro.registry import resolve_device

            resolve_device(self.default_device)
        # Same lazy pattern for the topology registry: the shipped default
        # skips the lookup so importing config stays import-cycle free.
        if self.topology != "single-bus":
            from repro.net.topology import resolve_topology

            resolve_topology(self.topology)
        # The scheduler registry is already imported (DEFAULT_SCHEDULER
        # comes from it, and repro.sim.sched has no imports back into
        # config), so every name validates eagerly.
        if self.scheduler != DEFAULT_SCHEDULER:
            from repro.sim.sched import resolve_scheduler

            resolve_scheduler(self.scheduler)
        if self.default_algorithm is not None:
            from repro.registry import algorithm_names

            if self.default_algorithm not in algorithm_names():
                raise ConfigError(
                    f"unknown default_algorithm {self.default_algorithm!r}; "
                    f"registered algorithms: {algorithm_names()}"
                )

    # ----------------------------------------------------------------- helpers
    @property
    def effective_srds(self) -> int:
        """Routing-device shard count, honouring both spellings of the
        knob (``num_srds`` is the interconnect-era alias of
        ``num_routers``; validation rejects a disagreement)."""
        return self.num_srds if self.num_srds > 1 else self.num_routers

    def to_dict(self) -> Dict:
        """Serialize to a plain dict (JSON-friendly; caches nested)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SystemConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        data = dict(data)
        for cache_field in ("l1d", "l1i", "l2"):
            if cache_field in data and isinstance(data[cache_field], dict):
                data[cache_field] = CacheConfig(**data[cache_field])
        if isinstance(data.get("mesh_dims"), list):  # JSON round-trip
            data["mesh_dims"] = tuple(data["mesh_dims"])
        return cls(**data)

    def to_json(self) -> str:
        """Serialize to JSON (for experiment records)."""
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemConfig":
        import json

        return cls.from_dict(json.loads(text))

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def table1_rows(self) -> Dict[str, str]:
        """Render the configuration as the rows of the paper's Table 1."""
        ghz = self.clock_hz / 1e9
        return {
            "Cores": f"{self.num_cores}xAArch64 OoO CPU @ {ghz:g} GHz",
            "Caches": (
                f"{self.l1d.size_bytes // 1024} KiB private "
                f"{self.l1d.associativity}-way L1D, "
                f"{self.l1i.size_bytes // 1024} KiB private "
                f"{self.l1i.associativity}-way L1I; "
                f"{self.l2.size_bytes // (1024 * 1024)} MiB shared "
                f"{self.l2.associativity}-way mostly-inclusive L2"
            ),
            "DRAM": f"{self.dram_bytes // (1 << 30)} GiB {self.dram_mhz} MHz DDR4",
            "SRD": (
                f"{self.prodbuf_entries} entries per prodBuf, consBuf, "
                "linkTab, and specBuf"
            ),
        }


#: The paper's evaluated configuration.
DEFAULT_CONFIG = SystemConfig()
