"""Deterministic multiprocess experiment executor.

Every figure in the paper is a matrix sweep of *independent* simulations —
Figure 8 is 8 workloads × 4 settings, Figure 11 a parameter grid, the
replication study all of that × seeds.  Each simulation is a fresh seeded
:class:`~repro.sim.kernel.Environment`, so fanning them across a
:class:`~concurrent.futures.ProcessPoolExecutor` cannot change any result:
workers share no mutable state, and results are merged in **submission
order** regardless of completion order.  Batch reports, sweep points and
the pinned golden Figure-8 metrics are therefore bit-identical between
``jobs=1`` and ``jobs=N`` (guarded by ``tests/test_parallel.py``).

The unit of work is a picklable :class:`RunRequest` — workload name,
device/algorithm *names* (or a picklable zero-arg factory such as
:class:`~repro.eval.runner.TunedFactory`), scale, seed and config.  The
worker re-resolves those names through :mod:`repro.registry` on its side of
the process boundary; with the default ``fork`` start method the child
also inherits any custom runtime registrations, so user-registered devices
and algorithms fan out exactly like the shipped ones.

Typed simulation errors round-trip intact: :class:`SimDeadlockError` keeps
``.tick``/``.blocked`` and :class:`VerificationError` its ``.violations``
across pickling (``__reduce__`` in :mod:`repro.errors`), and
:func:`execute_requests` captures one run's failure without losing the
other runs' results.

See ``docs/PERFORMANCE.md`` for the design and determinism argument.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.metrics import RunMetrics
from repro.eval.runner import DEFAULT_CYCLE_LIMIT, Setting, run_workload
from repro.spamer.delay import DelayAlgorithm
from repro.workloads.arrival import ArrivalSpec

#: Version tag baked into every request cache key.  Bump it whenever the
#: meaning of a run changes in a way the serialized fields cannot express
#: (a semantic fix to a device model, a new default that alters results),
#: which atomically invalidates every previously cached result.
CACHE_KEY_VERSION = 1

#: Pickle protocol pinned for cached :class:`~repro.eval.metrics.RunMetrics`
#: payloads: byte-identity claims ("a cache hit returns the same bytes a
#: fresh run would produce") need one fixed serialization, not whatever
#: ``pickle.DEFAULT_PROTOCOL`` happens to be on the running interpreter.
CACHE_PICKLE_PROTOCOL = 4


def _canonical_component(value):
    """A JSON-able canonical form for a device/algorithm specification.

    Registry names pass through as strings; parameterized factories must
    be frozen dataclasses (the :class:`~repro.eval.runner.TunedFactory`
    pattern) so their identity is the class path plus the field values —
    the same information pickle ships across the process boundary, in a
    stable, hashable shape.  Lambdas and closures are rejected exactly
    like they are by the pickle gate.
    """
    if value is None or isinstance(value, str):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return [
            f"{cls.__module__}.{cls.__qualname__}",
            dataclasses.asdict(value),
        ]
    raise ConfigError(
        f"cannot derive a cache key for {value!r}: parameterized "
        "algorithms must be frozen-dataclass factories (see "
        "repro.eval.runner.TunedFactory), not lambdas or closures"
    )


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation, specified by value.

    Everything here pickles: the device and algorithm travel as registry
    names (or a picklable zero-arg factory for parameterized algorithms)
    and are re-resolved inside the worker, so a request built in the parent
    process runs identically in a child.
    """

    workload: str
    device: str
    algorithm: Union[str, Callable[[], DelayAlgorithm], None] = None
    label: Optional[str] = None
    scale: float = 1.0
    seed: int = 0xC0FFEE
    config: Optional[SystemConfig] = None
    limit: int = DEFAULT_CYCLE_LIMIT
    validate: bool = True
    verify: bool = False
    #: Open-system arrival process, by picklable spec (None = closed batch).
    arrival: Optional[ArrivalSpec] = None
    #: Kernel pending-queue strategy, by registry name (None = whatever the
    #: config says, i.e. ``heap`` by default).  Travels as a plain string —
    #: like device/algorithm names — so a scheduler choice made in the
    #: parent pickles cleanly into every worker and is re-resolved there.
    scheduler: Optional[str] = None

    @classmethod
    def from_setting(
        cls,
        workload: str,
        setting: Setting,
        *,
        scale: float = 1.0,
        seed: int = 0xC0FFEE,
        config: Optional[SystemConfig] = None,
        limit: int = DEFAULT_CYCLE_LIMIT,
        validate: bool = True,
        verify: bool = False,
        arrival: Optional[ArrivalSpec] = None,
        scheduler: Optional[str] = None,
    ) -> "RunRequest":
        """Snapshot a :class:`~repro.eval.runner.Setting` into a request."""
        return cls(
            workload=workload,
            device=setting.device,
            algorithm=setting.algorithm,
            label=setting.label,
            scale=scale,
            seed=seed,
            config=config,
            limit=limit,
            validate=validate,
            verify=verify,
            arrival=arrival,
            scheduler=scheduler,
        )

    def setting(self) -> Setting:
        """Rebuild the :class:`Setting` (in whichever process runs this)."""
        label = self.label
        if label is None:
            algo = self.algorithm if isinstance(self.algorithm, str) else None
            label = f"{self.device}({algo})" if algo else f"{self.device}(baseline)"
        return Setting(label, self.device, self.algorithm)

    # ------------------------------------------------------------ cache identity
    def cache_payload(self) -> dict:
        """The canonical, JSON-able description of everything a run depends on.

        Every field that can change a run's :class:`RunMetrics` — workload,
        device/algorithm identity, scale, seed, full config, cycle limit,
        arrival process, scheduler, even the reported ``label`` (it is part
        of the metrics document) — appears here in a stable shape: nested
        dicts serialize with sorted keys, tuples normalize to lists, and
        parameterized factories canonicalize via
        :func:`_canonical_component`.

        The payload is *versioned* (:data:`CACHE_KEY_VERSION`) and
        *registry-generation-aware*: any runtime (un)registration bumps
        :func:`~repro.registry.registry_generation` and therefore every
        key, because a re-registered name may resolve to different code.
        That is deliberately conservative — a stale generation can only
        cause a cache miss, never a wrong result.
        """
        from repro.registry import registry_generation

        return {
            "version": CACHE_KEY_VERSION,
            "registry_generation": registry_generation(),
            "workload": self.workload,
            "device": self.device,
            "algorithm": _canonical_component(self.algorithm),
            "label": self.label,
            "scale": self.scale,
            "seed": self.seed,
            "config": self.config.to_dict() if self.config is not None else None,
            "limit": self.limit,
            "validate": self.validate,
            "verify": self.verify,
            "arrival": (
                [self.arrival.name, [list(kv) for kv in self.arrival.params]]
                if self.arrival is not None
                else None
            ),
            "scheduler": self.scheduler,
        }

    def cache_key(self) -> str:
        """Content hash of :meth:`cache_payload` — the result-cache address.

        Bit-wise determinism (pinned since the parallel executor landed)
        means equal keys imply byte-identical :class:`RunMetrics`, which is
        what makes the :class:`repro.serve.cache.ResultCache` provably
        exact: a repeated sweep cell can return the cached pickle verbatim.
        """
        canonical = json.dumps(
            self.cache_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def execute_request(request: RunRequest) -> RunMetrics:
    """Run one request to completion — the worker-process entry point.

    Also the serial path: ``jobs=1`` calls this in-process, which is why
    parallel output cannot drift from serial output.
    """
    config = request.config
    if request.scheduler is not None:
        config = (config or SystemConfig()).with_overrides(
            scheduler=request.scheduler
        )
    return run_workload(
        request.workload,
        request.setting(),
        scale=request.scale,
        config=config,
        seed=request.seed,
        limit=request.limit,
        validate=request.validate,
        verify=request.verify,
        arrival=request.arrival,
    )


@dataclass(frozen=True)
class RunOutcome:
    """One request's result: metrics on success, the typed error otherwise."""

    index: int
    request: RunRequest
    metrics: Optional[RunMetrics] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: None/1 → serial, 0 → all cores, N → N."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _mp_context():
    """Prefer ``fork`` so workers inherit runtime registry registrations.

    Under ``spawn`` (Windows/macOS default) workers still work — requests
    re-resolve component *names* through the registry, which re-imports the
    shipped modules — but custom registrations made at runtime in the
    parent must then be importable from the worker side.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _warm_token(token: int) -> int:
    """Trivial worker task: forces the pool to actually start a process."""
    return token


def make_pool(
    jobs: Optional[int] = None, warm: bool = True
) -> ProcessPoolExecutor:
    """A live executor pool for reuse across :func:`run_requests` calls.

    ``ProcessPoolExecutor`` starts workers lazily, so a freshly built pool
    still pays the spawn cost on its first batch; ``warm=True`` runs one
    trivial task per worker up front, moving that cost to pool creation.
    Back-to-back sweeps that pass the same live pool to
    :func:`run_requests`/:func:`execute_requests` then pay it once instead
    of once per call — the small-host overhead that made ``--jobs`` a loss
    on 1–2 core machines (docs/PERFORMANCE.md §7).  The caller owns the
    pool and must ``shutdown()`` it (or use it as a context manager).
    """
    workers = resolve_jobs(jobs)
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context())
    if warm:
        list(pool.map(_warm_token, range(workers)))
    return pool


def _check_picklable(requests: Sequence[RunRequest]) -> None:
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception as exc:
            raise ConfigError(
                f"request for workload {request.workload!r} "
                f"(setting {request.label!r}) cannot cross the process "
                f"boundary: {exc}.  Parameterized algorithms must be "
                f"picklable zero-arg factories (see repro.eval.runner."
                f"TunedFactory), not lambdas or closures."
            ) from exc


def _harvest(
    requests: Sequence[RunRequest], pool: ProcessPoolExecutor
) -> List[RunOutcome]:
    """Fan *requests* over *pool* and merge results in submission order."""
    outcomes: List[RunOutcome] = []
    futures = [pool.submit(execute_request, request) for request in requests]
    for index, (request, future) in enumerate(zip(requests, futures)):
        try:
            outcomes.append(RunOutcome(index, request, metrics=future.result()))
        except Exception as exc:  # noqa: BLE001 - captured per-run by design
            outcomes.append(RunOutcome(index, request, error=exc))
    return outcomes


def execute_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List[RunOutcome]:
    """Run every request; never raises for a failing *run*.

    Outcomes are returned in submission order whatever the completion
    order, one per request: a crashed or deadlocked run yields its typed
    exception in :attr:`RunOutcome.error` while every other run's metrics
    are preserved.

    *pool* is an optional **live** executor (see :func:`make_pool`): when
    given it is used as-is and left running afterwards, so back-to-back
    sweeps amortize worker spawn instead of paying it per call.  ``jobs``
    is ignored in that case — the pool's own worker count governs.
    """
    requests = list(requests)
    if pool is not None:
        _check_picklable(requests)
        return _harvest(requests, pool)
    workers = min(resolve_jobs(jobs), len(requests)) if requests else 1
    outcomes: List[RunOutcome] = []
    if workers <= 1:
        for index, request in enumerate(requests):
            try:
                outcomes.append(
                    RunOutcome(index, request, metrics=execute_request(request))
                )
            except Exception as exc:  # noqa: BLE001 - captured per-run by design
                outcomes.append(RunOutcome(index, request, error=exc))
        return outcomes
    _check_picklable(requests)
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as owned:
        return _harvest(requests, owned)


def run_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List[RunMetrics]:
    """Run every request and return metrics in submission order.

    The raising contract matches a plain serial loop: the first failing
    request (in submission order) has its typed exception re-raised —
    ``SimDeadlockError.tick``/``.blocked`` and ``VerificationError
    .violations`` intact even when the failure happened in a worker.
    Callers that need the surviving results around a failure use
    :func:`execute_requests` instead.  A live *pool* (:func:`make_pool`)
    is reused and left running, exactly as in :func:`execute_requests`.
    """
    requests = list(requests)
    if pool is None and min(resolve_jobs(jobs), len(requests) or 1) <= 1:
        # Pure serial fast path: no outcome wrappers, abort at first error
        # exactly like the historical per-figure loops.
        return [execute_request(request) for request in requests]
    outcomes = execute_requests(requests, jobs=jobs, pool=pool)
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.metrics for outcome in outcomes]
