"""Deterministic multiprocess experiment executor.

Every figure in the paper is a matrix sweep of *independent* simulations —
Figure 8 is 8 workloads × 4 settings, Figure 11 a parameter grid, the
replication study all of that × seeds.  Each simulation is a fresh seeded
:class:`~repro.sim.kernel.Environment`, so fanning them across a
:class:`~concurrent.futures.ProcessPoolExecutor` cannot change any result:
workers share no mutable state, and results are merged in **submission
order** regardless of completion order.  Batch reports, sweep points and
the pinned golden Figure-8 metrics are therefore bit-identical between
``jobs=1`` and ``jobs=N`` (guarded by ``tests/test_parallel.py``).

The unit of work is a picklable :class:`RunRequest` — workload name,
device/algorithm *names* (or a picklable zero-arg factory such as
:class:`~repro.eval.runner.TunedFactory`), scale, seed and config.  The
worker re-resolves those names through :mod:`repro.registry` on its side of
the process boundary; with the default ``fork`` start method the child
also inherits any custom runtime registrations, so user-registered devices
and algorithms fan out exactly like the shipped ones.

Typed simulation errors round-trip intact: :class:`SimDeadlockError` keeps
``.tick``/``.blocked`` and :class:`VerificationError` its ``.violations``
across pickling (``__reduce__`` in :mod:`repro.errors`), and
:func:`execute_requests` captures one run's failure without losing the
other runs' results.

See ``docs/PERFORMANCE.md`` for the design and determinism argument.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.metrics import RunMetrics
from repro.eval.runner import DEFAULT_CYCLE_LIMIT, Setting, run_workload
from repro.spamer.delay import DelayAlgorithm
from repro.workloads.arrival import ArrivalSpec


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation, specified by value.

    Everything here pickles: the device and algorithm travel as registry
    names (or a picklable zero-arg factory for parameterized algorithms)
    and are re-resolved inside the worker, so a request built in the parent
    process runs identically in a child.
    """

    workload: str
    device: str
    algorithm: Union[str, Callable[[], DelayAlgorithm], None] = None
    label: Optional[str] = None
    scale: float = 1.0
    seed: int = 0xC0FFEE
    config: Optional[SystemConfig] = None
    limit: int = DEFAULT_CYCLE_LIMIT
    validate: bool = True
    verify: bool = False
    #: Open-system arrival process, by picklable spec (None = closed batch).
    arrival: Optional[ArrivalSpec] = None
    #: Kernel pending-queue strategy, by registry name (None = whatever the
    #: config says, i.e. ``heap`` by default).  Travels as a plain string —
    #: like device/algorithm names — so a scheduler choice made in the
    #: parent pickles cleanly into every worker and is re-resolved there.
    scheduler: Optional[str] = None

    @classmethod
    def from_setting(
        cls,
        workload: str,
        setting: Setting,
        *,
        scale: float = 1.0,
        seed: int = 0xC0FFEE,
        config: Optional[SystemConfig] = None,
        limit: int = DEFAULT_CYCLE_LIMIT,
        validate: bool = True,
        verify: bool = False,
        arrival: Optional[ArrivalSpec] = None,
        scheduler: Optional[str] = None,
    ) -> "RunRequest":
        """Snapshot a :class:`~repro.eval.runner.Setting` into a request."""
        return cls(
            workload=workload,
            device=setting.device,
            algorithm=setting.algorithm,
            label=setting.label,
            scale=scale,
            seed=seed,
            config=config,
            limit=limit,
            validate=validate,
            verify=verify,
            arrival=arrival,
            scheduler=scheduler,
        )

    def setting(self) -> Setting:
        """Rebuild the :class:`Setting` (in whichever process runs this)."""
        label = self.label
        if label is None:
            algo = self.algorithm if isinstance(self.algorithm, str) else None
            label = f"{self.device}({algo})" if algo else f"{self.device}(baseline)"
        return Setting(label, self.device, self.algorithm)


def execute_request(request: RunRequest) -> RunMetrics:
    """Run one request to completion — the worker-process entry point.

    Also the serial path: ``jobs=1`` calls this in-process, which is why
    parallel output cannot drift from serial output.
    """
    config = request.config
    if request.scheduler is not None:
        config = (config or SystemConfig()).with_overrides(
            scheduler=request.scheduler
        )
    return run_workload(
        request.workload,
        request.setting(),
        scale=request.scale,
        config=config,
        seed=request.seed,
        limit=request.limit,
        validate=request.validate,
        verify=request.verify,
        arrival=request.arrival,
    )


@dataclass(frozen=True)
class RunOutcome:
    """One request's result: metrics on success, the typed error otherwise."""

    index: int
    request: RunRequest
    metrics: Optional[RunMetrics] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: None/1 → serial, 0 → all cores, N → N."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _mp_context():
    """Prefer ``fork`` so workers inherit runtime registry registrations.

    Under ``spawn`` (Windows/macOS default) workers still work — requests
    re-resolve component *names* through the registry, which re-imports the
    shipped modules — but custom registrations made at runtime in the
    parent must then be importable from the worker side.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _check_picklable(requests: Sequence[RunRequest]) -> None:
    for request in requests:
        try:
            pickle.dumps(request)
        except Exception as exc:
            raise ConfigError(
                f"request for workload {request.workload!r} "
                f"(setting {request.label!r}) cannot cross the process "
                f"boundary: {exc}.  Parameterized algorithms must be "
                f"picklable zero-arg factories (see repro.eval.runner."
                f"TunedFactory), not lambdas or closures."
            ) from exc


def execute_requests(
    requests: Sequence[RunRequest], jobs: Optional[int] = None
) -> List[RunOutcome]:
    """Run every request; never raises for a failing *run*.

    Outcomes are returned in submission order whatever the completion
    order, one per request: a crashed or deadlocked run yields its typed
    exception in :attr:`RunOutcome.error` while every other run's metrics
    are preserved.
    """
    requests = list(requests)
    workers = min(resolve_jobs(jobs), len(requests)) if requests else 1
    outcomes: List[RunOutcome] = []
    if workers <= 1:
        for index, request in enumerate(requests):
            try:
                outcomes.append(
                    RunOutcome(index, request, metrics=execute_request(request))
                )
            except Exception as exc:  # noqa: BLE001 - captured per-run by design
                outcomes.append(RunOutcome(index, request, error=exc))
        return outcomes
    _check_picklable(requests)
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        futures = [pool.submit(execute_request, request) for request in requests]
        for index, (request, future) in enumerate(zip(requests, futures)):
            try:
                outcomes.append(RunOutcome(index, request, metrics=future.result()))
            except Exception as exc:  # noqa: BLE001 - captured per-run by design
                outcomes.append(RunOutcome(index, request, error=exc))
    return outcomes


def run_requests(
    requests: Sequence[RunRequest], jobs: Optional[int] = None
) -> List[RunMetrics]:
    """Run every request and return metrics in submission order.

    The raising contract matches a plain serial loop: the first failing
    request (in submission order) has its typed exception re-raised —
    ``SimDeadlockError.tick``/``.blocked`` and ``VerificationError
    .violations`` intact even when the failure happened in a worker.
    Callers that need the surviving results around a failure use
    :func:`execute_requests` instead.
    """
    requests = list(requests)
    if min(resolve_jobs(jobs), len(requests) or 1) <= 1:
        # Pure serial fast path: no outcome wrappers, abort at first error
        # exactly like the historical per-figure loops.
        return [execute_request(request) for request in requests]
    outcomes = execute_requests(requests, jobs=jobs)
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.metrics for outcome in outcomes]
