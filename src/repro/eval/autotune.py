"""Per-benchmark tuned-parameter search (the paper's stated future work).

Section 3.5: "As future work, we could search to find a more optimal set of
parameters for each benchmark and reconfigure those parameters
dynamically."  This module implements that search as a coordinate-descent
hill climber over (ζ, τ, δ, α, β), scoring candidates by execution time
with an energy tie-breaker (the Figure 11 objective: closest to the
origin).

The search is deliberately simulation-budget-aware: it memoizes evaluated
points and stops after a configurable number of simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.metrics import RunMetrics
from repro.eval.runner import (
    multipush_setting,
    run_workload,
    setting_by_name,
    standard_settings,
    tuned_setting,
)
from repro.spamer.delay import TunedParams

#: Candidate values per coordinate, centred on the paper's choice.
SEARCH_SPACE: Dict[str, Tuple[int, ...]] = {
    "zeta": (64, 128, 256, 512),
    "tau": (96, 144, 192, 288),
    "delta": (16, 32, 64, 128),
    "alpha": (1, 2),
    "beta": (1, 2, 4),
}


@dataclass(frozen=True)
class TuneResult:
    """Outcome of a per-benchmark parameter search."""

    workload: str
    best_params: TunedParams
    best_score: float
    baseline_cycles: int
    best_metrics: RunMetrics
    evaluations: int
    #: Score of the paper's fixed parameter set, for comparison.
    paper_score: float

    @property
    def improvement_over_paper(self) -> float:
        """How much faster the searched set is than the paper's fixed set
        (1.0 = no improvement)."""
        return self.paper_score / self.best_score if self.best_score else 1.0


def _score(metrics: RunMetrics, baseline: RunMetrics, energy_weight: float) -> float:
    """Figure 11 objective: normalized delay plus a small energy term."""
    return metrics.normalized_delay(baseline) + energy_weight * metrics.normalized_energy(
        baseline
    )


def autotune(
    workload_name: str,
    scale: float = 0.25,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    start: Optional[TunedParams] = None,
    energy_weight: float = 0.05,
    max_evaluations: int = 40,
    max_rounds: int = 3,
) -> TuneResult:
    """Coordinate-descent search for the best tuned parameters.

    Starting from *start* (default: the paper's set), sweep one coordinate
    at a time over :data:`SEARCH_SPACE`, keeping the best value before
    moving to the next coordinate; repeat up to *max_rounds* passes or
    until no coordinate improves, within *max_evaluations* simulations.
    """
    if max_evaluations < 1 or max_rounds < 1:
        raise ConfigError("autotune needs positive budgets")
    vl = standard_settings()[0]
    baseline = run_workload(workload_name, vl, scale=scale, config=config, seed=seed)

    cache: Dict[TunedParams, RunMetrics] = {}
    evaluations = 0

    def evaluate(params: TunedParams) -> Optional[RunMetrics]:
        nonlocal evaluations
        if params in cache:
            return cache[params]
        if evaluations >= max_evaluations:
            return None
        evaluations += 1
        metrics = run_workload(
            workload_name,
            tuned_setting(params),
            scale=scale,
            config=config,
            seed=seed,
        )
        cache[params] = metrics
        return metrics

    current = start or TunedParams()
    current_metrics = evaluate(current)
    assert current_metrics is not None
    paper_metrics = evaluate(TunedParams())
    assert paper_metrics is not None
    best_score = _score(current_metrics, baseline, energy_weight)

    for _round in range(max_rounds):
        improved = False
        for coord, values in SEARCH_SPACE.items():
            for value in values:
                if getattr(current, coord) == value:
                    continue
                candidate = replace(current, **{coord: value})
                metrics = evaluate(candidate)
                if metrics is None:
                    break  # budget exhausted
                score = _score(metrics, baseline, energy_weight)
                if score < best_score - 1e-9:
                    current, best_score, improved = candidate, score, True
        if not improved:
            break

    return TuneResult(
        workload=workload_name,
        best_params=current,
        best_score=best_score,
        baseline_cycles=baseline.exec_cycles,
        best_metrics=cache[current],
        evaluations=evaluations,
        paper_score=_score(paper_metrics, baseline, energy_weight),
    )


# --------------------------------------------------------- (k, p_min) frontier
#: Burst-width candidates for the multi-push grid (k=1 is the single-push
#: control — its row must match SPAMeR(tuned) bit-for-bit).
DEFAULT_BURST_KS: Tuple[int, ...] = (1, 2, 4, 8)
#: Acceptance-gate candidates: 0.0 never gates, 0.95 almost always does.
DEFAULT_P_MINS: Tuple[float, ...] = (0.0, 0.5, 0.75, 0.9)


def saturated_bus_config(
    cores: int = 64,
    lines_per_endpoint: int = 8,
    base: Optional[SystemConfig] = None,
) -> SystemConfig:
    """The saturated shared-bus configuration the frontier is scored on.

    A 64-core single bus is the paper's worst congestion case: every push,
    request and invalidation serializes on one medium, so wasted burst
    traffic is maximally punished.  Buffer pools grow with the core count
    at Table 1's per-core ratio (mirroring the scaling study) and consumer
    endpoints get enough lines for the widest burst to claim ahead.
    """
    base = base or SystemConfig()
    entries = max(64, 4 * cores)
    return base.with_overrides(
        num_cores=cores,
        topology="single-bus",
        lines_per_endpoint=max(base.lines_per_endpoint, lines_per_endpoint),
        prodbuf_entries=entries,
        consbuf_entries=entries,
        linktab_entries=entries,
        specbuf_entries=entries,
    )


@dataclass(frozen=True)
class BurstPoint:
    """One evaluated (k, p_min) grid point."""

    burst_k: int
    p_min: float
    metrics: RunMetrics
    #: Scored quantity: closed-batch exec cycles, or p99 sojourn when the
    #: grid ran under an open arrival process.
    score: float

    def speedup_over(self, baseline: float) -> float:
        """Baseline score / this score (>1 = this point is better)."""
        return baseline / self.score if self.score else 0.0


@dataclass(frozen=True)
class BurstTuneResult:
    """Outcome of the (k, p_min) grid search for one workload."""

    workload: str
    #: Offered load of the open sweep, or None for the closed-batch grid.
    rho: Optional[float]
    #: SPAMeR(tuned) single-push control on the identical configuration.
    baseline_score: float
    baseline_metrics: RunMetrics
    points: List[BurstPoint]
    evaluations: int

    @property
    def best(self) -> BurstPoint:
        """The winning point; grid order breaks ties deterministically."""
        return min(self.points, key=lambda p: p.score)

    @property
    def best_speedup(self) -> float:
        return self.best.speedup_over(self.baseline_score)

    def frontier(self) -> List[BurstPoint]:
        """Per-k best points, ascending k — the (k, p_min) frontier."""
        by_k: Dict[int, BurstPoint] = {}
        for point in self.points:
            held = by_k.get(point.burst_k)
            if held is None or point.score < held.score:
                by_k[point.burst_k] = point
        return [by_k[k] for k in sorted(by_k)]


def _burst_score(metrics: RunMetrics, open_mode: bool) -> float:
    if open_mode:
        return float(metrics.extra.get("request_p99", 0.0)) or float(
            metrics.exec_cycles
        )
    return float(metrics.exec_cycles)


def autotune_burst(
    workload_name: str = "incast",
    ks: Sequence[int] = DEFAULT_BURST_KS,
    p_mins: Sequence[float] = DEFAULT_P_MINS,
    scale: float = 0.05,
    seed: int = 0xC0FFEE,
    config: Optional[SystemConfig] = None,
    rho: Optional[float] = None,
    arrival: str = "poisson",
    jobs: Optional[int] = None,
    executor=None,
) -> BurstTuneResult:
    """Grid-search the (k, p_min) burst frontier for one workload.

    Every grid cell runs on the same configuration (default:
    :func:`saturated_bus_config`, the 64-core shared bus) through the
    deterministic multiprocess executor, so the report is bit-identical
    across ``jobs`` values.  With ``rho=None`` the grid is a closed batch
    scored by execution cycles; with a rho the tuned control's closed run
    calibrates the service rate and every cell re-runs under an open
    arrival process at that offered load, scored by p99 sojourn — the
    saturated-tail question the frontier exists to answer.

    *executor* is any ``run_requests``-shaped callable (e.g. a
    :class:`~repro.serve.executor.ServeExecutor`); the grid routes
    through it so repeated frontier sweeps hit the daemon's result cache.
    """
    from repro.eval.load import arrival_spec_for
    from repro.eval.parallel import RunRequest, run_requests
    from repro.workloads.registry import make_workload

    if not ks or not p_mins:
        raise ConfigError("autotune_burst needs at least one k and one p_min")
    config = config or saturated_bus_config()
    tuned = setting_by_name("tuned")

    baseline_closed = run_workload(
        workload_name, tuned, scale=scale, config=config, seed=seed
    )
    arrival_spec = None
    if rho is not None:
        probe = make_workload(workload_name, scale=scale)
        if not probe.open_capable:
            raise ConfigError(
                f"workload {workload_name!r} is closed-only; the rho-scored "
                "grid needs an open-capable workload"
            )
        quotas = probe.session_quotas()
        service_rate = (
            sum(quotas.values()) / baseline_closed.exec_cycles
            if baseline_closed.exec_cycles
            else 0.0
        )
        session_rate = rho * service_rate / len(quotas)
        arrival_spec = arrival_spec_for(arrival, session_rate)

    grid = [(k, p) for k in ks for p in p_mins]
    requests = [
        RunRequest.from_setting(
            workload_name,
            multipush_setting(k, p),
            scale=scale,
            seed=seed,
            config=config,
            arrival=arrival_spec,
        )
        for k, p in grid
    ]
    if arrival_spec is not None:
        # The open-mode control: tuned single-push at the same offered load.
        requests.append(
            RunRequest.from_setting(
                workload_name,
                tuned,
                scale=scale,
                seed=seed,
                config=config,
                arrival=arrival_spec,
            )
        )
    runner = executor if executor is not None else run_requests
    metrics_list = runner(requests, jobs=jobs)

    open_mode = arrival_spec is not None
    if open_mode:
        baseline_metrics = metrics_list[-1]
        metrics_list = metrics_list[:-1]
    else:
        baseline_metrics = baseline_closed
    points = [
        BurstPoint(k, p, metrics, _burst_score(metrics, open_mode))
        for (k, p), metrics in zip(grid, metrics_list)
    ]
    return BurstTuneResult(
        workload=workload_name,
        rho=rho,
        baseline_score=_burst_score(baseline_metrics, open_mode),
        baseline_metrics=baseline_metrics,
        points=points,
        evaluations=len(requests) + 1,
    )


def autotune_all(
    workloads: Optional[List[str]] = None,
    scale: float = 0.15,
    max_evaluations: int = 25,
    seed: int = 0xC0FFEE,
) -> Dict[str, TuneResult]:
    """Search every benchmark; returns per-benchmark results."""
    from repro.workloads.registry import workload_names

    out = {}
    for name in workloads or workload_names():
        out[name] = autotune(
            name, scale=scale, max_evaluations=max_evaluations, seed=seed
        )
    return out
