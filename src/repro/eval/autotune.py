"""Per-benchmark tuned-parameter search (the paper's stated future work).

Section 3.5: "As future work, we could search to find a more optimal set of
parameters for each benchmark and reconfigure those parameters
dynamically."  This module implements that search as a coordinate-descent
hill climber over (ζ, τ, δ, α, β), scoring candidates by execution time
with an energy tie-breaker (the Figure 11 objective: closest to the
origin).

The search is deliberately simulation-budget-aware: it memoizes evaluated
points and stops after a configurable number of simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.metrics import RunMetrics
from repro.eval.runner import run_workload, standard_settings, tuned_setting
from repro.spamer.delay import TunedParams

#: Candidate values per coordinate, centred on the paper's choice.
SEARCH_SPACE: Dict[str, Tuple[int, ...]] = {
    "zeta": (64, 128, 256, 512),
    "tau": (96, 144, 192, 288),
    "delta": (16, 32, 64, 128),
    "alpha": (1, 2),
    "beta": (1, 2, 4),
}


@dataclass(frozen=True)
class TuneResult:
    """Outcome of a per-benchmark parameter search."""

    workload: str
    best_params: TunedParams
    best_score: float
    baseline_cycles: int
    best_metrics: RunMetrics
    evaluations: int
    #: Score of the paper's fixed parameter set, for comparison.
    paper_score: float

    @property
    def improvement_over_paper(self) -> float:
        """How much faster the searched set is than the paper's fixed set
        (1.0 = no improvement)."""
        return self.paper_score / self.best_score if self.best_score else 1.0


def _score(metrics: RunMetrics, baseline: RunMetrics, energy_weight: float) -> float:
    """Figure 11 objective: normalized delay plus a small energy term."""
    return metrics.normalized_delay(baseline) + energy_weight * metrics.normalized_energy(
        baseline
    )


def autotune(
    workload_name: str,
    scale: float = 0.25,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    start: Optional[TunedParams] = None,
    energy_weight: float = 0.05,
    max_evaluations: int = 40,
    max_rounds: int = 3,
) -> TuneResult:
    """Coordinate-descent search for the best tuned parameters.

    Starting from *start* (default: the paper's set), sweep one coordinate
    at a time over :data:`SEARCH_SPACE`, keeping the best value before
    moving to the next coordinate; repeat up to *max_rounds* passes or
    until no coordinate improves, within *max_evaluations* simulations.
    """
    if max_evaluations < 1 or max_rounds < 1:
        raise ConfigError("autotune needs positive budgets")
    vl = standard_settings()[0]
    baseline = run_workload(workload_name, vl, scale=scale, config=config, seed=seed)

    cache: Dict[TunedParams, RunMetrics] = {}
    evaluations = 0

    def evaluate(params: TunedParams) -> Optional[RunMetrics]:
        nonlocal evaluations
        if params in cache:
            return cache[params]
        if evaluations >= max_evaluations:
            return None
        evaluations += 1
        metrics = run_workload(
            workload_name,
            tuned_setting(params),
            scale=scale,
            config=config,
            seed=seed,
        )
        cache[params] = metrics
        return metrics

    current = start or TunedParams()
    current_metrics = evaluate(current)
    assert current_metrics is not None
    paper_metrics = evaluate(TunedParams())
    assert paper_metrics is not None
    best_score = _score(current_metrics, baseline, energy_weight)

    for _round in range(max_rounds):
        improved = False
        for coord, values in SEARCH_SPACE.items():
            for value in values:
                if getattr(current, coord) == value:
                    continue
                candidate = replace(current, **{coord: value})
                metrics = evaluate(candidate)
                if metrics is None:
                    break  # budget exhausted
                score = _score(metrics, baseline, energy_weight)
                if score < best_score - 1e-9:
                    current, best_score, improved = candidate, score, True
        if not improved:
            break

    return TuneResult(
        workload=workload_name,
        best_params=current,
        best_score=best_score,
        baseline_cycles=baseline.exec_cycles,
        best_metrics=cache[current],
        evaluations=evaluations,
        paper_score=_score(paper_metrics, baseline, energy_weight),
    )


def autotune_all(
    workloads: Optional[List[str]] = None,
    scale: float = 0.15,
    max_evaluations: int = 25,
    seed: int = 0xC0FFEE,
) -> Dict[str, TuneResult]:
    """Search every benchmark; returns per-benchmark results."""
    from repro.workloads.registry import workload_names

    out = {}
    for name in workloads or workload_names():
        out[name] = autotune(
            name, scale=scale, max_evaluations=max_evaluations, seed=seed
        )
    return out
