"""Parameter sweeps for the Figure 11 sensitivity study.

Figure 11 plots, per benchmark, end-to-end execution time ("delay") against
the dynamic energy of SRD pushes ("energy"), both normalized to the VL
baseline, for the 0-delay and adaptive algorithms plus the tuned algorithm
under many (ζ, τ, δ, α, β) combinations.  The paper's chosen set
(ζ=256, τ=96, δ=64, α=1, β=2) is highlighted as the cross marker.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence

from repro.config import SystemConfig
from repro.eval.metrics import RunMetrics
from repro.eval.parallel import RunRequest, run_requests
from repro.eval.runner import Setting, standard_settings, tuned_setting
from repro.spamer.delay import TunedParams

#: The paper's chosen parameter set (tuned on FIR, Section 3.5).
PAPER_TUNED_PARAMS = TunedParams(zeta=256, tau=96, delta=64, alpha=1, beta=2)


def default_parameter_grid() -> List[TunedParams]:
    """A compact grid around the paper's chosen set.

    The paper sweeps "other combinations of the tuned algorithm parameters"
    (small blue dots in Fig 11); this grid covers the same axes — range
    width (ζ, τ), step density (δ), escalation rate (α) and initialization
    length (β).
    """
    grid = []
    for zeta, tau, delta, alpha, beta in product(
        (128, 256, 512),
        (48, 96, 192),
        (32, 64, 128),
        (1, 2),
        (1, 2),
    ):
        grid.append(TunedParams(zeta=zeta, tau=tau, delta=delta, alpha=alpha, beta=beta))
    return grid


@dataclass(frozen=True)
class SensitivityPoint:
    """One marker of a Figure 11 panel."""

    label: str
    params: Optional[TunedParams]       # None for VL / 0delay / adapt markers
    normalized_delay: float             # x-axis (execution time / baseline)
    normalized_energy: float            # y-axis (push energy / baseline)
    metrics: RunMetrics

    @property
    def is_paper_choice(self) -> bool:
        return self.params == PAPER_TUNED_PARAMS


def sensitivity_sweep(
    workload_name: str,
    params_grid: Optional[Sequence[TunedParams]] = None,
    scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    jobs: Optional[int] = None,
) -> List[SensitivityPoint]:
    """Run one benchmark's Figure 11 panel; returns all markers.

    The first returned point is always the VL baseline (1.0, 1.0); the
    paper's chosen tuned set is included even if absent from *params_grid*.
    Every marker is an independent simulation, so ``jobs`` fans the whole
    panel — baseline, fixed algorithms and the entire parameter grid —
    across worker processes with bit-identical results.
    """
    grid = list(params_grid) if params_grid is not None else default_parameter_grid()
    if PAPER_TUNED_PARAMS not in grid:
        grid.insert(0, PAPER_TUNED_PARAMS)

    vl, zerod, adapt, _tuned = standard_settings()
    plan: List[tuple] = [
        (vl, "VL (baseline)", None),
        (zerod, "SPAMeR (0delay)", None),
        (adapt, "SPAMeR (adapt)", None),
    ]
    for params in grid:
        label = (
            "SPAMeR (tuned)" if params == PAPER_TUNED_PARAMS else "SPAMeR (other)"
        )
        plan.append((tuned_setting(params), label, params))

    requests = [
        RunRequest.from_setting(
            workload_name, setting, scale=scale, config=config, seed=seed
        )
        for setting, _label, _params in plan
    ]
    metrics = run_requests(requests, jobs=jobs)

    baseline = metrics[0]
    points = [SensitivityPoint("VL (baseline)", None, 1.0, 1.0, baseline)]
    for (_setting, label, params), m in zip(plan[1:], metrics[1:]):
        points.append(
            SensitivityPoint(
                label,
                params,
                m.normalized_delay(baseline),
                m.normalized_energy(baseline),
                m,
            )
        )
    return points
