"""Experiment runner: build a system, run a workload, collect metrics.

A :class:`Setting` names one of the evaluated configurations —
``VL(baseline)``, ``SPAMeR(0delay)``, ``SPAMeR(adapt)``, ``SPAMeR(tuned)``
(Figures 8–10) — or any custom device/algorithm combination (the Figure 11
parameter sweep builds tuned settings on the fly).  Settings resolve their
device and algorithm through :mod:`repro.registry`, so any component
registered with :func:`~repro.registry.register_device` /
:func:`~repro.registry.register_algorithm` is immediately runnable here,
in the batch runner and from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.config import SystemConfig
from repro.eval.metrics import RunMetrics
from repro.errors import SimDeadlockError, SimulationError
from repro.registry import (
    algorithm_names,
    device_names,
    registry_generation,
    resolve_device,
)
from repro.spamer.delay import DelayAlgorithm, TunedDelay, TunedParams
from repro.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload

#: Guardrail: a benchmark run that exceeds this many cycles has deadlocked
#: or been mis-scaled (the paper's longest runs are a few ms = a few Mcycles).
DEFAULT_CYCLE_LIMIT = 2_000_000_000


@dataclass(frozen=True)
class Setting:
    """One evaluated device/algorithm configuration.

    ``device`` is any registered device name; ``algorithm`` may be a
    registered algorithm name, a zero-arg factory (for parameterized
    algorithms, e.g. the Figure 11 sweep), or None for devices that do not
    speculate / to use the device's registered default.
    """

    label: str
    device: str
    algorithm: Union[str, Callable[[], DelayAlgorithm], None] = None

    def build_system(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 0xC0FFEE,
        trace: bool = False,
    ) -> System:
        algo = self.algorithm() if callable(self.algorithm) else self.algorithm
        return System(
            config=config, device=self.device, algorithm=algo, seed=seed, trace=trace
        )


def standard_settings() -> List[Setting]:
    """The four configurations of Figures 8–10, in plot order."""
    return [
        Setting("VL(baseline)", "vl"),
        Setting("SPAMeR(0delay)", "spamer", "0delay"),
        Setting("SPAMeR(adapt)", "spamer", "adapt"),
        Setting("SPAMeR(tuned)", "spamer", "tuned"),
    ]


#: Registry-derived settings cache: (generation, settings, name->setting).
#: Rebuilding the list walks every registered device × algorithm, and the
#: batch runner resolves names in a tight loop — so it is computed once per
#: registry generation and invalidated by any (un)registration.
_settings_cache: Optional[Tuple[int, List[Setting], Dict[str, Setting]]] = None


def _settings_index() -> Tuple[List[Setting], Dict[str, Setting]]:
    global _settings_cache
    generation = registry_generation()
    if _settings_cache is not None and _settings_cache[0] == generation:
        return _settings_cache[1], _settings_cache[2]
    settings: List[Setting] = []
    for device in device_names():
        spec = resolve_device(device)
        if not spec.accepts_algorithm:
            settings.append(Setting(_device_label(device), device))
            continue
        for algo in algorithm_names(include_parameterized=False):
            settings.append(Setting(f"SPAMeR({algo})", device, algo))
    by_name: Dict[str, Setting] = {}
    for setting in settings:
        if setting.algorithm is None:
            by_name.setdefault(setting.device, setting)
        elif isinstance(setting.algorithm, str) and setting.device == "spamer":
            by_name.setdefault(setting.algorithm, setting)
    _settings_cache = (generation, settings, by_name)
    return settings, by_name


def setting_names() -> List[Setting]:
    """Every zero-configuration setting the registry can offer.

    One setting per registered device; speculating devices additionally get
    one per registered zero-arg algorithm.  This is the list the CLI and
    the batch runner expose — registering a new device or algorithm extends
    it with no edits here.
    """
    return list(_settings_index()[0])


def _device_label(device: str) -> str:
    return "VL(baseline)" if device == "vl" else f"{device}(baseline)"


def setting_by_name(name: str) -> Setting:
    """Resolve a CLI/batch short-name to a :class:`Setting`.

    A short-name is either a registered non-speculating device name
    (``vl``) or a registered zero-arg algorithm name (``tuned``), which
    implies the ``spamer`` device — matching the four evaluated settings'
    naming.  Unknown names raise listing what is available.
    """
    from repro.errors import ConfigError

    setting = _settings_index()[1].get(name)
    if setting is not None:
        return setting
    raise ConfigError(
        f"unknown setting {name!r}; available settings: {available_setting_names()}"
    )


def available_setting_names() -> List[str]:
    """The short-names :func:`setting_by_name` accepts, in stable order."""
    return list(_settings_index()[1])


@dataclass(frozen=True)
class TunedFactory:
    """Zero-arg :class:`TunedDelay` factory that survives pickling.

    :func:`tuned_setting` used to close over its parameters with a lambda,
    which made Figure-11 sweep settings unpicklable and therefore unusable
    with the multiprocess executor (:mod:`repro.eval.parallel`).  A frozen
    dataclass with ``__call__`` carries the parameters across the process
    boundary and rebuilds the algorithm inside the worker.
    """

    params: TunedParams

    def __call__(self) -> TunedDelay:
        return TunedDelay(self.params)


def tuned_setting(params: TunedParams) -> Setting:
    """A SPAMeR(tuned) setting with explicit parameters (Figure 11 sweep)."""
    return Setting(f"SPAMeR(tuned:{params.label()})", "spamer", TunedFactory(params))


@dataclass(frozen=True)
class MultiPushFactory:
    """Zero-arg multi-push algorithm factory that survives pickling.

    Carries the burst parameters across the process boundary (the autotune
    grid fans (k, p_min) points out over :mod:`repro.eval.parallel`) and
    rebuilds :class:`~repro.spamer.multipush.MultiPushDelay` — wrapping a
    fresh :class:`TunedDelay` inner predictor — inside the worker.
    """

    burst_k: int
    p_min: float
    params: Optional[TunedParams] = None

    def __call__(self):
        from repro.spamer.multipush import MultiPushDelay

        inner = TunedDelay(self.params) if self.params is not None else None
        return MultiPushDelay(inner=inner, burst_k=self.burst_k, p_min=self.p_min)


def multipush_setting(
    burst_k: int, p_min: float, params: Optional[TunedParams] = None
) -> Setting:
    """A SPAMeR(multipush) setting with explicit (k, p_min) burst parameters."""
    return Setting(
        f"SPAMeR(multipush:k{burst_k},p{p_min:g})",
        "spamer",
        MultiPushFactory(burst_k, p_min, params),
    )


def collect_metrics(system: System, workload: Workload, setting: Setting) -> RunMetrics:
    """Assemble :class:`RunMetrics` from a finished run."""
    stats = system.aggregate_device_stats()
    empty, valid = system.consumer_line_cycles()
    lat = system.latency_stats
    return RunMetrics(
        workload=workload.name,
        setting=setting.label,
        exec_cycles=system.env.now,
        messages_delivered=system.messages_delivered(),
        messages_produced=system.messages_produced(),
        push_attempts=stats.get("push_attempts"),
        push_failures=stats.get("push_failures"),
        ondemand_pushes=stats.get("ondemand_pushes"),
        ondemand_failures=stats.get("ondemand_failures"),
        spec_pushes=stats.get("spec_pushes"),
        spec_failures=stats.get("spec_failures"),
        bus_busy_cycles=system.network.busy_cycles,
        bus_packets=system.network.total_packets,
        request_packets=stats.get("request_arrivals"),
        avg_line_empty=empty,
        avg_line_valid=valid,
        latency_mean=lat.mean,
        latency_p50=lat.percentile(50) if lat.n else 0.0,
        latency_p99=lat.percentile(99) if lat.n else 0.0,
        extra=_with_burst_extras(
            stats,
            _with_request_extras(
                system,
                _with_net_extras(
                    system,
                    {
                        "requests_dropped": stats.get("requests_dropped"),
                        "buffered": stats.get("buffered"),
                        "spec_selected": stats.get("spec_selected"),
                    },
                ),
            ),
        ),
    )


def _with_net_extras(system: System, extra: Dict) -> Dict:
    """Add fabric metrics on NoC topologies (single-bus has no links, so
    bus-model RunMetrics stay byte-identical)."""
    links = system.network.links()
    if links:
        extra["net_links"] = len(links)
        extra["net_wait_cycles"] = system.network.wait_cycles
        extra["net_utilization"] = round(system.network.utilization(), 6)
    return extra


def _with_burst_extras(stats, extra: Dict) -> Dict:
    """Add multi-push burst counters when any burst activity happened
    (single-push runs never claim a burst slot, so their RunMetrics stay
    byte-identical)."""
    if stats.get("burst_claims") or stats.get("spec_rollbacks"):
        extra["burst_claims"] = stats.get("burst_claims")
        extra["burst_confirms"] = stats.get("burst_confirms")
        extra["spec_rollbacks"] = stats.get("spec_rollbacks")
        extra["rollback_invalidations"] = stats.get("rollback_invalidations")
    return extra


def _with_request_extras(system: System, extra: Dict) -> Dict:
    """Add open-system sojourn metrics when a request log is active
    (closed-batch runs never activate one, so their RunMetrics stay
    byte-identical)."""
    log = system.requests
    if log.active:
        extra["request_count"] = log.completed
        extra["request_opened"] = log.opened
        extra["request_mean"] = round(log.sojourn_stats.mean, 6)
        extra["request_p50"] = log.percentile(50)
        extra["request_p99"] = log.percentile(99)
        extra["request_p999"] = log.percentile(99.9)
    return extra


def run_workload(
    workload_name: str,
    setting: Setting,
    scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    trace: bool = False,
    limit: int = DEFAULT_CYCLE_LIMIT,
    validate: bool = True,
    on_system: Optional[Callable[[System], None]] = None,
    verify: bool = False,
    return_system: bool = False,
    arrival=None,
):
    """Run one (workload, setting) pair end to end and return its metrics.

    *on_system* is called with the freshly built :class:`System` before the
    run starts — the hook point for attaching instrumentation (e.g. the
    CLI's ``--hook-stats`` stage-latency histograms) without threading
    subscriber objects through every caller.

    ``verify=True`` attaches the live invariant checker
    (:mod:`repro.verify.invariants`) and raises
    :class:`~repro.errors.VerificationError` on any semantic violation.
    Every run additionally gets the stall watchdog: a silent deadlock
    (e.g. the ``never`` ablation on fetch-skipping consumers) aborts with
    a diagnostic :class:`~repro.errors.SimDeadlockError` instead of
    spinning until the cycle limit.

    ``return_system=True`` returns ``(metrics, system)`` so callers can
    inspect traces or device state post-run — the single code path behind
    the Figure 7 trace experiment (no parallel, drift-prone twin).

    *arrival* selects the open-system arrival process (None = closed
    batch, the historical behaviour); see :mod:`repro.workloads.arrival`.
    """
    from repro.verify.invariants import StallWatchdog

    if verify:
        config = (config or SystemConfig()).with_overrides(verify=True)
    workload = make_workload(workload_name, scale=scale, arrival=arrival)
    system = setting.build_system(config=config, seed=seed, trace=trace)
    if on_system is not None:
        on_system(system)
    workload.build(system)
    if not system.env.has_watchdog:
        StallWatchdog(system).install()
    try:
        system.run_to_completion(limit=limit)
    except SimDeadlockError:
        # Typed stall diagnostic: pass it through unwrapped so callers can
        # read .tick and .blocked.
        raise
    except SimulationError as exc:
        raise SimulationError(
            f"{workload_name} under {setting.label} did not complete: {exc}"
        ) from exc
    if validate:
        workload.validate()
    if system.verifier is not None:
        system.verifier.quiesce()
    metrics = collect_metrics(system, workload, setting)
    if return_system:
        return metrics, system
    return metrics


def run_workload_traced(
    workload_name: str,
    setting: Setting,
    scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    **kwargs,
):
    """Like :func:`run_workload` but returns (metrics, system) with tracing
    enabled — used by the Figure 7 transaction-trace experiment.

    A thin delegate: historically this was a hand-rolled copy of
    :func:`run_workload` that silently ignored ``limit``/``verify``/
    ``on_system``; delegating makes the two paths incapable of drifting,
    and any :func:`run_workload` keyword now passes straight through.
    """
    return run_workload(
        workload_name,
        setting,
        scale=scale,
        config=config,
        seed=seed,
        trace=True,
        return_system=True,
        **kwargs,
    )
