"""Area and power estimation (Section 4.5).

The paper estimates SRD cost by synthesizing RTL on FreePDK 45 nm and
scaling to 16 nm with the Stillmaker–Baas scaling equations.  We reproduce
the *arithmetic* of that estimate: a buffer-area model parameterised per
structure (entry counts × entry widths × per-bit cost), calibrated so the
default 64-entry geometry reproduces the paper's reported numbers:

* SRD buffers 0.156 mm², overall 0.170 mm² — within 15 % of the VLRD;
* a 16-core Arm A-72 SoC at 16FF is ≥ 18.4 mm² (1.15 mm²/core), so the SRD
  is < 1 % of SoC area;
* VL power 9.33 mW dynamic + 0.82 mW leakage at 0.86 V; SRD dynamic power
  scales with push frequency (adaptive ≤ 2.45×, tuned ≤ 5.03× ⇒ ≤ 47.75 mW
  total), about 0.23 % of a ~21 W 16-core SoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.errors import ConfigError

# ---------------------------------------------------------------- constants
#: Paper-reported anchors (Section 4.5).
VLRD_AREA_MM2 = 0.170 / 1.15           # derived: SRD is "within 15%" of VLRD
SRD_BUFFER_AREA_MM2 = 0.156
SRD_TOTAL_AREA_MM2 = 0.170
A72_CORE_AREA_MM2 = 1.15
VL_DYNAMIC_POWER_MW = 9.33
VL_LEAKAGE_POWER_MW = 0.82
SOC_16CORE_POWER_W = 21.0
SUPPLY_VOLTAGE = 0.86

#: Entry widths in bits (cacheline payload + address/state metadata).
PRODBUF_ENTRY_BITS = 512 + 64          # data line + SQI/state
CONSBUF_ENTRY_BITS = 64 + 16           # target address + SQI
LINKTAB_ENTRY_BITS = 4 * 16            # head/tail pairs
#: base + len + offset + next + on_fly — the 0-delay baseline geometry the
#: paper's 0.170 mm² anchor is estimated for (Section 4.5).
SPECBUF_ENTRY_BITS = 64 + 16 + 16 + 16 + 1
#: The tuned algorithm's extra per-entry latches (Figure 6: ddl, last,
#: nfills, failed, delay) — the "additional storage" Section 4.5 notes other
#: delay algorithms may require.
TUNED_LATCH_BITS = 16 + 64 + 16 + 1 + 16


@dataclass(frozen=True)
class AreaEstimate:
    """Per-structure and total area in mm² at the 16 nm node."""

    buffers_mm2: Dict[str, float]
    control_mm2: float

    @property
    def buffer_total_mm2(self) -> float:
        return sum(self.buffers_mm2.values())

    @property
    def total_mm2(self) -> float:
        return self.buffer_total_mm2 + self.control_mm2

    def share_of_soc(self, num_cores: int = 16) -> float:
        """SRD area as a fraction of a *num_cores* A-72 SoC (cores only)."""
        return self.total_mm2 / (num_cores * A72_CORE_AREA_MM2)


def _bit_cost_mm2() -> float:
    """mm² per buffer bit, calibrated so the paper's default geometry
    (64 entries everywhere, 0-delay specBuf) yields 0.156 mm² of buffers."""
    default_bits = 64 * (
        PRODBUF_ENTRY_BITS + CONSBUF_ENTRY_BITS + LINKTAB_ENTRY_BITS + SPECBUF_ENTRY_BITS
    )
    return SRD_BUFFER_AREA_MM2 / default_bits


def estimate_srd_area(
    config: Optional[SystemConfig] = None,
    include_tuned_latches: bool = False,
) -> AreaEstimate:
    """Estimate SRD area for *config*'s buffer geometry.

    ``include_tuned_latches`` adds the Figure 6 per-entry latch storage the
    tuned algorithm needs on top of the paper's 0-delay anchor.
    """
    cfg = config or SystemConfig()
    per_bit = _bit_cost_mm2()
    spec_bits = SPECBUF_ENTRY_BITS + (TUNED_LATCH_BITS if include_tuned_latches else 0)
    buffers = {
        "prodBuf": cfg.prodbuf_entries * PRODBUF_ENTRY_BITS * per_bit,
        "consBuf": cfg.consbuf_entries * CONSBUF_ENTRY_BITS * per_bit,
        "linkTab": cfg.linktab_entries * LINKTAB_ENTRY_BITS * per_bit,
        "specBuf": cfg.specbuf_entries * spec_bits * per_bit,
    }
    control = SRD_TOTAL_AREA_MM2 - SRD_BUFFER_AREA_MM2
    return AreaEstimate(buffers_mm2=buffers, control_mm2=control)


def estimate_vlrd_area(config: Optional[SystemConfig] = None) -> AreaEstimate:
    """VLRD = SRD without specBuf (and without the tuned latches)."""
    cfg = config or SystemConfig()
    srd = estimate_srd_area(cfg)
    buffers = {k: v for k, v in srd.buffers_mm2.items() if k != "specBuf"}
    return AreaEstimate(buffers_mm2=buffers, control_mm2=srd.control_mm2)


@dataclass(frozen=True)
class PowerEstimate:
    """Dynamic + leakage power of the routing device in mW."""

    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    def share_of_soc(self, soc_power_w: float = SOC_16CORE_POWER_W) -> float:
        return self.total_mw / (soc_power_w * 1000.0)


def estimate_power(push_frequency_ratio: float) -> PowerEstimate:
    """SRD power given its push frequency relative to the VL baseline.

    Section 4.5 multiplies VL's dynamic power by the push-frequency factor
    (the adaptive algorithm is bounded by 2.45×, the tuned by 5.03×, giving
    the ≤ 47.75 mW total the paper quotes).
    """
    if push_frequency_ratio < 0:
        raise ConfigError(f"negative push frequency ratio {push_frequency_ratio}")
    return PowerEstimate(
        dynamic_mw=VL_DYNAMIC_POWER_MW * push_frequency_ratio,
        leakage_mw=VL_LEAKAGE_POWER_MW,
    )


def paper_power_bounds() -> Dict[str, PowerEstimate]:
    """The paper's quoted worst-case power per algorithm."""
    return {
        "VL(baseline)": estimate_power(1.0),
        "SPAMeR(adapt)": estimate_power(2.45),
        "SPAMeR(tuned)": estimate_power(5.03),
    }
