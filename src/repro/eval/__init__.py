"""Evaluation harness: runners, metrics, and per-table/figure experiments."""

from repro.eval.autotune import TuneResult, autotune, autotune_all
from repro.eval.batch import parse_spec, run_batch, run_batch_file, summarize_report
from repro.eval.areapower import (
    AreaEstimate,
    PowerEstimate,
    estimate_power,
    estimate_srd_area,
    estimate_vlrd_area,
    paper_power_bounds,
)
from repro.eval.experiments import (
    ComparisonResult,
    TraceResult,
    comparison_experiment,
    inlining_experiment,
    render_fig8,
    render_fig9,
    render_fig10a,
    render_fig10b,
    render_table1,
    render_table2,
    table1,
    table2,
    trace_experiment,
)
from repro.eval.metrics import RunMetrics
from repro.eval.parallel import (
    RunOutcome,
    RunRequest,
    execute_request,
    execute_requests,
    resolve_jobs,
    run_requests,
)
from repro.eval.replication import (
    ReplicatedComparison,
    ReplicatedStat,
    replicated_comparison,
)
from repro.eval.runner import (
    Setting,
    collect_metrics,
    run_workload,
    run_workload_traced,
    standard_settings,
    tuned_setting,
)
from repro.eval.sweep import (
    PAPER_TUNED_PARAMS,
    SensitivityPoint,
    default_parameter_grid,
    sensitivity_sweep,
)

__all__ = [
    "AreaEstimate",
    "ReplicatedComparison",
    "ReplicatedStat",
    "TuneResult",
    "autotune",
    "autotune_all",
    "parse_spec",
    "run_batch",
    "run_batch_file",
    "summarize_report",
    "replicated_comparison",
    "ComparisonResult",
    "PAPER_TUNED_PARAMS",
    "PowerEstimate",
    "RunMetrics",
    "RunOutcome",
    "RunRequest",
    "execute_request",
    "execute_requests",
    "resolve_jobs",
    "run_requests",
    "SensitivityPoint",
    "Setting",
    "TraceResult",
    "collect_metrics",
    "comparison_experiment",
    "default_parameter_grid",
    "estimate_power",
    "estimate_srd_area",
    "estimate_vlrd_area",
    "inlining_experiment",
    "paper_power_bounds",
    "render_fig8",
    "render_fig9",
    "render_fig10a",
    "render_fig10b",
    "render_table1",
    "render_table2",
    "run_workload",
    "run_workload_traced",
    "sensitivity_sweep",
    "standard_settings",
    "table1",
    "table2",
    "trace_experiment",
    "tuned_setting",
]
