"""Batch experiment runner: JSON spec in, JSON report out.

For artifact-evaluation style studies: describe a grid of (workloads ×
settings × seeds × config overrides) in a JSON document, run it, and get a
machine-readable report with every metric plus derived speedups.  Specs and
reports are plain JSON so they diff, archive and plot outside Python.

Spec format::

    {
      "name": "my-study",
      "workloads": ["incast", "FIR"],          // default: all 8
      "settings": ["vl", "0delay", "tuned"],   // default: the 4 evaluated
      "seeds": [12648430, 1],                  // default: [0xC0FFEE]
      "scale": 0.25,                           // default 1.0
      "config": {"bus_latency": 72}            // SystemConfig overrides
    }

The report nests ``results[workload][setting][seed] -> metrics dict`` and
adds per-seed speedups over the first listed setting.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.parallel import RunRequest, run_requests
from repro.eval.runner import (
    available_setting_names,
    setting_by_name,
)
from repro.workloads.registry import workload_names


def _metrics_to_dict(metrics) -> Dict:
    data = dataclasses.asdict(metrics)
    data["failure_rate"] = metrics.failure_rate
    data["bus_utilization"] = metrics.bus_utilization
    data["push_energy"] = metrics.push_energy
    return data


def parse_spec(spec: Dict) -> Dict:
    """Validate and normalize a batch spec (filling defaults)."""
    if not isinstance(spec, dict):
        raise ConfigError("batch spec must be a JSON object")
    out = {
        "name": spec.get("name", "unnamed-study"),
        "workloads": spec.get("workloads", workload_names()),
        "settings": spec.get("settings", ["vl", "0delay", "adapt", "tuned"]),
        "seeds": spec.get("seeds", [0xC0FFEE]),
        "scale": float(spec.get("scale", 1.0)),
        "config": spec.get("config", {}),
    }
    unknown_workloads = set(out["workloads"]) - set(workload_names())
    if unknown_workloads:
        raise ConfigError(f"unknown workloads in spec: {sorted(unknown_workloads)}")
    # Settings resolve through the registry: any registered device or
    # zero-arg algorithm short-name is accepted.
    unknown_settings = set(out["settings"]) - set(available_setting_names())
    if unknown_settings:
        raise ConfigError(f"unknown settings in spec: {sorted(unknown_settings)}")
    if not out["seeds"]:
        raise ConfigError("spec needs at least one seed")
    if out["scale"] <= 0:
        raise ConfigError(f"invalid scale {out['scale']}")
    # Validate overrides eagerly (raises ConfigError on bad fields/values).
    SystemConfig().with_overrides(**out["config"])
    return out


def run_batch(
    spec: Dict, jobs: Optional[int] = None, executor=None
) -> Dict:
    """Run the grid a spec describes; returns the JSON-serializable report.

    ``jobs`` fans the independent (workload × setting × seed) cells across
    worker processes (0 = all cores; default serial); the report is
    bit-identical either way because results merge in submission order.

    *executor* is any ``run_requests``-shaped callable — pass a
    :class:`~repro.serve.executor.ServeExecutor` to route the grid
    through a serve daemon (warm pool + result cache) instead of the
    per-call process pool; the report stays bit-identical by the same
    determinism argument.
    """
    norm = parse_spec(spec)
    config = SystemConfig().with_overrides(**norm["config"])
    settings = {name: setting_by_name(name) for name in norm["settings"]}
    baseline_name = norm["settings"][0]

    cells = [
        (workload, setting_name, seed)
        for workload in norm["workloads"]
        for setting_name in settings
        for seed in norm["seeds"]
    ]
    requests = [
        RunRequest.from_setting(
            workload, settings[setting_name], scale=norm["scale"],
            config=config, seed=seed,
        )
        for workload, setting_name, seed in cells
    ]
    runner = executor if executor is not None else run_requests
    all_metrics = runner(requests, jobs=jobs)

    results: Dict[str, Dict[str, Dict[str, Dict]]] = {}
    for (workload, setting_name, seed), metrics in zip(cells, all_metrics):
        per_workload = results.setdefault(workload, {})
        per_setting = per_workload.setdefault(setting_name, {})
        per_setting[str(seed)] = _metrics_to_dict(metrics)

    # Derived: per-seed speedups over the first listed setting.
    speedups: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, per_setting in results.items():
        speedups[workload] = {}
        for setting_name, per_seed in per_setting.items():
            speedups[workload][setting_name] = {
                seed: per_setting[baseline_name][seed]["exec_cycles"]
                / data["exec_cycles"]
                for seed, data in per_seed.items()
            }

    return {
        "name": norm["name"],
        "spec": norm,
        "baseline": baseline_name,
        "results": results,
        "speedups": speedups,
    }


def run_batch_file(
    spec_path: str,
    report_path: Optional[str] = None,
    jobs: Optional[int] = None,
    executor=None,
) -> Dict:
    """Load a spec file, run it, and optionally write the report."""
    with open(spec_path) as fh:
        spec = json.load(fh)
    report = run_batch(spec, jobs=jobs, executor=executor)
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def summarize_report(report: Dict) -> List[List[str]]:
    """Rows of (workload, setting, mean speedup) for quick console output."""
    rows = []
    for workload, per_setting in report["speedups"].items():
        for setting_name, per_seed in per_setting.items():
            values = list(per_seed.values())
            mean = sum(values) / len(values)
            rows.append([workload, setting_name, f"{mean:.2f}x"])
    return rows
