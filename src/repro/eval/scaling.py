"""The interconnect scaling study: 8→64 cores × topology × device.

The paper's question at scale — does speculative push still win when the
network is a real NoC with distance and per-link contention? — becomes a
matrix sweep here: :func:`scaling_requests` builds one picklable
:class:`~repro.eval.parallel.RunRequest` per (core count, topology,
setting) cell over the ``scaling-halo`` workload (halo exchange sized to
the core count), and :func:`scaling_experiment` executes it through the
deterministic multiprocess executor, so ``--jobs N`` output is
byte-identical to serial.

Buffer provisioning scales with the machine: Table 1's 64 SRD entries are
4 per core at 16 cores, and :func:`scaling_config` keeps that per-core
ratio (``max(64, 4 × cores)``) so a 64-core halo (224 queues/endpoints)
fits without changing the 16-core default.  Exposed on the CLI as
``repro scale``; ``tools/bench.py --net`` wall-clocks the same matrix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.parallel import RunRequest, run_requests
from repro.eval.report import format_table
from repro.eval.runner import setting_by_name

#: The sweep the acceptance run uses: 8→64 cores.
DEFAULT_CORES: Tuple[int, ...] = (8, 16, 32, 64)
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("single-bus", "mesh")
#: One setting per stock device: the VL baseline and the SPAMeR device
#: with the paper's tuned algorithm.
DEFAULT_SETTINGS: Tuple[str, ...] = ("vl", "tuned")
#: Keep the sweep tractable by default (64 cores × 40 iterations is the
#: full halo; a 0.1 scale runs 4 iterations per cell).
DEFAULT_SCALE = 0.1


def scaling_config(
    cores: int,
    topology: str = "mesh",
    num_srds: int = 1,
    base: Optional[SystemConfig] = None,
) -> SystemConfig:
    """A :class:`SystemConfig` for one scaling cell.

    SRD buffer pools grow with the core count at Table 1's per-core ratio
    (64 entries for 16 cores = 4/core), never shrinking below the paper's
    64 — so the 16-core cell is exactly the stock configuration and a
    64-core halo's 224 queues/endpoints fit its linkTab/specBuf.
    """
    if cores < 1:
        raise ConfigError(f"need at least one core, got {cores}")
    base = base or SystemConfig()
    entries = max(64, 4 * cores)
    return base.with_overrides(
        num_cores=cores,
        topology=topology,
        num_srds=num_srds,
        prodbuf_entries=entries,
        consbuf_entries=entries,
        linktab_entries=entries,
        specbuf_entries=entries,
    )


def scaling_requests(
    cores: Sequence[int] = DEFAULT_CORES,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    settings: Sequence[str] = DEFAULT_SETTINGS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0xC0FFEE,
    num_srds: int = 1,
    verify: bool = False,
    base: Optional[SystemConfig] = None,
) -> List[RunRequest]:
    """The request matrix, in deterministic (cores, topology, setting)
    nesting order — the order rows appear in the report."""
    requests: List[RunRequest] = []
    for n in cores:
        for topology in topologies:
            config = scaling_config(n, topology, num_srds=num_srds, base=base)
            for name in settings:
                requests.append(
                    RunRequest.from_setting(
                        "scaling-halo",
                        setting_by_name(name),
                        scale=scale,
                        seed=seed,
                        config=config,
                        verify=verify,
                    )
                )
    return requests


@dataclass
class ScalingResult:
    """The executed matrix plus its rendering."""

    rows: List[Dict] = field(default_factory=list)

    def add(self, request: RunRequest, metrics) -> None:
        config = request.config
        extra = metrics.extra or {}
        self.rows.append(
            {
                "cores": config.num_cores,
                "topology": config.topology,
                "srds": config.effective_srds,
                "setting": metrics.setting,
                "cycles": metrics.exec_cycles,
                "messages": metrics.messages_delivered,
                "bus_util": round(
                    metrics.bus_busy_cycles / metrics.exec_cycles, 6
                )
                if metrics.exec_cycles
                else 0.0,
                "net_util": extra.get("net_utilization", 0.0),
                "net_wait": extra.get("net_wait_cycles", 0),
            }
        )

    # -------------------------------------------------------------- speedups
    def _baseline_cycles(self, cores: int, topology: str) -> Optional[int]:
        for row in self.rows:
            if (
                row["cores"] == cores
                and row["topology"] == topology
                and row["setting"].startswith("VL")
            ):
                return row["cycles"]
        return None

    def speedup(self, row: Dict) -> Optional[float]:
        base = self._baseline_cycles(row["cores"], row["topology"])
        if base is None or not row["cycles"]:
            return None
        return base / row["cycles"]

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        """The deterministic report table, matrix order."""
        table_rows = []
        for row in self.rows:
            speedup = self.speedup(row)
            table_rows.append(
                [
                    row["cores"],
                    row["topology"],
                    row["srds"],
                    row["setting"],
                    row["cycles"],
                    f"{speedup:.2f}x" if speedup is not None else "-",
                    row["messages"],
                    f"{row['bus_util']:.3f}",
                    f"{row['net_util']:.3f}" if row["net_util"] else "-",
                    row["net_wait"] if row["net_wait"] else "-",
                ]
            )
        return format_table(
            [
                "cores", "topology", "srds", "setting", "cycles",
                "speedup", "messages", "bus util", "net util", "net wait",
            ],
            table_rows,
            title="Scaling study: halo exchange, cores x topology x device",
        )

    def to_json(self) -> str:
        """Machine-readable record (sorted keys, deterministic)."""
        doc = []
        for row in self.rows:
            entry = dict(row)
            speedup = self.speedup(row)
            entry["speedup"] = round(speedup, 6) if speedup is not None else None
            doc.append(entry)
        return json.dumps(doc, indent=2, sort_keys=True)


def scaling_experiment(
    cores: Sequence[int] = DEFAULT_CORES,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    settings: Sequence[str] = DEFAULT_SETTINGS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0xC0FFEE,
    num_srds: int = 1,
    verify: bool = False,
    jobs: Optional[int] = None,
    base: Optional[SystemConfig] = None,
) -> ScalingResult:
    """Execute the scaling matrix; bit-identical across ``jobs`` values."""
    requests = scaling_requests(
        cores=cores,
        topologies=topologies,
        settings=settings,
        scale=scale,
        seed=seed,
        num_srds=num_srds,
        verify=verify,
        base=base,
    )
    outcomes = run_requests(requests, jobs=jobs)
    result = ScalingResult()
    for request, metrics in zip(requests, outcomes):
        result.add(request, metrics)
    return result
