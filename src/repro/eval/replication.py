"""Multi-seed replication: mean speedups with confidence intervals.

The paper reports single gem5 runs; a simulation-based reproduction can do
better by replicating every (workload, setting) cell across seeds and
reporting dispersion.  :func:`replicated_comparison` runs the Figure 8 grid
per seed and aggregates speedups; the integration bench asserts that the
headline geomeans are stable across seeds (tight confidence intervals), so
the reproduced shapes are not one-seed accidents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.experiments import ComparisonResult, comparison_experiment
from repro.eval.runner import Setting, standard_settings
from repro.sim.stats import geometric_mean

#: Student-t critical values (two-sided, 95%) for small sample sizes.
_T95 = {1: 12.71, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
        8: 2.306, 9: 2.262, 10: 2.228}


@dataclass(frozen=True)
class ReplicatedStat:
    """Mean ± half-width of a 95% confidence interval over seeds."""

    mean: float
    stddev: float
    ci95_half_width: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def high(self) -> float:
        return self.mean + self.ci95_half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.samples})"


def _stat(values: Sequence[float]) -> ReplicatedStat:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return ReplicatedStat(mean, 0.0, 0.0, n)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    sd = math.sqrt(var)
    t = _T95.get(n - 1, 1.96)
    return ReplicatedStat(mean, sd, t * sd / math.sqrt(n), n)


@dataclass
class ReplicatedComparison:
    """Speedup statistics per workload × setting, plus geomean statistics."""

    settings: List[str]
    #: speedups[workload][setting] -> ReplicatedStat
    speedups: Dict[str, Dict[str, ReplicatedStat]]
    #: geomeans[setting] -> ReplicatedStat (geomean computed per seed first)
    geomeans: Dict[str, ReplicatedStat]


def replicated_comparison(
    seeds: Sequence[int],
    workloads: Optional[List[str]] = None,
    settings: Optional[List[Setting]] = None,
    scale: float = 0.25,
    config: Optional[SystemConfig] = None,
    jobs: Optional[int] = None,
) -> ReplicatedComparison:
    """Run the comparison grid once per seed and aggregate speedups.

    ``jobs`` flattens the whole seed × workload × setting cube into one
    request list before fanning out, so parallelism is not bounded by the
    size of a single seed's grid; per-seed grids are reassembled from the
    submission-order results and match serial runs bit for bit.
    """
    if not seeds:
        raise ConfigError("replication needs at least one seed")
    settings = settings or standard_settings()
    labels = [s.label for s in settings]

    per_seed_speedups: List[Dict[str, Dict[str, float]]] = []
    if jobs is not None:
        from repro.eval.parallel import RunRequest, run_requests
        from repro.workloads.registry import workload_names

        names = workloads or workload_names()
        cube = [
            (seed, name, setting)
            for seed in seeds
            for name in names
            for setting in settings
        ]
        metrics = run_requests(
            [
                RunRequest.from_setting(
                    name, setting, scale=scale, config=config, seed=seed
                )
                for seed, name, setting in cube
            ],
            jobs=jobs,
        )
        grids: Dict[int, ComparisonResult] = {}
        for (seed, name, setting), m in zip(cube, metrics):
            grid = grids.setdefault(seed, ComparisonResult(settings=labels))
            grid.metrics.setdefault(name, {})[setting.label] = m
        per_seed_speedups = [grids[seed].speedups() for seed in seeds]
    else:
        for seed in seeds:
            grid = comparison_experiment(
                workloads=workloads, settings=settings, scale=scale,
                config=config, seed=seed,
            )
            per_seed_speedups.append(grid.speedups())

    workload_names_ = list(per_seed_speedups[0].keys())
    speedups: Dict[str, Dict[str, ReplicatedStat]] = {}
    for w in workload_names_:
        speedups[w] = {}
        for label in labels:
            samples = [sp[w][label] for sp in per_seed_speedups]
            speedups[w][label] = _stat(samples)

    geomeans: Dict[str, ReplicatedStat] = {}
    for label in labels:
        per_seed_geo = [
            geometric_mean([sp[w][label] for w in workload_names_])
            for sp in per_seed_speedups
        ]
        geomeans[label] = _stat(per_seed_geo)

    return ReplicatedComparison(settings=labels, speedups=speedups,
                                geomeans=geomeans)
