"""Experiment drivers: one function per table and figure of the paper.

Each driver runs the necessary simulations and returns structured results;
``render_*`` helpers print the same rows/series the paper reports.  The
``benchmarks/`` harness wraps these drivers in pytest-benchmark targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.eval.metrics import RunMetrics
from repro.eval.report import format_pct, format_speedup, format_table
from repro.eval.runner import (
    Setting,
    run_workload,
    run_workload_traced,
    standard_settings,
)
from repro.sim.stats import geometric_mean
from repro.sim.trace import Transaction
from repro.workloads.registry import WORKLOAD_CLASSES, make_workload, workload_names


# --------------------------------------------------------------------- Table 1
def table1(config: Optional[SystemConfig] = None) -> Dict[str, str]:
    """Table 1: the simulated hardware configuration."""
    return (config or DEFAULT_CONFIG).table1_rows()


def render_table1(config: Optional[SystemConfig] = None) -> str:
    rows = table1(config)
    return format_table(
        ["component", "configuration"],
        list(rows.items()),
        title="Table 1: gem5 Simulator Hardware Configuration (reproduced)",
    )


# --------------------------------------------------------------------- Table 2
def table2() -> List[Tuple[str, str, str]]:
    """Table 2: benchmark name, description, (M:N)×k topology."""
    rows = []
    for cls in WORKLOAD_CLASSES:
        w = cls()
        topo = "+".join(spec.label() for spec in w.topology())
        rows.append((w.name, w.description, topo))
    return rows


def render_table2() -> str:
    return format_table(
        ["benchmark", "description", "(#prod:#cons) x #queues"],
        table2(),
        title="Table 2: Benchmarks (reproduced)",
    )


# ---------------------------------------------------------------- Figures 8-10
@dataclass
class ComparisonResult:
    """Everything Figures 8, 9, 10a and 10b are drawn from."""

    settings: List[str]
    #: metrics[workload][setting_label]
    metrics: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    # -- Figure 8 -----------------------------------------------------------------
    def speedups(self) -> Dict[str, Dict[str, float]]:
        baseline = self.settings[0]
        return {
            w: {s: ms[baseline].exec_cycles / ms[s].exec_cycles for s in self.settings}
            for w, ms in self.metrics.items()
        }

    def geomean_speedups(self) -> Dict[str, float]:
        sp = self.speedups()
        return {
            s: geometric_mean([sp[w][s] for w in sp]) for s in self.settings
        }

    # -- Figure 9 -----------------------------------------------------------------
    def breakdown(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """(avg empty cycles, avg non-empty cycles) per workload × setting."""
        out: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for w, ms in self.metrics.items():
            out[w] = {}
            for s in self.settings:
                m = ms[s]
                out[w][s] = (m.avg_line_empty, m.exec_cycles - m.avg_line_empty)
        return out

    # -- Figure 10 ----------------------------------------------------------------
    def failure_rates(self) -> Dict[str, Dict[str, float]]:
        return {
            w: {s: ms[s].failure_rate for s in self.settings}
            for w, ms in self.metrics.items()
        }

    def bus_utilizations(self) -> Dict[str, Dict[str, float]]:
        return {
            w: {s: ms[s].bus_utilization for s in self.settings}
            for w, ms in self.metrics.items()
        }


def comparison_experiment(
    workloads: Optional[List[str]] = None,
    settings: Optional[List[Setting]] = None,
    scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    seed: int = 0xC0FFEE,
    jobs: Optional[int] = None,
) -> ComparisonResult:
    """Run the Figure 8/9/10 grid: every workload under every setting.

    ``jobs`` fans the grid's independent cells across worker processes
    (0 = all cores; default serial) with bit-identical metrics — see
    :mod:`repro.eval.parallel`.
    """
    from repro.eval.parallel import RunRequest, run_requests

    settings = settings or standard_settings()
    names = workloads or workload_names()
    cells = [(name, setting) for name in names for setting in settings]
    metrics = run_requests(
        [
            RunRequest.from_setting(
                name, setting, scale=scale, config=config, seed=seed
            )
            for name, setting in cells
        ],
        jobs=jobs,
    )
    result = ComparisonResult(settings=[s.label for s in settings])
    for (name, setting), m in zip(cells, metrics):
        result.metrics.setdefault(name, {})[setting.label] = m
    return result


def render_fig8(result: ComparisonResult) -> str:
    sp = result.speedups()
    rows = [
        [w] + [format_speedup(sp[w][s]) for s in result.settings]
        for w in sp
    ]
    rows.append(
        ["geomean"]
        + [format_speedup(v) for v in result.geomean_speedups().values()]
    )
    return format_table(
        ["benchmark"] + result.settings,
        rows,
        title="Figure 8: speedup over Virtual-Link (higher is better)",
    )


def render_fig9(result: ComparisonResult) -> str:
    br = result.breakdown()
    rows = []
    for w, per_setting in br.items():
        for s, (empty, nonempty) in per_setting.items():
            rows.append([w, s, f"{empty:.0f}", f"{nonempty:.0f}"])
    return format_table(
        ["benchmark", "setting", "avg empty cycles", "non-empty cycles"],
        rows,
        title="Figure 9: execution-time breakdown (consumer cacheline empty vs not)",
    )


def render_fig10a(result: ComparisonResult) -> str:
    fr = result.failure_rates()
    rows = [
        [w] + [format_pct(fr[w][s]) for s in result.settings] for w in fr
    ]
    return format_table(
        ["benchmark"] + result.settings,
        rows,
        title="Figure 10a: push failure rate (lower is better)",
    )


def render_fig10b(result: ComparisonResult) -> str:
    bu = result.bus_utilizations()
    rows = [
        [w] + [format_pct(bu[w][s]) for s in result.settings] for w in bu
    ]
    return format_table(
        ["benchmark"] + result.settings,
        rows,
        title="Figure 10b: bus utilization (lower is more efficient)",
    )


# --------------------------------------------------------------------- Figure 7
@dataclass
class TraceResult:
    """The Figure 7 transaction trace and its derived analysis."""

    transactions: List[Transaction]
    exec_cycles: int

    @property
    def speculative_count(self) -> int:
        return sum(1 for t in self.transactions if t.speculative)

    @property
    def request_bound_count(self) -> int:
        """Transactions the paper highlights dark: gated by the request."""
        return sum(1 for t in self.transactions if t.request_bound)

    @property
    def total_potential_saving(self) -> int:
        return sum(t.potential_saving for t in self.transactions)


def trace_experiment(
    setting: Optional[Setting] = None,
    scale: float = 0.25,
    seed: int = 0xC0FFEE,
) -> TraceResult:
    """Figure 7: trace incast configured with a single producer thread and a
    single consumer cacheline on one SQI.

    The default setting is the VL baseline — the paper's trace shows the
    on-demand transactions whose fills are *hindered by the request arrival*
    and quantifies the saving a speculative push could have realised.
    """
    from repro.workloads.ember import Incast

    setting = setting or standard_settings()[0]

    class SingleIncast(Incast):
        """incast with 1 producer, 1 consumer cacheline, single SQI."""

        PRODUCERS = 1
        MASTER_LINES = 1

    # Temporarily register the variant so the runner can build it.
    import repro.workloads.registry as registry

    original = registry._REGISTRY.get("incast")
    registry._REGISTRY["incast"] = SingleIncast
    try:
        metrics, system = run_workload_traced("incast", setting, scale=scale, seed=seed)
    finally:
        registry._REGISTRY["incast"] = original
    txns = [t for t in system.trace.transactions() if t.line_fill is not None]
    return TraceResult(transactions=txns, exec_cycles=metrics.exec_cycles)


# ------------------------------------------------------------------- inlining
def inlining_experiment(
    scale: float = 0.5, seed: int = 0xC0FFEE
) -> Dict[str, float]:
    """Section 3.4/4.3: speedup of library inlining on the VL baseline.

    The paper measured the macro-inlining of hot queue functions to be worth
    about 1.02× on average; this runs every benchmark with and without the
    per-call overhead and reports per-benchmark and geomean speedups.
    """
    vl = standard_settings()[0]
    inlined = DEFAULT_CONFIG.with_overrides(inline_library=True)
    outlined = DEFAULT_CONFIG.with_overrides(inline_library=False)
    out: Dict[str, float] = {}
    for name in workload_names():
        fast = run_workload(name, vl, scale=scale, config=inlined, seed=seed)
        slow = run_workload(name, vl, scale=scale, config=outlined, seed=seed)
        out[name] = slow.exec_cycles / fast.exec_cycles
    out["geomean"] = geometric_mean([v for k, v in out.items() if k != "geomean"])
    return out
