"""The open-system load sweep: tail latency vs offered load.

A closed batch can only report batch runtime; the questions an
interconnect paper's readers actually ask — *what does p99 response time
look like at 80% load?  where does the system saturate?* — need requests
arriving over time.  This experiment drives an open-capable workload
(:mod:`repro.workloads.arrival`) from light load to past saturation and
reports the per-request sojourn percentiles at every point, per device
flavor and per topology.

Two phases, both through the deterministic multiprocess executor so the
whole report is byte-identical across ``--jobs``:

1. **Calibrate** — run the workload as a closed batch per (topology,
   setting) cell.  The batch's ``requests / exec_cycles`` is that cell's
   maximum service rate: the fastest the system can drain requests when
   they are all already there.
2. **Sweep** — re-run the workload under an open arrival process at
   offered load ``rho = offered rate / service rate`` for each requested
   rho, splitting the aggregate rate evenly across the workload's
   sessions.  Below saturation (rho < 1) sojourn times are flat-ish;
   past it (rho > 1) the arrival backlog grows without bound and the
   tail explodes — the classic hockey stick, now measurable per device.

Exposed as ``repro load`` on the CLI; ``tools/bench.py --load`` wall-clocks
the same matrix and records requests/sec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.parallel import RunRequest, run_requests
from repro.eval.report import format_table
from repro.eval.runner import setting_by_name
from repro.workloads.arrival import ArrivalSpec, arrival_names
from repro.workloads.registry import make_workload

#: Offered-load points: light, moderate, heavy, past saturation.
DEFAULT_RHOS: Tuple[float, ...] = (0.2, 0.5, 0.8, 1.1)
DEFAULT_SETTINGS: Tuple[str, ...] = ("vl", "tuned")
#: The topology axis (torus included: same grid as mesh plus wraparound).
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("single-bus", "mesh", "torus")
DEFAULT_SCALE = 0.25


def load_config(
    topology: str, base: Optional[SystemConfig] = None
) -> SystemConfig:
    """The :class:`SystemConfig` for one topology column of the sweep."""
    base = base or SystemConfig()
    if base.topology == topology:
        return base
    return base.with_overrides(topology=topology)


def arrival_spec_for(
    arrival: str, rate: float, churn: float = 0.0
) -> ArrivalSpec:
    """A picklable spec for *arrival* running at mean *rate* req/cycle.

    Rate-parameterized processes take the rate directly; the diurnal ramp
    is anchored so its mean sits near *rate* (half to double).
    """
    params: Dict[str, float] = {}
    if arrival in ("poisson", "bursty"):
        params["rate"] = rate
    elif arrival == "ramp":
        params["rate_lo"] = rate * 0.5
        params["rate_hi"] = rate * 2.0
    elif arrival == "closed":
        raise ConfigError(
            "the load sweep needs an open arrival process; 'closed' has no "
            "rate to sweep"
        )
    else:
        raise ConfigError(
            f"unknown arrival process {arrival!r} for the load sweep; "
            f"registered: {arrival_names()}"
        )
    if churn:
        params["churn"] = churn
    return ArrivalSpec.make(arrival, **params)


@dataclass
class LoadResult:
    """The executed sweep plus its rendering."""

    workload: str = ""
    arrival: str = ""
    #: Calibrated closed-batch service rates, one per (topology, setting).
    calibration: List[Dict] = field(default_factory=list)
    rows: List[Dict] = field(default_factory=list)

    def add_calibration(
        self, topology: str, setting: str, requests: int, cycles: int
    ) -> None:
        self.calibration.append(
            {
                "topology": topology,
                "setting": setting,
                "requests": requests,
                "cycles": cycles,
                "service_rate": round(requests / cycles, 9) if cycles else 0.0,
            }
        )

    def add(
        self,
        topology: str,
        setting: str,
        rho: float,
        rate: float,
        metrics,
    ) -> None:
        extra = metrics.extra or {}
        completed = extra.get("request_count", 0)
        cycles = metrics.exec_cycles
        self.rows.append(
            {
                "topology": topology,
                "setting": setting,
                "rho": rho,
                "rate": round(rate, 9),
                "requests": completed,
                "cycles": cycles,
                "throughput": round(completed / cycles, 9) if cycles else 0.0,
                "mean": extra.get("request_mean", 0.0),
                "p50": extra.get("request_p50", 0.0),
                "p99": extra.get("request_p99", 0.0),
                "p999": extra.get("request_p999", 0.0),
            }
        )

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        """The deterministic p50/p99/p999 table, sweep order."""
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row["topology"],
                    row["setting"],
                    f"{row['rho']:g}",
                    f"{row['rate']:.2e}",
                    row["requests"],
                    row["cycles"],
                    f"{row['mean']:.0f}",
                    f"{row['p50']:.0f}",
                    f"{row['p99']:.0f}",
                    f"{row['p999']:.0f}",
                ]
            )
        return format_table(
            [
                "topology", "setting", "rho", "rate", "requests",
                "cycles", "mean", "p50", "p99", "p999",
            ],
            table_rows,
            title=(
                f"Load sweep: {self.workload} under {self.arrival} arrivals "
                "(sojourn cycles)"
            ),
        )

    def to_json(self) -> str:
        """Machine-readable record (sorted keys, deterministic)."""
        doc = {
            "workload": self.workload,
            "arrival": self.arrival,
            "calibration": self.calibration,
            "rows": self.rows,
        }
        return json.dumps(doc, indent=2, sort_keys=True)


def load_experiment(
    workload: str = "incast",
    arrival: str = "poisson",
    settings: Sequence[str] = DEFAULT_SETTINGS,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    rhos: Sequence[float] = DEFAULT_RHOS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0xC0FFEE,
    churn: float = 0.0,
    jobs: Optional[int] = None,
    base: Optional[SystemConfig] = None,
    executor=None,
) -> LoadResult:
    """Calibrate then sweep; bit-identical across ``jobs`` values.

    *executor* is any ``run_requests``-shaped callable (e.g. a
    :class:`~repro.serve.executor.ServeExecutor`): both phases route
    through it, so a serve daemon's warm pool runs the sweep and its
    result cache makes every repeated cell — including the calibration
    runs a later sweep repeats — free.
    """
    runner = executor if executor is not None else run_requests
    probe = make_workload(workload, scale=scale)
    if not probe.open_capable:
        raise ConfigError(
            f"workload {workload!r} is closed-only (dependency-driven); "
            "open-capable workloads: ping-pong, incast, pipeline, firewall, "
            "FIR"
        )
    quotas = probe.session_quotas()
    total_requests = sum(quotas.values())
    n_sessions = len(quotas)

    cells = [
        (topology, setting_name)
        for topology in topologies
        for setting_name in settings
    ]

    # Phase 1: closed-batch calibration, one run per cell.
    calib_requests = [
        RunRequest.from_setting(
            workload,
            setting_by_name(setting_name),
            scale=scale,
            seed=seed,
            config=load_config(topology, base=base),
        )
        for topology, setting_name in cells
    ]
    calib_metrics = runner(calib_requests, jobs=jobs)

    result = LoadResult(workload=workload, arrival=arrival)
    service_rates: Dict[Tuple[str, str], float] = {}
    for (topology, setting_name), metrics in zip(cells, calib_metrics):
        cycles = metrics.exec_cycles
        service_rates[(topology, setting_name)] = (
            total_requests / cycles if cycles else 0.0
        )
        result.add_calibration(
            topology, metrics.setting, total_requests, cycles
        )

    # Phase 2: the open sweep — (cell × rho) grid in deterministic order.
    sweep: List[Tuple[str, str, float, float]] = []
    sweep_requests: List[RunRequest] = []
    for topology, setting_name in cells:
        service_rate = service_rates[(topology, setting_name)]
        for rho in rhos:
            session_rate = rho * service_rate / n_sessions
            sweep.append((topology, setting_name, rho, session_rate))
            sweep_requests.append(
                RunRequest.from_setting(
                    workload,
                    setting_by_name(setting_name),
                    scale=scale,
                    seed=seed,
                    config=load_config(topology, base=base),
                    arrival=arrival_spec_for(arrival, session_rate, churn),
                )
            )
    sweep_metrics = runner(sweep_requests, jobs=jobs)
    for (topology, setting_name, rho, session_rate), metrics in zip(
        sweep, sweep_metrics
    ):
        result.add(topology, metrics.setting, rho, session_rate, metrics)
    return result
