"""Plain-text rendering of tables and figure data.

The benches print the same rows/series the paper reports; these helpers
format aligned text tables so `pytest benchmarks/ --benchmark-only -s`
output reads like the paper's tables and figure captions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_pct(x: float) -> str:
    return f"{100.0 * x:.1f}%"


def format_speedup(x: float) -> str:
    return f"{x:.2f}x"


def ascii_bar(value: float, scale: float = 20.0, maximum: float = 3.0) -> str:
    """A tiny horizontal bar for figure-like console output."""
    clamped = max(0.0, min(value, maximum))
    return "#" * int(round(clamped * scale / maximum))


def format_trace_rows(transactions, start: int, end: int) -> str:
    """Render a Figure 7 style listing of transactions in a time window."""
    lines = [
        f"{'txn':>5s} {'kind':>11s} {'data_arr':>9s} {'req_arr':>9s} "
        f"{'vacate':>9s} {'fill':>9s} {'1st_use':>9s} {'saving':>7s}"
    ]
    for t in transactions:
        if t.line_fill is None or not (start <= t.line_fill < end):
            continue
        kind = "speculative" if t.speculative else (
            "req-bound" if t.request_bound else "on-demand"
        )
        fmt = lambda v: f"{v:9d}" if v is not None else "        -"  # noqa: E731
        lines.append(
            f"{t.transaction_id:5d} {kind:>11s} {fmt(t.data_arrive)} "
            f"{fmt(t.request_arrive)} {fmt(t.line_vacate)} {fmt(t.line_fill)} "
            f"{fmt(t.first_use)} {t.potential_saving:7d}"
        )
    return "\n".join(lines)


def dict_table(title: str, data: Dict[str, object]) -> str:
    """Two-column key/value table (Table 1 style)."""
    return format_table(["field", "value"], list(data.items()), title=title)


def format_accuracy_table(accuracies: Iterable[object]) -> str:
    """Push precision/recall table, one row per workload × setting.

    Accepts :class:`~repro.obs.accuracy.SpeculationAccuracy` objects or the
    plain dicts :meth:`~repro.obs.accuracy.SpeculationAccuracy.as_dict`
    exports (the obs runner hands cells across process boundaries as
    dicts).
    """
    rows = []
    for acc in accuracies:
        data = acc.as_dict() if hasattr(acc, "as_dict") else acc
        rows.append(
            [
                data["workload"],
                data["setting"],
                data["spec_pushes"],
                data["spec_hits"],
                format_pct(data["precision"]),
                format_pct(data["recall"]),
                data["wasted_push_bytes"],
            ]
        )
    return format_table(
        [
            "workload", "setting", "spec pushes", "hits",
            "precision", "recall", "wasted bytes",
        ],
        rows,
        title="speculation accuracy",
    )


def format_stage_table(title: str, stage_latency: Dict[str, Dict[str, float]]) -> str:
    """Stage-latency percentile table keyed by lifecycle edge."""
    rows = [
        [
            edge,
            int(row["count"]),
            f"{row['mean']:.1f}",
            f"{row.get('p50', 0.0):.0f}",
            f"{row.get('p90', 0.0):.0f}",
            f"{row.get('p99', 0.0):.0f}",
        ]
        for edge, row in sorted(stage_latency.items())
    ]
    return format_table(
        ["stage", "n", "mean", "p50", "p90", "p99"], rows, title=title
    )
