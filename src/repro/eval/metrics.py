"""Run metrics: everything the paper's figures report, from one simulation.

:class:`RunMetrics` is collected by :mod:`repro.eval.runner` after a
workload completes and feeds every figure:

* ``exec_cycles``                → Figure 8 (speedups) and Figure 11 x-axis;
* ``avg_line_empty/valid``       → Figure 9 (execution-time breakdown);
* ``push_attempts/failures``     → Figure 10a (failure rates);
* ``bus_utilization``            → Figure 10b;
* ``push_energy``                → Figure 11 y-axis (dynamic SRD push energy,
  proportional to push attempts — each attempt drives the buffers, the
  mapping pipeline and a network packet whether or not it hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.units import cycles_to_ms


#: Relative energy cost of one SRD push attempt (arbitrary unit; every
#: figure normalizes to the VL baseline so only ratios matter).
ENERGY_PER_PUSH = 1.0


@dataclass(frozen=True)
class RunMetrics:
    """Everything measured in one workload × setting simulation."""

    workload: str
    setting: str
    exec_cycles: int
    messages_delivered: int
    messages_produced: int

    push_attempts: int
    push_failures: int
    ondemand_pushes: int
    ondemand_failures: int
    spec_pushes: int
    spec_failures: int

    bus_busy_cycles: int
    bus_packets: int
    request_packets: int

    avg_line_empty: float
    avg_line_valid: float

    #: End-to-end message latency samples (push call -> pop return).
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p99: float = 0.0

    extra: Dict[str, int] = field(default_factory=dict)

    # -- derived -----------------------------------------------------------------
    @property
    def exec_ms(self) -> float:
        return cycles_to_ms(self.exec_cycles)

    @property
    def failure_rate(self) -> float:
        """Failed pushes out of all pushes (Figure 10a)."""
        return self.push_failures / self.push_attempts if self.push_attempts else 0.0

    @property
    def spec_failure_rate(self) -> float:
        return self.spec_failures / self.spec_pushes if self.spec_pushes else 0.0

    @property
    def bus_utilization(self) -> float:
        """Fraction of cycles with a packet on the network (Figure 10b)."""
        if self.exec_cycles <= 0:
            return 0.0
        return min(1.0, self.bus_busy_cycles / self.exec_cycles)

    @property
    def push_energy(self) -> float:
        """Dynamic energy of SRD pushes (Figure 11 y-axis, arbitrary unit)."""
        return ENERGY_PER_PUSH * self.push_attempts

    @property
    def push_frequency(self) -> float:
        """Push attempts per cycle — the Section 4.5 power multiplier."""
        return self.push_attempts / self.exec_cycles if self.exec_cycles else 0.0

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """Execution-time speedup of *self* relative to *baseline*."""
        if self.exec_cycles <= 0:
            raise ValueError("cannot compute speedup of a zero-length run")
        return baseline.exec_cycles / self.exec_cycles

    def normalized_delay(self, baseline: "RunMetrics") -> float:
        """Figure 11 x-axis: execution time normalized to the baseline."""
        return self.exec_cycles / baseline.exec_cycles

    def normalized_energy(self, baseline: "RunMetrics") -> float:
        """Figure 11 y-axis: push energy normalized to the baseline."""
        if baseline.push_energy <= 0:
            raise ValueError("baseline consumed no push energy")
        return self.push_energy / baseline.push_energy
