"""Run metrics: everything the paper's figures report, from one simulation.

:class:`RunMetrics` is collected by :mod:`repro.eval.runner` after a
workload completes and feeds every figure:

* ``exec_cycles``                → Figure 8 (speedups) and Figure 11 x-axis;
* ``avg_line_empty/valid``       → Figure 9 (execution-time breakdown);
* ``push_attempts/failures``     → Figure 10a (failure rates);
* ``bus_utilization``            → Figure 10b;
* ``push_energy``                → Figure 11 y-axis (dynamic SRD push energy,
  proportional to push attempts — each attempt drives the buffers, the
  mapping pipeline and a network packet whether or not it hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.units import cycles_to_ms


#: Relative energy cost of one SRD push attempt (arbitrary unit; every
#: figure normalizes to the VL baseline so only ratios matter).
ENERGY_PER_PUSH = 1.0


@dataclass(frozen=True)
class RunMetrics:
    """Everything measured in one workload × setting simulation."""

    workload: str
    setting: str
    exec_cycles: int
    messages_delivered: int
    messages_produced: int

    push_attempts: int
    push_failures: int
    ondemand_pushes: int
    ondemand_failures: int
    spec_pushes: int
    spec_failures: int

    bus_busy_cycles: int
    bus_packets: int
    request_packets: int

    avg_line_empty: float
    avg_line_valid: float

    #: End-to-end message latency samples (push call -> pop return).
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p99: float = 0.0

    extra: Dict[str, int] = field(default_factory=dict)

    # -- derived -----------------------------------------------------------------
    @property
    def exec_ms(self) -> float:
        return cycles_to_ms(self.exec_cycles)

    @property
    def failure_rate(self) -> float:
        """Failed pushes out of all pushes (Figure 10a)."""
        return self.push_failures / self.push_attempts if self.push_attempts else 0.0

    @property
    def spec_failure_rate(self) -> float:
        return self.spec_failures / self.spec_pushes if self.spec_pushes else 0.0

    @property
    def bus_utilization(self) -> float:
        """Fraction of cycles with a packet on the network (Figure 10b)."""
        if self.exec_cycles <= 0:
            return 0.0
        return min(1.0, self.bus_busy_cycles / self.exec_cycles)

    @property
    def push_energy(self) -> float:
        """Dynamic energy of SRD pushes (Figure 11 y-axis, arbitrary unit)."""
        return ENERGY_PER_PUSH * self.push_attempts

    @property
    def spec_hits(self) -> int:
        """Speculative pushes that landed on an EMPTY line."""
        return self.spec_pushes - self.spec_failures

    @property
    def push_precision(self) -> float:
        """Of the speculative pushes sent, the fraction that landed."""
        return self.spec_hits / self.spec_pushes if self.spec_pushes else 0.0

    @property
    def push_recall(self) -> float:
        """Of the messages delivered, the fraction that arrived
        speculatively (the rest waited on an on-demand request)."""
        if not self.messages_delivered:
            return 0.0
        return min(1.0, self.spec_hits / self.messages_delivered)

    @property
    def wasted_push_bytes(self) -> int:
        """Bus bytes burned by failed speculative pushes (one thrown-away
        cacheline per miss)."""
        from repro.units import CACHELINE_BYTES

        return self.spec_failures * CACHELINE_BYTES

    @property
    def push_frequency(self) -> float:
        """Push attempts per cycle — the Section 4.5 power multiplier."""
        return self.push_attempts / self.exec_cycles if self.exec_cycles else 0.0

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """Execution-time speedup of *self* relative to *baseline*."""
        if self.exec_cycles <= 0:
            raise ValueError("cannot compute speedup of a zero-length run")
        return baseline.exec_cycles / self.exec_cycles

    def normalized_delay(self, baseline: "RunMetrics") -> float:
        """Figure 11 x-axis: execution time normalized to the baseline."""
        return self.exec_cycles / baseline.exec_cycles

    def normalized_energy(self, baseline: "RunMetrics") -> float:
        """Figure 11 y-axis: push energy normalized to the baseline."""
        if baseline.push_energy <= 0:
            raise ValueError("baseline consumed no push energy")
        return self.push_energy / baseline.push_energy


class StageLatencyHistogram:
    """Per-stage transaction latency histograms, fed by the hook bus.

    Subscribes to :class:`~repro.sim.hooks.TransactionHook` and, at each
    terminal transition, folds the record's
    :meth:`~repro.sim.transaction.TransactionRecord.stage_durations` into
    per-edge histograms (``pushed->mapped``, ``stashed->responded``, …).
    Attach one before a run (the CLI's ``--hook-stats``)::

        hist = StageLatencyHistogram()
        hist.attach(system.hooks)
        ...  # run
        print(hist.render())
    """

    #: States after which a message/request record is complete.
    TERMINAL = ("retired", "matched", "coalesced", "dropped")

    def __init__(self, bucket_width: int = 16) -> None:
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.bucket_width = bucket_width
        #: stage label -> {bucket index -> count}
        self.histograms: Dict[str, Dict[int, int]] = {}
        #: stage label -> (count, total cycles) for mean reporting.
        self.totals: Dict[str, Tuple[int, int]] = {}
        self._subscription = None

    # ------------------------------------------------------------------ wiring
    def attach(self, bus) -> "StageLatencyHistogram":
        """Subscribe to *bus*; returns self for chaining."""
        from repro.sim.hooks import TransactionHook

        if self._subscription is None:
            self._subscription = bus.subscribe(TransactionHook, self._on_hook)
        return self

    def detach(self, bus) -> None:
        if self._subscription is not None:
            bus.unsubscribe(self._subscription)
            self._subscription = None

    def _on_hook(self, event) -> None:
        if event.record is None or event.state.value not in self.TERMINAL:
            return
        self.add_record(event.record)

    # --------------------------------------------------------------- recording
    def add_record(self, record) -> None:
        """Fold one completed transaction record into the histograms."""
        for stage, cycles in record.stage_durations():
            bucket = max(0, int(cycles)) // self.bucket_width
            per_stage = self.histograms.setdefault(stage, {})
            per_stage[bucket] = per_stage.get(bucket, 0) + 1
            count, total = self.totals.get(stage, (0, 0))
            self.totals[stage] = (count + 1, total + max(0, int(cycles)))

    # ----------------------------------------------------------------- queries
    def stages(self) -> List[str]:
        return sorted(self.histograms)

    def mean(self, stage: str) -> Optional[float]:
        count, total = self.totals.get(stage, (0, 0))
        return total / count if count else None

    def render(self, max_bar: int = 40) -> str:
        """Plain-text histograms, one block per stage (CLI ``--hook-stats``)."""
        if not self.histograms:
            return "no transactions observed (is tracing enabled?)"
        lines: List[str] = []
        for stage in self.stages():
            count, total = self.totals[stage]
            mean = total / count if count else 0.0
            lines.append(f"{stage}  (n={count}, mean={mean:.1f} cycles)")
            buckets = self.histograms[stage]
            peak = max(buckets.values())
            for bucket in sorted(buckets):
                lo = bucket * self.bucket_width
                hi = lo + self.bucket_width - 1
                n = buckets[bucket]
                bar = "#" * max(1, round(n / peak * max_bar))
                lines.append(f"  [{lo:>6}-{hi:>6}] {n:>6} {bar}")
            lines.append("")
        return "\n".join(lines).rstrip()
