"""The coherence-network model shared by cores and the routing device.

Both Virtual-Link and SPAMeR reuse the existing hierarchical coherence
network rather than a dedicated queue network (Section 2), so every queue
packet — consumer *request* (vl_fetch), producer *data* (vl_push) and
routing-device *stash* — competes for the same interconnect.

The *fabric* underneath is pluggable (:mod:`repro.net`): the default
``single-bus`` topology is a single FIFO server — each packet serializes
onto the network for :attr:`SystemConfig.bus_occupancy` cycles and then
propagates for :attr:`SystemConfig.bus_latency` cycles, and utilization —
the fraction of cycles with a packet occupying the network — is exactly the
metric the paper reports in Figure 10b.  ``mesh``/``ring``/``crossbar``
topologies instead route each packet hop-by-hop through per-link servers,
so source/destination placement matters; callers pass ``src``/``dst`` node
ids obtained from :meth:`CoherenceNetwork.core_node` /
:meth:`CoherenceNetwork.srd_node`.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, TYPE_CHECKING

from repro.net.topology import build_topology
from repro.sim.event import Event
from repro.sim.stats import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment
    from repro.sim.transaction import TransactionRecord


class PacketKind(Enum):
    """Packet classes that occupy the coherence network."""

    REQUEST = "request"       # consumer vl_fetch  (core -> routing device)
    PUSH_DATA = "push_data"   # producer vl_push   (core -> routing device)
    STASH = "stash"           # data delivery      (routing device -> core)
    REGISTER = "register"     # spamer_register    (core -> routing device)
    COHERENCE = "coherence"   # MOESI snoop/data traffic (software baseline)


class CoherenceNetwork:
    """Shared interconnect with occupancy accounting.

    ``transit(kind)`` returns an event that fires when the packet has been
    delivered at the far end (serialization + propagation).  Hit/miss
    *response signals* ride the dedicated response channel and are modelled
    as pure latency (no occupancy), matching the paper's utilization metric
    which counts request/data packets only.
    """

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        self.env = env
        self.config = config
        #: Instrumentation bus; occupancy events are published per accepted
        #: packet when somebody subscribed to ``BusHook`` (None = silent).
        self.hooks = hooks
        #: The fabric model (:mod:`repro.net`): ``single-bus`` replicates
        #: the historical earliest-free-channel arithmetic bit-for-bit;
        #: NoC topologies route hop-by-hop through per-link servers.
        self.topology = build_topology(config.topology, env, config, hooks=hooks)
        #: Compatibility aliases for the shared-bus model (empty/None on
        #: NoC topologies, whose links are exposed via :meth:`links`).
        self.channels = getattr(self.topology, "channels", [])
        self.server = self.channels[0] if self.channels else None
        self.latency = config.bus_latency
        self.counters = Counter()

    def transit(
        self,
        kind: PacketKind,
        txn: Optional["TransactionRecord"] = None,
        src: int = 0,
        dst: int = 0,
    ) -> Event:
        """Send one packet from node *src* to node *dst*; event fires at
        delivery.

        On the ``single-bus`` topology *src*/*dst* are ignored (every pair
        is equidistant).  *txn* threads the packet's transaction record
        through the network layer so instrumentation can attribute
        occupancy to lifecycles; the network itself only forwards it to
        :class:`BusHook` subscribers.
        """
        self.counters.add(kind.value)
        self.counters.add("total_packets")
        delivered = self.topology.transit(kind.value, src, dst)
        if self.hooks is not None:
            from repro.sim.hooks import BusHook

            if self.hooks.wants(BusHook):
                self.hooks.publish(
                    BusHook(
                        tick=self.env.now,
                        kind=kind.value,
                        busy_cycles=self.busy_cycles,
                    )
                )
        return delivered

    def response(self, src: int = 0, dst: int = 0) -> Event:
        """Send a hit/miss response signal (latency only, no occupancy).

        Responses ride dedicated wires but still cover the src→dst
        distance; on ``single-bus`` that is the flat ``bus_latency``.
        """
        self.counters.add("responses")
        return self.env.timeout(self.topology.response_latency(src, dst))

    # -- placement ---------------------------------------------------------------
    def core_node(self, core_id: int) -> int:
        """The topology node core *core_id*'s cache controller sits on."""
        return self.topology.core_node(core_id)

    def srd_node(self, srd_index: int) -> int:
        """The topology node SRD shard *srd_index* sits on."""
        return self.topology.srd_node(srd_index)

    # -- metrics -----------------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        return self.topology.busy_cycles

    @property
    def wait_cycles(self) -> int:
        """Backpressure cycles packets spent queued at NoC links (0 on
        the shared bus, which folds queueing into busy time)."""
        return self.topology.wait_cycles

    def links(self):
        """Per-link objects on NoC topologies; ``[]`` on ``single-bus``."""
        return self.topology.links()

    def link_report(self, elapsed: int = 0):
        """Per-link utilization/backpressure rows (empty on single-bus)."""
        return self.topology.link_report(elapsed)

    def utilization(self, elapsed: int = 0) -> float:
        """Busy fraction over *elapsed* cycles across all channels/links
        (default window: current sim time)."""
        return self.topology.utilization(elapsed)

    def packets(self, kind: PacketKind) -> int:
        return self.counters.get(kind.value)

    @property
    def total_packets(self) -> int:
        return self.counters.get("total_packets")
