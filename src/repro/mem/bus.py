"""The coherence-network model shared by cores and the routing device.

Both Virtual-Link and SPAMeR reuse the existing hierarchical coherence
network rather than a dedicated queue network (Section 2), so every queue
packet — consumer *request* (vl_fetch), producer *data* (vl_push) and
routing-device *stash* — competes for the same interconnect.

The model is a single FIFO server: each packet serializes onto the network
for :attr:`SystemConfig.bus_occupancy` cycles and then propagates for
:attr:`SystemConfig.bus_latency` cycles.  Utilization — the fraction of
cycles with a packet occupying the network — is exactly the metric the paper
reports in Figure 10b.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, TYPE_CHECKING

from repro.sim.event import Event
from repro.sim.resources import FifoServer
from repro.sim.stats import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment
    from repro.sim.transaction import TransactionRecord


class PacketKind(Enum):
    """Packet classes that occupy the coherence network."""

    REQUEST = "request"       # consumer vl_fetch  (core -> routing device)
    PUSH_DATA = "push_data"   # producer vl_push   (core -> routing device)
    STASH = "stash"           # data delivery      (routing device -> core)
    REGISTER = "register"     # spamer_register    (core -> routing device)
    COHERENCE = "coherence"   # MOESI snoop/data traffic (software baseline)


class CoherenceNetwork:
    """Shared interconnect with occupancy accounting.

    ``transit(kind)`` returns an event that fires when the packet has been
    delivered at the far end (serialization + propagation).  Hit/miss
    *response signals* ride the dedicated response channel and are modelled
    as pure latency (no occupancy), matching the paper's utilization metric
    which counts request/data packets only.
    """

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        self.env = env
        self.config = config
        #: Instrumentation bus; occupancy events are published per accepted
        #: packet when somebody subscribed to ``BusHook`` (None = silent).
        self.hooks = hooks
        #: One FifoServer per parallel channel.  A single channel is the
        #: shared-bus model; several channels approximate a crossbar/NoC
        #: with independent links (packets take the earliest-free channel).
        self.channels = [
            FifoServer(env, config.bus_occupancy, name=f"coherence-network[{i}]")
            for i in range(config.bus_channels)
        ]
        self.server = self.channels[0]  # compatibility alias
        self.latency = config.bus_latency
        self.counters = Counter()

    def transit(
        self, kind: PacketKind, txn: Optional["TransactionRecord"] = None
    ) -> Event:
        """Send one packet; event fires at delivery.

        *txn* threads the packet's transaction record through the network
        layer so instrumentation can attribute occupancy to lifecycles; the
        network itself only forwards it to :class:`BusHook` subscribers.
        """
        self.counters.add(kind.value)
        self.counters.add("total_packets")
        channel = min(self.channels, key=lambda s: max(s._free_at, self.env.now))
        delivered = channel.serve(extra_delay=self.latency)
        if self.hooks is not None:
            from repro.sim.hooks import BusHook

            if self.hooks.wants(BusHook):
                self.hooks.publish(
                    BusHook(
                        tick=self.env.now,
                        kind=kind.value,
                        busy_cycles=self.busy_cycles,
                    )
                )
        return delivered

    def response(self) -> Event:
        """Send a hit/miss response signal (latency only, no occupancy)."""
        self.counters.add("responses")
        return self.env.timeout(self.latency)

    # -- metrics -----------------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        return sum(channel.busy_cycles for channel in self.channels)

    def utilization(self, elapsed: int = 0) -> float:
        """Busy fraction over *elapsed* cycles across all channels
        (default window: current sim time)."""
        window = elapsed or self.env.now
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (window * len(self.channels)))

    def packets(self, kind: PacketKind) -> int:
        return self.counters.get(kind.value)

    @property
    def total_packets(self) -> int:
        return self.counters.get("total_packets")
