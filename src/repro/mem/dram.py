"""DRAM model: fixed loaded-latency main memory behind the L2.

The evaluation's queue traffic never reaches DRAM on the fast path (that is
the whole point of keeping data "on the fast path, within the on-chip
interconnect" — Section 2), but the MOESI software-queue baseline and cold
misses do, so the substrate includes a simple fixed-latency DDR4 model with
access accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.kernel import Environment


class Dram:
    """Fixed-latency main memory."""

    def __init__(self, env: "Environment", config: "SystemConfig") -> None:
        self.env = env
        self.latency = config.dram_latency
        self.size_bytes = config.dram_bytes
        self.reads = 0
        self.writes = 0

    def read(self) -> Event:
        """One line fill from DRAM; fires after the loaded latency."""
        self.reads += 1
        return self.env.timeout(self.latency)

    def write(self) -> Event:
        """One line writeback; fires after the loaded latency."""
        self.writes += 1
        return self.env.timeout(self.latency)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
