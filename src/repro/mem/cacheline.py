"""Consumer-endpoint cacheline model.

Queue data is delivered by *stashing* into consumer cachelines.  What the
routing device observes is only the target cache controller's hit/miss
response (Section 3.1): a push to a line that is ready succeeds; a push to a
line still holding unconsumed data fails and re-enters the mapping pipeline.

:class:`ConsumerLine` is that state machine plus the bookkeeping every
figure needs: per-line EMPTY/VALID residency (Figure 9) and fill/vacate
trace events (Figure 7).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import DeviceError
from repro.sim.stats import StateTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


class LineState(Enum):
    """Consumer cacheline occupancy as seen by the routing device."""

    EMPTY = "empty"  # ready to accept a push (vacated or never filled)
    VALID = "valid"  # holds a delivered, not-yet-consumed message


class ConsumerLine:
    """One cacheline of a consumer endpoint's receive buffer."""

    __slots__ = ("env", "addr", "endpoint_id", "index", "core_id", "_state",
                 "timer", "data", "fills", "vacates", "failed_fills",
                 "fill_txn", "last_vacate_time", "hooks", "unconfirmed")

    def __init__(
        self,
        env: "Environment",
        addr: int,
        endpoint_id: int,
        index: int,
        hooks: Optional["HookBus"] = None,
        core_id: int = 0,
    ) -> None:
        self.env = env
        self.addr = addr
        self.endpoint_id = endpoint_id
        self.index = index
        #: Owning consumer's core — the stash destination on NoC topologies.
        self.core_id = core_id
        #: Instrumentation bus; occupancy transitions publish a
        #: :class:`~repro.sim.hooks.LineHook` when somebody listens.
        self.hooks = hooks
        self._state = LineState.EMPTY
        self.timer = StateTimer(env, LineState.EMPTY)
        self.data: Any = None
        #: Transaction id of the message currently (or last) filled here.
        self.fill_txn: Optional[int] = None
        self.fills = 0
        self.vacates = 0
        self.failed_fills = 0
        #: When the line last became ready to receive (registration counts).
        self.last_vacate_time: int = env.now
        #: A burst-speculated fill whose predecessor has not yet confirmed.
        #: Unconfirmed lines hold data but are invisible to the consumer
        #: (not poppable) until the policy confirms or rolls them back.
        self.unconfirmed = False

    @property
    def state(self) -> LineState:
        return self._state

    @property
    def is_empty(self) -> bool:
        return self._state is LineState.EMPTY

    @property
    def poppable(self) -> bool:
        """VALID and confirmed — the consumer may pop this line."""
        return self._state is LineState.VALID and not self.unconfirmed

    def try_fill(
        self,
        data: Any,
        transaction_id: Optional[int] = None,
        unconfirmed: bool = False,
    ) -> bool:
        """Attempt a stash; returns the hit/miss response signal.

        A miss (line still VALID) leaves the line untouched — the routing
        device will retry the push through the address-mapping pipeline.
        """
        if self._state is LineState.VALID:
            self.failed_fills += 1
            self._publish("failed-fill", transaction_id)
            return False
        self._state = LineState.VALID
        self.timer.transition(LineState.VALID)
        self.data = data
        self.fill_txn = transaction_id
        self.fills += 1
        self.unconfirmed = unconfirmed
        self._publish("fill", transaction_id)
        return True

    def confirm(self) -> None:
        """Promote an unconfirmed burst fill to consumer-visible VALID."""
        self.unconfirmed = False

    def rollback(self) -> Any:
        """Invalidate an unconfirmed burst fill (misprediction recovery).

        The line returns to EMPTY without a delivery having happened; the
        invalidation packet's traversal is charged by the caller on the
        network model.  Returns the evicted payload so the policy can
        re-inject the message into the mapping pipeline.
        """
        if self._state is not LineState.VALID or not self.unconfirmed:
            raise DeviceError(
                f"rollback() on {self!r} while {self._state.value} "
                f"(unconfirmed={self.unconfirmed}); only unconfirmed burst "
                "fills may be rolled back"
            )
        data, self.data = self.data, None
        self._state = LineState.EMPTY
        self.timer.transition(LineState.EMPTY)
        self.unconfirmed = False
        self.last_vacate_time = self.env.now
        self._publish("rollback", self.fill_txn)
        self.fill_txn = None
        return data

    def consume(self) -> Any:
        """Read the message and vacate the line (consumer-side pop)."""
        if self._state is not LineState.VALID:
            raise DeviceError(
                f"consume() on {self!r} while {self._state.value}; the library "
                "must check line state before consuming"
            )
        data, self.data = self.data, None
        self._state = LineState.EMPTY
        self.timer.transition(LineState.EMPTY)
        self.vacates += 1
        self.last_vacate_time = self.env.now
        self._publish("vacate", self.fill_txn)
        return data

    def _publish(self, transition: str, transaction_id: Optional[int]) -> None:
        """Publish one occupancy transition (zero-cost on a silent bus)."""
        if self.hooks is None:
            return
        from repro.sim.hooks import LineHook

        if self.hooks.wants(LineHook):
            self.hooks.publish(
                LineHook(
                    tick=self.env.now,
                    addr=self.addr,
                    endpoint_id=self.endpoint_id,
                    index=self.index,
                    transition=transition,
                    transaction_id=transaction_id,
                )
            )

    # -- metrics ---------------------------------------------------------------
    def empty_cycles(self) -> int:
        """Cycles spent EMPTY so far (open interval included)."""
        return self.timer.time_in(LineState.EMPTY)

    def valid_cycles(self) -> int:
        """Cycles spent VALID so far (open interval included)."""
        return self.timer.time_in(LineState.VALID)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ConsumerLine ep={self.endpoint_id}[{self.index}] "
            f"addr={self.addr:#x} {self._state.value}>"
        )
