"""Physical address-space layout and allocation.

Virtual-Link's key property is that producer and consumer endpoints live at
*unique* physical addresses (no shared coherent state): the routing device
copies cache lines between them.  Two additional *device memory* windows are
mapped to the routing device itself:

* the **consBuf window** — a ``vl_fetch`` store to this window registers a
  consumer request;
* the **specBuf window** — a ``vl_fetch`` store to this window (the
  ``spamer_register`` alias, Section 3.3) registers a speculative push
  target.

:class:`AddressSpace` hands out page-aligned endpoint buffers and exposes
predicates classifying an address, mirroring how the real system decodes
device accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, RegistrationError
from repro.units import CACHELINE_BYTES

PAGE_BYTES = 4096

#: Fixed device-window bases (arbitrary but stable; high in the PA space).
CONSBUF_WINDOW_BASE = 0xF000_0000
SPECBUF_WINDOW_BASE = 0xF100_0000
DEVICE_WINDOW_BYTES = 0x0010_0000


@dataclass(frozen=True)
class Segment:
    """A contiguous physical range (page-aligned endpoint buffer)."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.length <= 0:
            raise ConfigError(f"invalid segment {self!r}")

    @property
    def end(self) -> int:
        return self.base + self.length

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def line_addr(self, index: int) -> int:
        """Address of the *index*-th cacheline within the segment."""
        addr = self.base + index * CACHELINE_BYTES
        if not self.contains(addr):
            raise RegistrationError(
                f"line index {index} out of segment of {self.length} bytes"
            )
        return addr

    @property
    def num_lines(self) -> int:
        return self.length // CACHELINE_BYTES


class AddressSpace:
    """Allocates endpoint buffers and classifies device addresses."""

    def __init__(self, dram_bytes: int) -> None:
        if dram_bytes < PAGE_BYTES:
            raise ConfigError(f"DRAM too small: {dram_bytes} bytes")
        self.dram_bytes = dram_bytes
        self._next_free = PAGE_BYTES  # keep page 0 unmapped (null guard)

    def alloc_endpoint_buffer(self, num_lines: int) -> Segment:
        """Allocate a page-aligned buffer of *num_lines* cachelines."""
        if num_lines < 1:
            raise RegistrationError(f"need >= 1 cacheline, got {num_lines}")
        length = ((num_lines * CACHELINE_BYTES + PAGE_BYTES - 1) // PAGE_BYTES) * PAGE_BYTES
        base = self._next_free
        if base + length > self.dram_bytes:
            raise RegistrationError("out of simulated DRAM for endpoint buffers")
        self._next_free = base + length
        return Segment(base, length)

    # -- device window decode -------------------------------------------------
    @staticmethod
    def is_consbuf_window(addr: int) -> bool:
        return CONSBUF_WINDOW_BASE <= addr < CONSBUF_WINDOW_BASE + DEVICE_WINDOW_BYTES

    @staticmethod
    def is_specbuf_window(addr: int) -> bool:
        return SPECBUF_WINDOW_BASE <= addr < SPECBUF_WINDOW_BASE + DEVICE_WINDOW_BYTES

    @staticmethod
    def consbuf_window_addr(sqi: int) -> int:
        """The device address a vl_fetch for *sqi* stores to."""
        return CONSBUF_WINDOW_BASE + sqi * CACHELINE_BYTES

    @staticmethod
    def specbuf_window_addr(sqi: int) -> int:
        """The device address a spamer_register for *sqi* stores to."""
        return SPECBUF_WINDOW_BASE + sqi * CACHELINE_BYTES

    @staticmethod
    def sqi_of_window_addr(addr: int) -> Optional[int]:
        """Recover the SQI encoded in a device-window address, else None."""
        if AddressSpace.is_consbuf_window(addr):
            return (addr - CONSBUF_WINDOW_BASE) // CACHELINE_BYTES
        if AddressSpace.is_specbuf_window(addr):
            return (addr - SPECBUF_WINDOW_BASE) // CACHELINE_BYTES
        return None
