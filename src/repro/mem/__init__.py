"""Memory substrate: addresses, cachelines, the coherence network, caches,
MOESI coherence and DRAM.

Two layers coexist here:

* the *transaction-level* layer used by the Virtual-Link / SPAMeR queue path
  (:class:`ConsumerLine`, :class:`CoherenceNetwork`) — queue data bypasses
  coherence by design;
* the *coherent* layer (:class:`SetAssocCache`, :class:`CoherentMemorySystem`,
  :class:`Dram`) used by the software-queue motivation baseline.
"""

from repro.mem.address import (
    AddressSpace,
    CONSBUF_WINDOW_BASE,
    PAGE_BYTES,
    Segment,
    SPECBUF_WINDOW_BASE,
)
from repro.mem.bus import CoherenceNetwork, PacketKind
from repro.mem.cache import CacheLineEntry, MoesiState, SetAssocCache
from repro.mem.cacheline import ConsumerLine, LineState
from repro.mem.coherence import CoherentMemorySystem
from repro.mem.dram import Dram

__all__ = [
    "AddressSpace",
    "CONSBUF_WINDOW_BASE",
    "CacheLineEntry",
    "CoherenceNetwork",
    "CoherentMemorySystem",
    "ConsumerLine",
    "Dram",
    "LineState",
    "MoesiState",
    "PAGE_BYTES",
    "PacketKind",
    "SPECBUF_WINDOW_BASE",
    "Segment",
    "SetAssocCache",
]
