"""Bus-snooping MOESI coherence over private L1Ds and a shared L2.

This substrate backs the *software* message-queue baseline the paper's
introduction motivates against (Figure 1a): shared queue state (head, tail,
slot flags) ping-pongs between cores through snoop/invalidate traffic, which
is precisely the scalability problem Virtual-Link removes.

The model is transaction-level: every memory operation is a generator to be
driven with ``yield from`` inside a simulation process.  The shared bus
serializes coherence transactions (each one occupies the network), and the
value store is updated atomically at the instant an operation completes, so
the memory model is sequentially consistent.

Protocol summary (snooping MOESI):

* **load hit** (M/O/E/S): L1 latency only.
* **load miss**: BusRd — a remote M/O/E supplier provides the line
  cache-to-cache (remote M/E degrade to O/S ownership-transfer style:
  supplier keeps the dirty line as O, requester takes S); otherwise the L2
  or DRAM supplies it (requester takes E when no other L1 holds it, S
  otherwise).
* **store hit** (M/E): silent upgrade to M.
* **store to S/O**: BusUpgr — invalidate remote copies, go M.
* **store miss**: BusRdX — fetch with intent to modify, invalidate remotes.
* **atomics** (CAS / fetch-add): a BusRdX followed by the read-modify-write
  at completion time; bus serialization makes them atomic.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import ProtocolError
from repro.mem.bus import CoherenceNetwork, PacketKind
from repro.mem.cache import MoesiState, SetAssocCache
from repro.mem.dram import Dram
from repro.sim.stats import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class CoherentMemorySystem:
    """N private L1D caches + shared L2 + DRAM, kept coherent by snooping."""

    def __init__(
        self,
        env: "Environment",
        config: SystemConfig,
        network: Optional[CoherenceNetwork] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.network = network or CoherenceNetwork(env, config)
        self.l1 = [
            SetAssocCache(config.l1d, name=f"L1D{i}") for i in range(config.num_cores)
        ]
        self.l2 = SetAssocCache(config.l2, name="L2")
        self.dram = Dram(env, config)
        #: Architectural value store (word granularity), always up to date.
        self.values: Dict[int, int] = {}
        self.counters = Counter()

    # ------------------------------------------------------------- value store
    def peek_value(self, addr: int) -> int:
        """Read the architectural value without simulating time (debug/tests)."""
        return self.values.get(addr, 0)

    def poke_value(self, addr: int, value: int) -> None:
        """Set the architectural value without simulating time (initialisation)."""
        self.values[addr] = value

    # ------------------------------------------------------------ snoop helpers
    def _snoop_for_supplier(
        self, requester: int, addr: int
    ) -> Optional[Tuple[int, MoesiState]]:
        """Find a remote L1 that must supply the line (M/O/E holder)."""
        for core, cache in enumerate(self.l1):
            if core == requester:
                continue
            entry = cache.peek(addr)
            if entry is not None and entry.state.can_supply:
                return core, entry.state
        return None

    def _other_sharers(self, requester: int, addr: int) -> List[int]:
        return [
            core
            for core, cache in enumerate(self.l1)
            if core != requester and cache.peek(addr) is not None
        ]

    def _invalidate_others(self, requester: int, addr: int) -> int:
        count = 0
        for core, cache in enumerate(self.l1):
            if core != requester and cache.invalidate(addr):
                count += 1
        return count

    def _handle_victim(self, victim) -> None:
        """Victims in M/O are absorbed by the (mostly-inclusive) L2."""
        if victim is not None and victim.state.dirty:
            self.counters.add("writebacks")
            self.l2.install(victim.line_addr, MoesiState.MODIFIED)

    def _degrade_suppliers(self, core: int, addr: int) -> None:
        """At fill-commit time, degrade any remote writable/owning copy.

        Operations interleave at their network yields, so the snoop used
        for *latency* may be stale by commit time; this re-snoop at the
        commit instant preserves the SWMR invariant.
        """
        for other, cache in enumerate(self.l1):
            if other == core:
                continue
            entry = cache.peek(addr)
            if entry is None:
                continue
            if entry.state in (MoesiState.MODIFIED, MoesiState.OWNED):
                cache.set_state(addr, MoesiState.OWNED)
            elif entry.state is MoesiState.EXCLUSIVE:
                cache.set_state(addr, MoesiState.SHARED)

    # ------------------------------------------------------------------- load
    def load(self, core: int, addr: int) -> Generator:
        """``yield from`` generator: returns the loaded value."""
        cache = self.l1[core]
        entry = cache.lookup(addr)
        if entry is not None:
            self.counters.add("load_hits")
            yield self.env.timeout(self.config.l1d.hit_latency)
            return self.values.get(addr, 0)

        self.counters.add("load_misses")
        # BusRd: occupy the network for the request.  On NoC topologies the
        # request travels to the coherence hub (the shared-L2 home node,
        # co-located with SRD shard 0); the bus model ignores placement.
        net = self.network
        yield net.transit(
            PacketKind.COHERENCE, src=net.core_node(core), dst=net.srd_node(0)
        )
        supplier = self._snoop_for_supplier(core, addr)
        if supplier is not None:
            # Cache-to-cache transfer: one data packet supplier → requester.
            yield net.transit(
                PacketKind.COHERENCE,
                src=net.core_node(supplier[0]),
                dst=net.core_node(core),
            )
            self.counters.add("c2c_transfers")
        else:
            l2_entry = self.l2.lookup(addr)
            if l2_entry is not None:
                yield self.env.timeout(self.config.l2.hit_latency)
                self.counters.add("l2_hits")
            else:
                yield self.dram.read()
                self.l2.install(addr, MoesiState.EXCLUSIVE)
                self.counters.add("dram_fills")
        # Commit atomically: degrade whoever owns the line *now* and pick
        # the fill state from the current sharer set.
        self._degrade_suppliers(core, addr)
        new_state = (
            MoesiState.SHARED
            if self._other_sharers(core, addr)
            else MoesiState.EXCLUSIVE
        )
        self._handle_victim(cache.install(addr, new_state))
        yield self.env.timeout(self.config.l1d.hit_latency)
        return self.values.get(addr, 0)

    # ------------------------------------------------------------------- store
    def store(self, core: int, addr: int, value: int) -> Generator:
        """``yield from`` generator: performs a coherent store."""
        yield from self._acquire_writable(core, addr)
        self.values[addr] = value
        yield self.env.timeout(self.config.l1d.hit_latency)

    def _acquire_writable(self, core: int, addr: int) -> Generator:
        """Bring the line into M in *core*'s L1 (the store-miss path).

        Retries when a racing core steals the line between our bus
        transaction and its commit (operations interleave at yields).
        """
        cache = self.l1[core]
        while True:
            entry = cache.lookup(addr)
            if entry is not None and entry.state.is_writable:
                self.counters.add("store_hits")
                cache.set_state(addr, MoesiState.MODIFIED)
                return
            if entry is not None:
                # S or O: upgrade — invalidate every other copy.
                self.counters.add("upgrades")
                net = self.network
                yield net.transit(
                    PacketKind.COHERENCE,
                    src=net.core_node(core),
                    dst=net.srd_node(0),
                )
                if cache.peek(addr) is None:
                    # A racing BusRdX invalidated us mid-upgrade: retry as
                    # a plain miss.
                    continue
                self._invalidate_others(core, addr)
                cache.set_state(addr, MoesiState.MODIFIED)
                return
            # Store miss: BusRdX.
            self.counters.add("store_misses")
            net = self.network
            yield net.transit(
                PacketKind.COHERENCE, src=net.core_node(core), dst=net.srd_node(0)
            )
            supplier = self._snoop_for_supplier(core, addr)
            if supplier is not None:
                yield net.transit(
                    PacketKind.COHERENCE,
                    src=net.core_node(supplier[0]),
                    dst=net.core_node(core),
                )
                self.counters.add("c2c_transfers")
            else:
                l2_entry = self.l2.lookup(addr)
                if l2_entry is not None:
                    yield self.env.timeout(self.config.l2.hit_latency)
                    self.counters.add("l2_hits")
                else:
                    yield self.dram.read()
                    self.l2.install(addr, MoesiState.EXCLUSIVE)
                    self.counters.add("dram_fills")
            # Commit atomically against the *current* sharer set.
            self._invalidate_others(core, addr)
            self._handle_victim(cache.install(addr, MoesiState.MODIFIED))
            return

    # ----------------------------------------------------------------- atomics
    def cas(self, core: int, addr: int, expected: int, new: int) -> Generator:
        """Atomic compare-and-swap; returns True on success."""
        self.counters.add("atomics")
        yield from self._acquire_writable(core, addr)
        yield self.env.timeout(self.config.l1d.hit_latency)
        current = self.values.get(addr, 0)
        if current == expected:
            self.values[addr] = new
            return True
        return False

    def fetch_add(self, core: int, addr: int, amount: int) -> Generator:
        """Atomic fetch-and-add; returns the previous value."""
        self.counters.add("atomics")
        yield from self._acquire_writable(core, addr)
        yield self.env.timeout(self.config.l1d.hit_latency)
        previous = self.values.get(addr, 0)
        self.values[addr] = previous + amount
        return previous

    # ------------------------------------------------------------- invariants
    def check_coherence_invariant(self) -> None:
        """SWMR check: at most one writable copy; M/E excludes other copies."""
        seen: Dict[int, List[MoesiState]] = {}
        for cache in self.l1:
            for cache_set in cache._sets:
                for la, entry in cache_set.items():
                    seen.setdefault(la, []).append(entry.state)
        for la, states in seen.items():
            writable = sum(1 for s in states if s.is_writable)
            owners = sum(1 for s in states if s in (MoesiState.MODIFIED, MoesiState.OWNED))
            if writable > 1:
                raise ProtocolError(f"multiple writable copies of {la:#x}: {states}")
            if writable == 1 and len(states) > 1:
                raise ProtocolError(f"M/E copy of {la:#x} coexists with others: {states}")
            if owners > 1:
                raise ProtocolError(f"multiple owners of {la:#x}: {states}")
