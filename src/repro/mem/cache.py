"""Set-associative cache with MOESI line states.

This backs the coherence substrate used by the software-queue motivation
baseline (Figure 1a): private L1Ds and a shared L2 whose lines carry MOESI
states and are kept coherent by :mod:`repro.mem.coherence`.

The cache tracks geometry from :class:`~repro.config.CacheConfig`, true LRU
within a set, and hit/miss/eviction statistics.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional

from repro.config import CacheConfig
from repro.errors import ProtocolError


class MoesiState(Enum):
    """The five MOESI coherence states."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not MoesiState.INVALID

    @property
    def can_supply(self) -> bool:
        """True when a snooping cache must supply the data (M/O/E)."""
        return self in (MoesiState.MODIFIED, MoesiState.OWNED, MoesiState.EXCLUSIVE)

    @property
    def is_writable(self) -> bool:
        """True when a store can proceed without a bus transaction (M/E)."""
        return self in (MoesiState.MODIFIED, MoesiState.EXCLUSIVE)

    @property
    def dirty(self) -> bool:
        """True when eviction must write the line back (M/O)."""
        return self in (MoesiState.MODIFIED, MoesiState.OWNED)


class CacheLineEntry:
    """One resident line: its base address, state and LRU stamp."""

    __slots__ = ("line_addr", "state", "lru_stamp")

    def __init__(self, line_addr: int, state: MoesiState, lru_stamp: int) -> None:
        self.line_addr = line_addr
        self.state = state
        self.lru_stamp = lru_stamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Line {self.line_addr:#x} {self.state.value}>"


class SetAssocCache:
    """A set-associative cache array with true-LRU replacement."""

    def __init__(self, geometry: CacheConfig, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self._sets: List[Dict[int, CacheLineEntry]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- address decomposition ---------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.geometry.line_bytes)

    def set_index(self, addr: int) -> int:
        return (self.line_addr(addr) // self.geometry.line_bytes) % self.geometry.num_sets

    # -- operations ----------------------------------------------------------------
    def lookup(self, addr: int, count: bool = True) -> Optional[CacheLineEntry]:
        """Find the resident line for *addr*; updates LRU and hit stats."""
        la = self.line_addr(addr)
        entry = self._sets[self.set_index(addr)].get(la)
        if entry is not None and entry.state.is_valid:
            if count:
                self.hits += 1
            self._stamp += 1
            entry.lru_stamp = self._stamp
            return entry
        if count:
            self.misses += 1
        return None

    def peek(self, addr: int) -> Optional[CacheLineEntry]:
        """Snoop lookup: no LRU update, no hit/miss accounting."""
        la = self.line_addr(addr)
        entry = self._sets[self.set_index(addr)].get(la)
        if entry is not None and entry.state.is_valid:
            return entry
        return None

    def install(self, addr: int, state: MoesiState) -> Optional[CacheLineEntry]:
        """Insert a line, returning the victim evicted to make room (if any)."""
        if not state.is_valid:
            raise ProtocolError(f"{self.name}: cannot install a line in state I")
        la = self.line_addr(addr)
        cache_set = self._sets[self.set_index(addr)]
        victim: Optional[CacheLineEntry] = None
        if la not in cache_set and len(cache_set) >= self.geometry.associativity:
            victim_addr = min(cache_set, key=lambda a: cache_set[a].lru_stamp)
            victim = cache_set.pop(victim_addr)
            self.evictions += 1
        self._stamp += 1
        cache_set[la] = CacheLineEntry(la, state, self._stamp)
        return victim

    def set_state(self, addr: int, state: MoesiState) -> None:
        """Transition a resident line's state; I removes the line."""
        la = self.line_addr(addr)
        cache_set = self._sets[self.set_index(addr)]
        entry = cache_set.get(la)
        if entry is None:
            raise ProtocolError(f"{self.name}: set_state on non-resident {la:#x}")
        if state is MoesiState.INVALID:
            del cache_set[la]
        else:
            entry.state = state

    def invalidate(self, addr: int) -> bool:
        """Drop the line if resident; True when something was invalidated."""
        la = self.line_addr(addr)
        cache_set = self._sets[self.set_index(addr)]
        if la in cache_set:
            del cache_set[la]
            return True
        return False

    # -- introspection ---------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def state_of(self, addr: int) -> MoesiState:
        entry = self.peek(addr)
        return entry.state if entry is not None else MoesiState.INVALID
