"""Virtual-Link — the state-of-the-art hardware queue SPAMeR builds on.

Implements the VLRD routing device (prodBuf / consBuf / linkTab and the
three-stage address-mapping pipeline), producer/consumer endpoints, and the
user-space queue library with its fast/slow dequeue paths.
"""

from repro.vlink.endpoint import ConsumerEndpoint, ProducerEndpoint
from repro.vlink.library import QueueLibrary
from repro.vlink.linktab import LinkRow, LinkTab
from repro.vlink.packets import ConsRequest, Message, ProdEntry
from repro.vlink.vlrd import SpecTarget, VirtualLinkRoutingDevice

__all__ = [
    "ConsRequest",
    "ConsumerEndpoint",
    "LinkRow",
    "LinkTab",
    "Message",
    "ProdEntry",
    "ProducerEndpoint",
    "QueueLibrary",
    "SpecTarget",
    "VirtualLinkRoutingDevice",
]
