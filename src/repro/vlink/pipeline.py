"""The three-stage address-mapping pipeline (Section 3.1, Figures 4–5).

:class:`MappingPipeline` is the heart of every routing device: it pairs
producer packets with consumer targets on the same SQI.  Stage 1 reads the
SQI's linkTab row, Stage 2 looks for a target — a pending consumer request
first, else a speculation candidate from the pluggable
:class:`SpeculationPolicy` — and Stage 3 either hands the packet to the
device's dispatch path (the stash send) or parks it on the SQI's buffering
queue.

The speculation path is a *policy stage*, not a subclass override: the
baseline device runs :class:`NullSpeculation` (never speculates, rejects
``spamer_register``), while the SPAMeR device plugs in
:class:`repro.spamer.policy.SpecBufSpeculation`.  New devices compose a
pipeline with their own policy instead of monkeying with the device class.

The pipeline stamps every packet's :class:`~repro.sim.transaction.
TransactionRecord` (MAPPED / BUFFERED / MATCHED / COALESCED) and publishes
trace moments onto the hook bus; it schedules only the stage-latency
timeouts the monolithic device used to, so refactored runs are
bit-identical to the pre-pipeline ones.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import RegistrationError
from repro.mem.cacheline import ConsumerLine
from repro.sim.hooks import HookBus, TraceHook, TransactionHook
from repro.sim.trace import EventKind
from repro.sim.transaction import TransactionRecord, TxnState
from repro.vlink.linktab import LinkRow, LinkTab
from repro.vlink.packets import ConsRequest, ProdEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.kernel import Environment
    from repro.sim.stats import Counter
    from repro.vlink.endpoint import ConsumerEndpoint


class SpecTarget:
    """A speculation decision: where and when to push.

    ``unconfirmed`` marks a non-head member of a speculative burst
    (multi-push): its stash lands invisible to the consumer until the
    burst head confirms, or is rolled back on a misprediction.
    """

    __slots__ = ("line", "entry_index", "send_tick", "unconfirmed")

    def __init__(
        self,
        line: ConsumerLine,
        entry_index: int,
        send_tick: int,
        unconfirmed: bool = False,
    ) -> None:
        self.line = line
        self.entry_index = entry_index
        self.send_tick = send_tick
        self.unconfirmed = unconfirmed


class SpeculationPolicy:
    """Pluggable Stage-2 speculation stage of the mapping pipeline.

    Implementations decide *whether/where/when* to push without a consumer
    request (:meth:`select`), learn from the hit/miss responses of their
    decisions (:meth:`on_response`), and manage target registration
    (:meth:`register`).
    """

    def select(
        self, row: LinkRow, entry: ProdEntry, now: int
    ) -> Optional[SpecTarget]:
        """Pick a speculative target for *entry*, or None to buffer it."""
        raise NotImplementedError

    def on_response(self, entry: ProdEntry, hit: bool, now: int) -> Optional[str]:
        """Feed a speculative push's hit/miss response back into the policy.

        Returns None for the standard hit/miss handling, or the verdict
        ``"rollback"`` when the policy cancels the push (burst
        misprediction): the device then stamps the packet ROLLED_BACK,
        charges it as a failure, and hands it to :meth:`complete_rollback`
        instead of releasing/retrying it.
        """
        raise NotImplementedError

    def complete_rollback(self, entry: ProdEntry, hit: bool, now: int) -> None:
        """Finish a push cancelled by a ``"rollback"`` verdict.

        Only called after :meth:`on_response` returned ``"rollback"``; the
        policy owns the packet's continuation (invalidation, re-injection).
        """
        raise NotImplementedError

    def retry(self, entry: ProdEntry, now: int) -> Optional[SpecTarget]:
        """Sticky-slot retry target for a missed speculative push.

        Returning a target keeps the packet on its already-assigned slot
        (FIFO preservation); returning None releases the claim and the
        device falls back to the generic Figure-5 requeue.
        """
        return None

    def register(self, endpoint: "ConsumerEndpoint") -> None:
        """Handle a ``spamer_register`` store for *endpoint*."""
        raise NotImplementedError


class NullSpeculation(SpeculationPolicy):
    """The baseline policy: never speculate, reject registrations."""

    def select(
        self, row: LinkRow, entry: ProdEntry, now: int
    ) -> Optional[SpecTarget]:
        return None

    def on_response(self, entry: ProdEntry, hit: bool, now: int) -> None:
        raise RegistrationError("VLRD received a speculative push response")

    def register(self, endpoint: "ConsumerEndpoint") -> None:
        raise RegistrationError(
            "spamer_register executed against a baseline VLRD; build the "
            "system with SpamerRoutingDevice to use speculative pushes"
        )


class MappingPipeline:
    """The shared 3-stage mapping machinery, policy-parameterized."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        linktab: LinkTab,
        stats: "Counter",
        speculation: SpeculationPolicy,
        dispatch: Callable[[ProdEntry, ConsumerLine, bool], None],
        hooks: Optional[HookBus] = None,
        stage_latency: Optional[int] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.linktab = linktab
        self.stats = stats
        self.speculation = speculation
        #: Stage-3 exit: the owning device's stash-send path.
        self._dispatch = dispatch
        self.hooks = hooks if hooks is not None else HookBus()
        self.stage_latency = (
            config.srd_pipeline_latency if stage_latency is None else stage_latency
        )
        self._consbuf_occupancy = 0

    # ------------------------------------------------------------------ helpers
    def _after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* cycles (pipeline-internal sequencing)."""
        self.env.timeout(delay).subscribe(lambda _ev: fn())

    def stamp(
        self,
        record: Optional[TransactionRecord],
        state: TxnState,
        sqi: int,
        detail: str = "",
    ) -> None:
        """Stamp *record* (if any) and publish the state change on the bus."""
        now = self.env.now
        if record is not None:
            record.stamp(state, now, detail)
        if self.hooks.wants(TransactionHook):
            self.hooks.publish(
                TransactionHook(
                    tick=now, record=record, state=state, sqi=sqi, detail=detail
                )
            )

    def trace(
        self, kind: EventKind, time: int, transaction_id: int, sqi: int,
        detail: str = "",
    ) -> None:
        """Publish one Figure-7 trace moment (possibly back-timestamped)."""
        if self.hooks.wants(TraceHook):
            self.hooks.publish(
                TraceHook(
                    tick=int(time),
                    kind=kind,
                    transaction_id=transaction_id,
                    sqi=sqi,
                    detail=detail,
                )
            )

    @property
    def consbuf_occupancy(self) -> int:
        return self._consbuf_occupancy

    def occupancy_snapshot(self) -> dict:
        """Per-SQI buffering/request occupancy for stall diagnostics.

        Returns ``{sqi: (buffered_data, pending_requests)}`` for every SQI
        with anything outstanding — what the watchdog dumps when a run
        stalls, so the report names *where* packets are parked.
        """
        out = {}
        for sqi, row in self.linktab.rows.items():
            buffered = len(row.buffered_data)
            pending = len(row.pending_requests)
            if buffered or pending:
                out[sqi] = (buffered, pending)
        return out

    # ------------------------------------------------------------ producer side
    def ingress(self, entry: ProdEntry) -> None:
        """A push packet enters the pipeline (one stage-latency traversal)."""
        self._after(self.stage_latency, lambda: self._map(entry))

    def requeue(self, entry: ProdEntry) -> None:
        """Figure 5: a missed packet re-enters the mapping pipeline."""
        self._after(self.stage_latency, lambda: self._map(entry))

    def redispatch(self, entry: ProdEntry, spec: SpecTarget) -> None:
        """Figure 5 path B with a *sticky* target: retry the assigned slot.

        A missed speculative packet re-traverses the pipeline and re-sends
        to the same cacheline it was already assigned.  Because the packet
        never gives up its specBuf slot, younger packets of the same SQI
        cannot be stashed into an earlier ring position — this is what
        keeps delivery per-producer FIFO across mis-speculations.
        """
        self.stats.add("spec_retries")
        entry.spec_unconfirmed = spec.unconfirmed
        self.stamp(entry.message.txn, TxnState.MAPPED, entry.sqi, "retry")
        delay = self.stage_latency + max(0, spec.send_tick - self.env.now)
        self._after(delay, lambda: self._dispatch(entry, spec.line, True))

    def _map(self, entry: ProdEntry) -> None:
        """Address-mapping pipeline outcome for one prodBuf entry."""
        row = self.linktab.row(entry.sqi)
        if row.buffered_data:
            # Keep per-SQI FIFO: fresh arrivals queue behind parked packets.
            row.buffered_data.append(entry)
            self.stamp(entry.message.txn, TxnState.BUFFERED, entry.sqi, "backlog")
            self.kick(row)
            return
        self._map_front(row, entry)

    def _map_front(self, row: LinkRow, entry: ProdEntry) -> None:
        """Map *entry* (known to be the oldest packet of its SQI)."""
        request = self.pop_request(row)
        if request is not None:
            self._matched(request, entry)
            self._dispatch(entry, request.line, False)
            return
        spec = self.speculation.select(row, entry, self.env.now)
        if spec is not None:
            self._speculated(entry, spec)
            return
        row.buffered_data.append(entry)
        self.stats.add("buffered")
        self.stamp(entry.message.txn, TxnState.BUFFERED, entry.sqi)

    def _matched(self, request: ConsRequest, entry: ProdEntry) -> None:
        """Bookkeeping for an on-demand pairing (Stage-3 consTgt mux)."""
        self.trace(
            EventKind.REQUEST_ARRIVE,
            request.arrived_at,
            entry.message.transaction_id,
            entry.sqi,
        )
        self.stamp(entry.message.txn, TxnState.MAPPED, entry.sqi, "on-demand")
        self.stamp(request.txn, TxnState.MATCHED, request.sqi)

    def _speculated(self, entry: ProdEntry, spec: SpecTarget) -> None:
        """Stage-3 specTgt path: schedule the delayed speculative dispatch."""
        entry.spec_entry_index = spec.entry_index
        entry.spec_unconfirmed = spec.unconfirmed
        delay = max(0, spec.send_tick - self.env.now)
        self.stats.add("spec_selected")
        self.stamp(entry.message.txn, TxnState.MAPPED, entry.sqi, "speculative")
        self._after(delay, lambda: self._dispatch(entry, spec.line, True))

    # ------------------------------------------------------------ consumer side
    def admit_request(self, request: ConsRequest) -> bool:
        """consBuf admission; False = NACK (the consumer re-issues later)."""
        if self._consbuf_occupancy >= self.config.consbuf_entries:
            return False
        self._consbuf_occupancy += 1
        self._after(self.stage_latency, lambda: self._on_request(request))
        return True

    def _on_request(self, request: ConsRequest) -> None:
        row = self.linktab.row(request.sqi)
        if not row.buffered_data and any(
            pending.line is request.line for pending in row.pending_requests
        ):
            # Coalesce: a request for this cacheline is already registered
            # (an MSHR-style CAM match).  Re-issued fetches from the polling
            # loop would otherwise accumulate and exhaust consBuf.
            self._consbuf_occupancy -= 1
            self.stats.add("requests_coalesced")
            self.stamp(request.txn, TxnState.COALESCED, request.sqi)
            return
        if row.buffered_data:
            entry = row.buffered_data.popleft()
            self._consbuf_occupancy -= 1
            self._matched(request, entry)
            self._dispatch(entry, request.line, False)
        else:
            row.pending_requests.append(request)

    def pop_request(self, row: LinkRow) -> Optional[ConsRequest]:
        if row.pending_requests:
            self._consbuf_occupancy -= 1
            return row.pending_requests.popleft()
        return None

    # ------------------------------------------------------------------- drain
    def kick(self, row: LinkRow) -> None:
        """Drain the SQI's buffering queue while targets are available."""
        while row.buffered_data:
            if row.pending_requests:
                entry = row.buffered_data.popleft()
                request = self.pop_request(row)
                assert request is not None
                self._matched(request, entry)
                self._dispatch(entry, request.line, False)
                continue
            spec = self.speculation.select(row, row.buffered_data[0], self.env.now)
            if spec is not None:
                entry = row.buffered_data.popleft()
                self._speculated(entry, spec)
                continue
            break
