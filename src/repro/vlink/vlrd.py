"""The Virtual-Link Routing Device (VLRD) — the baseline hardware queue.

The VLRD (Section 2, Figures 2–5) is attached to the coherence network and
moves cachelines from producer endpoints to consumer endpoints:

1. ``vl_push`` copies producer data into a **prodBuf** entry (ownership
   transfers to the device; the producer's line stays writable).
2. ``vl_fetch`` registers a consumer cacheline address in a **consBuf**
   entry.
3. The three-stage *address mapping* pipeline — a first-class
   :class:`~repro.vlink.pipeline.MappingPipeline` — pairs the two on the
   same SQI: a matched packet enters the sending queue and is stashed into
   the consumer cacheline; an unmatched packet is parked on the SQI's
   buffering queue in **linkTab**.
4. The target cache controller answers each stash with a hit/miss response:
   a hit frees the prodBuf entry; a miss re-enters the packet into the
   mapping pipeline (Figure 5, path B/C).

The device composes rather than hard-codes its behaviour: the speculation
stage is a pluggable :class:`~repro.vlink.pipeline.SpeculationPolicy`
(:class:`~repro.vlink.pipeline.NullSpeculation` here; the SPAMeR device
plugs in its specBuf policy), instrumentation attaches through the
:class:`~repro.sim.hooks.HookBus`, and each packet carries a
:class:`~repro.sim.transaction.TransactionRecord` stamped at every
lifecycle transition.  New device flavors register with
:func:`repro.registry.register_device` and need no edits to the core.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import SystemConfig
from repro.mem.bus import CoherenceNetwork, PacketKind
from repro.mem.cacheline import ConsumerLine
from repro.registry import register_device
from repro.sim.hooks import HookBus
from repro.sim.resources import Resource
from repro.sim.stats import Counter
from repro.sim.trace import EventKind, TraceRecorder
from repro.sim.transaction import TxnState
from repro.vlink.linktab import LinkTab
from repro.vlink.packets import ConsRequest, Message, ProdEntry
from repro.vlink.pipeline import (
    MappingPipeline,
    NullSpeculation,
    SpecTarget,
    SpeculationPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment

__all__ = ["SpecTarget", "VirtualLinkRoutingDevice"]


@register_device("vl", description="Virtual-Link baseline (on-demand only)")
class VirtualLinkRoutingDevice:
    """Baseline on-demand routing device."""

    kind = "VLRD"
    #: Whether consumer endpoints may register for speculative pushes.
    supports_speculation = False
    #: Which SRD shard this device instance is (set by ``System`` when it
    #: builds several; determines the device's network node on NoC
    #: topologies).  Class default keeps standalone construction working.
    srd_index = 0

    def __init__(
        self,
        env: "Environment",
        config: SystemConfig,
        network: CoherenceNetwork,
        trace: Optional[TraceRecorder] = None,
        hooks: Optional[HookBus] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.network = network
        self.hooks = hooks if hooks is not None else HookBus()
        self.trace = trace or TraceRecorder(env, enabled=False)
        # Tracing is a bus subscriber, not a hard-wired call site.
        self.trace.attach(self.hooks)
        self.linktab = LinkTab(config.linktab_entries)
        self.stats = Counter()
        self.pipeline = MappingPipeline(
            env,
            config,
            self.linktab,
            self.stats,
            speculation=self._make_speculation(),
            dispatch=self._dispatch,
            hooks=self.hooks,
            stage_latency=self._stage_latency(),
        )
        #: prodBuf admission is two-tier: a small per-SQI *reserve*
        #: guarantees every queue forward progress (no head-of-line
        #: deadlock when one producer hoards entries — also the Section 3.6
        #: DoS mitigation, MPAM-style per-partition limits), while the
        #: remaining entries form a *shared* pool that lets a bursty queue
        #: build a real backlog, matching the dynamically-shared entries of
        #: the physical design.
        self._reserved_credits: dict = {}
        self._shared_credits: Optional[Resource] = None
        self._reserve_per_sqi: Optional[int] = None

    # --------------------------------------------------------------- composition
    def _make_speculation(self) -> SpeculationPolicy:
        """The Stage-2 policy this device flavor plugs into its pipeline."""
        return NullSpeculation()

    def _stage_latency(self) -> int:
        """Mapping-pipeline traversal latency (overridable per flavor)."""
        return self.config.srd_pipeline_latency

    # ----------------------------------------------------- admission control
    def finalize_capacity(self, num_sqis: Optional[int] = None) -> None:
        """Fix the prodBuf admission tiers once all queues exist.

        Called lazily at the first push: every SQI gets a reserve of 2
        entries (1 when more than half the entries would be reserved), and
        the remainder is shared first-come-first-served.
        """
        if self._reserve_per_sqi is not None:
            return
        n = num_sqis if num_sqis is not None else max(1, len(self.linktab))
        reserve = 2 if 2 * n <= self.config.prodbuf_entries else 1
        self._reserve_per_sqi = reserve
        shared = max(0, self.config.prodbuf_entries - reserve * n)
        self._shared_credits = Resource(
            self.env, max(1, shared), name="prodBuf[shared]"
        )

    def _reserved(self, sqi: int) -> Resource:
        if self._reserve_per_sqi is None:
            self.finalize_capacity()
        if sqi not in self._reserved_credits:
            self._reserved_credits[sqi] = Resource(
                self.env, self._reserve_per_sqi, name=f"prodBuf[sqi={sqi}]"
            )
        return self._reserved_credits[sqi]

    def acquire_entry(self, sqi: int):
        """Claim a prodBuf entry for a push; returns ``(event, pool)``.

        Takes a shared entry when one is free; otherwise falls back to the
        SQI's reserve (waiting on it if occupied — the reserve is the
        forward-progress guarantee, so waiters queue there rather than on
        the shared pool).
        """
        if self._reserve_per_sqi is None:
            self.finalize_capacity()
        assert self._shared_credits is not None
        if self._shared_credits.try_acquire():
            done = self.env.event()
            done.succeed()
            return done, "shared"
        return self._reserved(sqi).acquire(), "reserved"

    def release_entry(self, sqi: int, pool: Optional[str]) -> None:
        """Return a prodBuf entry to the pool it was claimed from.

        ``pool=None`` (a message injected without admission) is a no-op.
        """
        if pool is None:
            return
        if pool == "shared":
            assert self._shared_credits is not None
            self._shared_credits.release()
        else:
            self._reserved(sqi).release()

    @property
    def entries_in_use(self) -> int:
        """prodBuf occupancy across both admission tiers."""
        shared = self._shared_credits.in_use if self._shared_credits else 0
        return shared + sum(r.in_use for r in self._reserved_credits.values())

    @property
    def _consbuf_occupancy(self) -> int:
        """consBuf occupancy (owned by the mapping pipeline)."""
        return self.pipeline.consbuf_occupancy

    # ----------------------------------------------------------- producer side
    def accept_push(self, message: Message) -> None:
        """A vl_push packet arrived over the network (credit already held)."""
        self.stats.add("data_arrivals")
        self.pipeline.stamp(message.txn, TxnState.PUSHED, message.sqi)
        self.pipeline.trace(
            EventKind.DATA_ARRIVE, self.env.now, message.transaction_id, message.sqi
        )
        entry = ProdEntry(message, arrived_at=self.env.now)
        self.pipeline.ingress(entry)

    # ----------------------------------------------------------- consumer side
    def accept_request(self, request: ConsRequest) -> None:
        """A vl_fetch packet arrived over the network."""
        request.arrived_at = self.env.now
        self.stats.add("request_arrivals")
        self.pipeline.stamp(request.txn, TxnState.ARRIVED, request.sqi)
        if not self.pipeline.admit_request(request):
            # consBuf exhausted: the store is NACKed; the consumer's poll
            # loop re-issues the fetch later.
            self.stats.add("requests_dropped")
            self.pipeline.stamp(request.txn, TxnState.DROPPED, request.sqi, "NACK")
            return

    # ------------------------------------------------------------ push path
    def _dispatch(self, entry: ProdEntry, line: ConsumerLine, speculative: bool) -> None:
        """Send one stash packet to *line* and handle the response."""
        entry.attempts += 1
        self.stats.add("push_attempts")
        self.stats.add("spec_pushes" if speculative else "ondemand_pushes")
        self.pipeline.stamp(
            entry.message.txn,
            TxnState.STASHED,
            entry.sqi,
            "speculative" if speculative else "on-demand",
        )
        # On NoC topologies the stash crosses the device→consumer distance
        # (and the response signal rides the same distance back).
        src = self.network.srd_node(self.srd_index)
        dst = self.network.core_node(line.core_id)
        delivered = self.network.transit(
            PacketKind.STASH, txn=entry.message.txn, src=src, dst=dst
        )

        def on_delivery(_ev) -> None:
            vacate_time = line.last_vacate_time
            hit = line.try_fill(
                entry.message,
                entry.message.transaction_id,
                unconfirmed=entry.spec_unconfirmed,
            )
            if hit:
                txn = entry.message.transaction_id
                self.pipeline.trace(
                    EventKind.LINE_VACATE, vacate_time, txn, entry.sqi
                )
                self.pipeline.trace(
                    EventKind.LINE_FILL, self.env.now, txn, entry.sqi,
                    detail="speculative" if speculative else "on-demand",
                )
            # The hit/miss response signal rides back to the device.
            self.network.response(src=dst, dst=src).subscribe(
                lambda _r: self._on_response(entry, line, hit, speculative)
            )

        delivered.subscribe(on_delivery)

    def _on_response(
        self, entry: ProdEntry, line: ConsumerLine, hit: bool, speculative: bool
    ) -> None:
        row = self.linktab.row(entry.sqi)
        verdict = None
        if speculative:
            verdict = self.pipeline.speculation.on_response(entry, hit, self.env.now)
        self.pipeline.stamp(
            entry.message.txn, TxnState.RESPONDED, entry.sqi,
            "hit" if hit else "miss",
        )
        if verdict == "rollback":
            # A burst misprediction cancelled this push: it is charged as a
            # wasted speculative push, the packet is stamped ROLLED_BACK,
            # and the policy owns its continuation (invalidating a landed
            # line over the network, re-injecting the message FIFO-front).
            self.stats.add("push_failures")
            self.stats.add("spec_failures")
            self.pipeline.stamp(
                entry.message.txn, TxnState.ROLLED_BACK, entry.sqi, "burst"
            )
            self.pipeline.speculation.complete_rollback(entry, hit, self.env.now)
            self.pipeline.kick(row)
            return
        if hit:
            self.stats.add("push_hits")
            self.stats.add("spec_hits" if speculative else "ondemand_hits")
            self.release_entry(entry.sqi, entry.message.credit_pool)
        else:
            self.stats.add("push_failures")
            self.stats.add("spec_failures" if speculative else "ondemand_failures")
            target = (
                self.pipeline.speculation.retry(entry, self.env.now)
                if speculative and entry.spec_entry_index is not None
                else None
            )
            if target is not None:
                # Sticky retry: the packet keeps its assigned slot so
                # younger packets cannot be delivered ahead of it.
                self.pipeline.redispatch(entry, target)
            else:
                entry.spec_entry_index = None
                # Figure 5: the prodBuf entry re-enters the mapping pipeline.
                self.pipeline.requeue(entry)
        self.pipeline.kick(row)

    # -------------------------------------------------------- speculation API
    def register_spec_target(self, endpoint) -> None:
        """Handle ``spamer_register`` stores (delegates to the policy)."""
        return self.pipeline.speculation.register(endpoint)

    # ------------------------------------------------------------------ metrics
    @property
    def push_attempts(self) -> int:
        return self.stats.get("push_attempts")

    @property
    def push_failures(self) -> int:
        return self.stats.get("push_failures")

    def failure_rate(self) -> float:
        """Failed pushes out of all pushes (Figure 10a)."""
        attempts = self.push_attempts
        return self.push_failures / attempts if attempts else 0.0
