"""The Virtual-Link Routing Device (VLRD) — the baseline hardware queue.

The VLRD (Section 2, Figures 2–5) is attached to the coherence network and
moves cachelines from producer endpoints to consumer endpoints:

1. ``vl_push`` copies producer data into a **prodBuf** entry (ownership
   transfers to the device; the producer's line stays writable).
2. ``vl_fetch`` registers a consumer cacheline address in a **consBuf**
   entry.
3. The three-stage *address mapping* pipeline pairs the two on the same SQI:
   a matched packet enters the sending queue and is stashed into the
   consumer cacheline; an unmatched packet is parked on the SQI's buffering
   queue in **linkTab**.
4. The target cache controller answers each stash with a hit/miss response:
   a hit frees the prodBuf entry; a miss re-enters the packet into the
   mapping pipeline (Figure 5, path B/C).

This class implements the full on-demand path and exposes two extension
points the SPAMeR device (:class:`repro.spamer.srd.SpamerRoutingDevice`)
overrides: :meth:`_speculation_target` (consult specBuf when no request is
pending) and :meth:`_on_spec_response` (feed the delay-prediction
algorithm).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import SystemConfig
from repro.errors import RegistrationError
from repro.mem.bus import CoherenceNetwork, PacketKind
from repro.mem.cacheline import ConsumerLine
from repro.sim.resources import Resource
from repro.sim.stats import Counter
from repro.sim.trace import EventKind, TraceRecorder
from repro.vlink.linktab import LinkRow, LinkTab
from repro.vlink.packets import ConsRequest, Message, ProdEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class SpecTarget:
    """A speculation decision: where and when to push (SRD only)."""

    __slots__ = ("line", "entry_index", "send_tick")

    def __init__(self, line: ConsumerLine, entry_index: int, send_tick: int) -> None:
        self.line = line
        self.entry_index = entry_index
        self.send_tick = send_tick


class VirtualLinkRoutingDevice:
    """Baseline on-demand routing device."""

    kind = "VLRD"

    def __init__(
        self,
        env: "Environment",
        config: SystemConfig,
        network: CoherenceNetwork,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.network = network
        self.trace = trace or TraceRecorder(env, enabled=False)
        self.linktab = LinkTab(config.linktab_entries)
        #: prodBuf admission is two-tier: a small per-SQI *reserve*
        #: guarantees every queue forward progress (no head-of-line
        #: deadlock when one producer hoards entries — also the Section 3.6
        #: DoS mitigation, MPAM-style per-partition limits), while the
        #: remaining entries form a *shared* pool that lets a bursty queue
        #: build a real backlog, matching the dynamically-shared entries of
        #: the physical design.
        self._reserved_credits: dict = {}
        self._shared_credits: Optional[Resource] = None
        self._reserve_per_sqi: Optional[int] = None
        self._consbuf_occupancy = 0
        self.stats = Counter()

    # ----------------------------------------------------- admission control
    def finalize_capacity(self, num_sqis: Optional[int] = None) -> None:
        """Fix the prodBuf admission tiers once all queues exist.

        Called lazily at the first push: every SQI gets a reserve of 2
        entries (1 when more than half the entries would be reserved), and
        the remainder is shared first-come-first-served.
        """
        if self._reserve_per_sqi is not None:
            return
        n = num_sqis if num_sqis is not None else max(1, len(self.linktab))
        reserve = 2 if 2 * n <= self.config.prodbuf_entries else 1
        self._reserve_per_sqi = reserve
        shared = max(0, self.config.prodbuf_entries - reserve * n)
        self._shared_credits = Resource(
            self.env, max(1, shared), name="prodBuf[shared]"
        )

    def _reserved(self, sqi: int) -> Resource:
        if self._reserve_per_sqi is None:
            self.finalize_capacity()
        if sqi not in self._reserved_credits:
            self._reserved_credits[sqi] = Resource(
                self.env, self._reserve_per_sqi, name=f"prodBuf[sqi={sqi}]"
            )
        return self._reserved_credits[sqi]

    def acquire_entry(self, sqi: int):
        """Claim a prodBuf entry for a push; returns ``(event, pool)``.

        Takes a shared entry when one is free; otherwise falls back to the
        SQI's reserve (waiting on it if occupied — the reserve is the
        forward-progress guarantee, so waiters queue there rather than on
        the shared pool).
        """
        if self._reserve_per_sqi is None:
            self.finalize_capacity()
        assert self._shared_credits is not None
        if self._shared_credits.try_acquire():
            done = self.env.event()
            done.succeed()
            return done, "shared"
        return self._reserved(sqi).acquire(), "reserved"

    def release_entry(self, sqi: int, pool: Optional[str]) -> None:
        """Return a prodBuf entry to the pool it was claimed from.

        ``pool=None`` (a message injected without admission) is a no-op.
        """
        if pool is None:
            return
        if pool == "shared":
            assert self._shared_credits is not None
            self._shared_credits.release()
        else:
            self._reserved(sqi).release()

    @property
    def entries_in_use(self) -> int:
        """prodBuf occupancy across both admission tiers."""
        shared = self._shared_credits.in_use if self._shared_credits else 0
        return shared + sum(r.in_use for r in self._reserved_credits.values())

    # ------------------------------------------------------------------ helpers
    def _after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* cycles (device-internal sequencing)."""
        self.env.timeout(delay).subscribe(lambda _ev: fn())

    # ----------------------------------------------------------- producer side
    def accept_push(self, message: Message) -> None:
        """A vl_push packet arrived over the network (credit already held)."""
        self.stats.add("data_arrivals")
        self.trace.record(EventKind.DATA_ARRIVE, message.transaction_id, message.sqi)
        entry = ProdEntry(message, arrived_at=self.env.now)
        self._after(self.config.srd_pipeline_latency, lambda: self._map(entry))

    def _map(self, entry: ProdEntry) -> None:
        """Address-mapping pipeline outcome for one prodBuf entry."""
        row = self.linktab.row(entry.sqi)
        if row.buffered_data:
            # Keep per-SQI FIFO: fresh arrivals queue behind parked packets.
            row.buffered_data.append(entry)
            self._kick(row)
            return
        self._map_front(row, entry)

    def _map_front(self, row: LinkRow, entry: ProdEntry) -> None:
        """Map *entry* (known to be the oldest packet of its SQI)."""
        request = self._pop_request(row)
        if request is not None:
            self.trace.record_at(
                EventKind.REQUEST_ARRIVE,
                request.arrived_at,
                entry.message.transaction_id,
                entry.sqi,
            )
            self._dispatch(entry, request.line, speculative=False)
            return
        spec = self._speculation_target(row, entry)
        if spec is not None:
            entry.spec_entry_index = spec.entry_index
            delay = max(0, spec.send_tick - self.env.now)
            self.stats.add("spec_selected")
            self._after(delay, lambda: self._dispatch(entry, spec.line, speculative=True))
            return
        row.buffered_data.append(entry)
        self.stats.add("buffered")

    # ----------------------------------------------------------- consumer side
    def accept_request(self, request: ConsRequest) -> None:
        """A vl_fetch packet arrived over the network."""
        request.arrived_at = self.env.now
        self.stats.add("request_arrivals")
        if self._consbuf_occupancy >= self.config.consbuf_entries:
            # consBuf exhausted: the store is NACKed; the consumer's poll
            # loop re-issues the fetch later.
            self.stats.add("requests_dropped")
            return
        self._consbuf_occupancy += 1
        self._after(self.config.srd_pipeline_latency, lambda: self._on_request(request))

    def _on_request(self, request: ConsRequest) -> None:
        row = self.linktab.row(request.sqi)
        if not row.buffered_data and any(
            pending.line is request.line for pending in row.pending_requests
        ):
            # Coalesce: a request for this cacheline is already registered
            # (an MSHR-style CAM match).  Re-issued fetches from the polling
            # loop would otherwise accumulate and exhaust consBuf.
            self._consbuf_occupancy -= 1
            self.stats.add("requests_coalesced")
            return
        if row.buffered_data:
            entry = row.buffered_data.popleft()
            self._consbuf_occupancy -= 1
            self.trace.record_at(
                EventKind.REQUEST_ARRIVE,
                request.arrived_at,
                entry.message.transaction_id,
                entry.sqi,
            )
            self._dispatch(entry, request.line, speculative=False)
        else:
            row.pending_requests.append(request)

    def _pop_request(self, row: LinkRow) -> Optional[ConsRequest]:
        if row.pending_requests:
            self._consbuf_occupancy -= 1
            return row.pending_requests.popleft()
        return None

    # ------------------------------------------------------------ push path
    def _dispatch(self, entry: ProdEntry, line: ConsumerLine, speculative: bool) -> None:
        """Send one stash packet to *line* and handle the response."""
        entry.attempts += 1
        self.stats.add("push_attempts")
        self.stats.add("spec_pushes" if speculative else "ondemand_pushes")
        delivered = self.network.transit(PacketKind.STASH)

        def on_delivery(_ev) -> None:
            vacate_time = line.last_vacate_time
            hit = line.try_fill(entry.message, entry.message.transaction_id)
            if hit:
                txn = entry.message.transaction_id
                self.trace.record_at(EventKind.LINE_VACATE, vacate_time, txn, entry.sqi)
                self.trace.record(
                    EventKind.LINE_FILL, txn, entry.sqi,
                    detail="speculative" if speculative else "on-demand",
                )
            # The hit/miss response signal rides back to the device.
            self.network.response().subscribe(
                lambda _r: self._on_response(entry, line, hit, speculative)
            )

        delivered.subscribe(on_delivery)

    def _on_response(
        self, entry: ProdEntry, line: ConsumerLine, hit: bool, speculative: bool
    ) -> None:
        row = self.linktab.row(entry.sqi)
        if speculative:
            self._on_spec_response(entry, hit)
        if hit:
            self.stats.add("push_hits")
            self.stats.add("spec_hits" if speculative else "ondemand_hits")
            self.release_entry(entry.sqi, entry.message.credit_pool)
        else:
            self.stats.add("push_failures")
            self.stats.add("spec_failures" if speculative else "ondemand_failures")
            entry.spec_entry_index = None
            # Figure 5: the prodBuf entry re-enters the mapping pipeline.
            self._after(
                self.config.srd_pipeline_latency,
                lambda: self._map(entry),
            )
        self._kick(row)

    def _kick(self, row: LinkRow) -> None:
        """Drain the SQI's buffering queue while targets are available."""
        while row.buffered_data:
            if row.pending_requests:
                entry = row.buffered_data.popleft()
                request = self._pop_request(row)
                assert request is not None
                self.trace.record_at(
                    EventKind.REQUEST_ARRIVE,
                    request.arrived_at,
                    entry.message.transaction_id,
                    entry.sqi,
                )
                self._dispatch(entry, request.line, speculative=False)
                continue
            spec = self._speculation_target(row, row.buffered_data[0])
            if spec is not None:
                entry = row.buffered_data.popleft()
                entry.spec_entry_index = spec.entry_index
                delay = max(0, spec.send_tick - self.env.now)
                self.stats.add("spec_selected")
                self._after(
                    delay, lambda e=entry, s=spec: self._dispatch(e, s.line, speculative=True)
                )
                continue
            break

    # -------------------------------------------------------- extension points
    def _speculation_target(self, row: LinkRow, entry: ProdEntry) -> Optional[SpecTarget]:
        """Baseline device never speculates."""
        return None

    def _on_spec_response(self, entry: ProdEntry, hit: bool) -> None:
        """Baseline device never receives speculative responses."""
        raise RegistrationError("VLRD received a speculative push response")

    def register_spec_target(self, endpoint) -> None:
        """spamer_register on the baseline device is an invalid access."""
        raise RegistrationError(
            "spamer_register executed against a baseline VLRD; build the "
            "system with SpamerRoutingDevice to use speculative pushes"
        )

    # ------------------------------------------------------------------ metrics
    @property
    def push_attempts(self) -> int:
        return self.stats.get("push_attempts")

    @property
    def push_failures(self) -> int:
        return self.stats.get("push_failures")

    def failure_rate(self) -> float:
        """Failed pushes out of all pushes (Figure 10a)."""
        attempts = self.push_attempts
        return self.push_failures / attempts if attempts else 0.0
