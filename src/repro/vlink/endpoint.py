"""Producer and consumer endpoints.

An endpoint is "a distinct address whose offsets serve as buffering points
for data" (Section 3.1): the library allocates each consumer endpoint a
page-aligned buffer of cachelines which it consumes round-robin, and each
producer endpoint a staging buffer it writes and ``vl_push``-es from.
Endpoints subscribe to a Shared Queue Identifier (SQI) to form M:N channels.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.errors import RegistrationError
from repro.mem.address import Segment
from repro.mem.cacheline import ConsumerLine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


class ProducerEndpoint:
    """A producer's subscription to an SQI.

    The producer side needs no line state machine: after ``vl_push`` the
    device owns the data and the producer's staging line returns to a
    writable state immediately (no coherence transition — Section 3.1).
    """

    def __init__(self, endpoint_id: int, sqi: int, segment: Segment, core_id: int) -> None:
        self.endpoint_id = endpoint_id
        self.sqi = sqi
        self.segment = segment
        self.core_id = core_id
        self.pushes = 0
        self.next_seq = 0

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProducerEndpoint {self.endpoint_id} sqi={self.sqi} core={self.core_id}>"


class ConsumerEndpoint:
    """A consumer's subscription to an SQI with its receive cachelines."""

    def __init__(
        self,
        env: "Environment",
        endpoint_id: int,
        sqi: int,
        segment: Segment,
        core_id: int,
        num_lines: int,
        spec_enabled: bool = False,
        hooks: Optional["HookBus"] = None,
    ) -> None:
        if num_lines < 1:
            raise RegistrationError("a consumer endpoint needs >= 1 cacheline")
        if num_lines > segment.num_lines:
            raise RegistrationError(
                f"{num_lines} lines do not fit the {segment.length}-byte segment"
            )
        self.env = env
        self.endpoint_id = endpoint_id
        self.sqi = sqi
        self.segment = segment
        self.core_id = core_id
        #: SPAMeR: registered in specBuf and using the fetch-free dequeue path.
        self.spec_enabled = spec_enabled
        self.lines: List[ConsumerLine] = [
            ConsumerLine(
                env, segment.line_addr(i), endpoint_id, i,
                hooks=hooks, core_id=core_id,
            )
            for i in range(num_lines)
        ]
        self._rr_index = 0
        self.pops = 0

    # -- round-robin consumption -------------------------------------------------
    @property
    def current_line(self) -> ConsumerLine:
        """The line the library will consume next (round-robin discipline)."""
        return self.lines[self._rr_index]

    def advance(self) -> None:
        """Move the round-robin pointer past the just-consumed line."""
        self._rr_index = (self._rr_index + 1) % len(self.lines)

    def oldest_valid_line(self) -> Optional[ConsumerLine]:
        """The next VALID line in round-robin order after the current one.

        Used by the library's stale-scan recovery: a stale prerequest can
        park a message in a future round-robin slot (Section 4.2's
        "prerequest" behaviour); scanning forward restores liveness.
        """
        n = len(self.lines)
        for step in range(n):
            line = self.lines[(self._rr_index + step) % n]
            if line.poppable:
                return line
        return None

    def retarget(self, line: ConsumerLine) -> None:
        """Point the round-robin index at *line* (stale-scan recovery)."""
        self._rr_index = line.index

    # -- metrics -----------------------------------------------------------------
    def empty_cycles(self) -> int:
        return sum(line.empty_cycles() for line in self.lines)

    def valid_cycles(self) -> int:
        return sum(line.valid_cycles() for line in self.lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ConsumerEndpoint {self.endpoint_id} sqi={self.sqi} "
            f"core={self.core_id} lines={len(self.lines)} "
            f"spec={'on' if self.spec_enabled else 'off'}>"
        )
