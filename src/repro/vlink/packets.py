"""Packet and buffer-entry types flowing through the routing device.

* :class:`Message` — one cacheline of application payload, tagged with a
  trace transaction id.
* :class:`ProdEntry` — a prodBuf entry: a message parked in the routing
  device awaiting a target (the producer's copy is released as soon as the
  device accepts the push — Section 3.1).
* :class:`ConsRequest` — a consBuf entry: one ``vl_fetch`` registering a
  consumer cacheline address for an SQI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.cacheline import ConsumerLine
    from repro.sim.transaction import TransactionRecord


@dataclass
class Message:
    """One queue message (a cacheline of payload)."""

    payload: Any
    sqi: int
    producer_id: int
    seq: int                 # per-producer sequence number (FIFO checking)
    transaction_id: int      # trace transaction id
    produced_at: int         # cycle the producer created the message
    #: Which prodBuf admission tier the message's entry came from
    #: ("shared" or "reserved"); None when the message was injected at
    #: device level without admission (unit tests, diagnostics).
    credit_pool: Optional[str] = None
    #: Lifecycle record stamped at every transition (None when the message
    #: was injected below the library layer).
    txn: Optional["TransactionRecord"] = None


@dataclass
class ProdEntry:
    """A prodBuf entry holding producer data inside the routing device."""

    message: Message
    arrived_at: int          # cycle the push packet reached the device
    attempts: int = 0        # push attempts so far (retries after misses)
    #: specBuf entry index of the in-flight speculative attempt (if any);
    #: used to clear the entry's on_fly throttle bit on the response.
    spec_entry_index: Optional[int] = None
    #: True when this attempt is a non-head member of a speculative burst:
    #: the stash lands unconfirmed (invisible to the consumer) until the
    #: burst head confirms, or is rolled back on a misprediction.
    spec_unconfirmed: bool = False

    @property
    def sqi(self) -> int:
        return self.message.sqi


@dataclass
class ConsRequest:
    """A consBuf entry: a consumer request for one cacheline."""

    sqi: int
    line: "ConsumerLine"
    issued_at: int           # cycle the consumer executed vl_fetch
    arrived_at: int = 0      # cycle the request reached the device
    prerequest: bool = False  # re-issued while polling (Section 4.2)
    #: Lifecycle record (kind="request") stamped at every transition.
    txn: Optional["TransactionRecord"] = None
