"""The user-space queue library (Sections 3.4 and 4.2).

This is the software layer the benchmarks link against — the reproduction of
the revised VL library:

* ``create_queue`` allocates an SQI (a linkTab row).
* ``open_producer`` / ``open_consumer`` allocate endpoint buffers at unique
  addresses and subscribe them to the SQI; speculative consumer endpoints
  are registered in specBuf with ``spamer_register`` before being returned
  to the application (Section 3.4), and their dequeue path *skips* the
  ``vl_select``/``vl_fetch`` issue entirely.
* ``push`` — write the staging line, ``vl_select`` + ``vl_push``; blocks
  only on prodBuf backpressure (ownership transfers to the device).
* ``pop`` — fast path when the round-robin line already holds data (an L1
  hit); otherwise the slow path issues a fetch (legacy endpoints), polls,
  and periodically re-issues the fetch — the re-issues are the paper's
  "prerequest" behaviour whose accidental-prefetch effects Section 4.2
  observes on VL.

Library-call overhead models Section 3.4's macro-inlining: with
``config.inline_library=False`` every push/pop pays ``call_overhead`` extra
cycles (the paper measured inlining worth ~1.02× on average).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import RegistrationError, WorkloadError
from repro.mem.bus import PacketKind
from repro.mem.cacheline import LineState
from repro.sim.hooks import DeliveryHook, PushHook, TraceHook, TransactionHook
from repro.sim.trace import EventKind
from repro.sim.transaction import TransactionRecord, TxnState
from repro.vlink.endpoint import ConsumerEndpoint, ProducerEndpoint
from repro.vlink.packets import ConsRequest, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class QueueLibrary:
    """Software API over the routing device; bound to one :class:`System`."""

    #: SQI 0 is reserved — a zero consHead means "no consumer request" in
    #: the Stage-3 multiplexer (Section 3.1), so valid SQIs start at 1.
    FIRST_SQI = 1

    def __init__(self, system: "System") -> None:
        self.system = system
        self.env = system.env
        self.config = system.config
        self._next_sqi = self.FIRST_SQI
        self._next_endpoint_id = 0
        self.producers: list = []
        self.consumers: list = []

    # ------------------------------------------------------------ queue setup
    def create_queue(self) -> int:
        """Allocate a fresh SQI (one linkTab row)."""
        sqi = self._next_sqi
        self._next_sqi += 1
        # Reserve the row eagerly on the owning router (SQIs shard across
        # routers when config.num_routers > 1).
        self.system.device_for(sqi).linktab.row(sqi)
        return sqi

    def open_producer(self, sqi: int, core_id: int) -> ProducerEndpoint:
        """Subscribe a producer endpoint on *core_id* to *sqi*."""
        self._check_core(core_id)
        segment = self.system.addr_space.alloc_endpoint_buffer(
            self.config.lines_per_endpoint
        )
        endpoint = ProducerEndpoint(self._take_endpoint_id(), sqi, segment, core_id)
        self.producers.append(endpoint)
        return endpoint

    def open_consumer(
        self,
        sqi: int,
        core_id: int,
        num_lines: Optional[int] = None,
        speculative: Optional[bool] = None,
    ) -> ConsumerEndpoint:
        """Subscribe a consumer endpoint on *core_id* to *sqi*.

        ``speculative=None`` follows the system default (on for SPAMeR
        builds); ``False`` requests a legacy endpoint whose registrations
        are skipped (Section 3.4's legacy option).

        ``num_lines=None`` picks the natural default: legacy (on-demand)
        endpoints get a single cacheline — the pop loop spins on one line
        and requests it on demand — while speculative endpoints get
        ``config.lines_per_endpoint`` lines registered in specBuf so pushes
        can land ahead of the consumer (incast's master registers 32,
        Section 4.3).
        """
        self._check_core(core_id)
        spec = self.system.spec_default if speculative is None else speculative
        if num_lines is not None:
            lines = num_lines
        else:
            lines = self.config.lines_per_endpoint if spec else 1
        segment = self.system.addr_space.alloc_endpoint_buffer(lines)
        if spec and not self.system.supports_speculation:
            raise RegistrationError(
                "speculative endpoint requested on a baseline Virtual-Link "
                "system; build System(device='spamer') or pass speculative=False"
            )
        endpoint = ConsumerEndpoint(
            self.env,
            self._take_endpoint_id(),
            sqi,
            segment,
            core_id,
            lines,
            spec_enabled=spec,
            hooks=self.system.hooks,
        )
        if spec:
            # spamer_register for each endpoint before handing it to the app.
            self.system.device_for(sqi).register_spec_target(endpoint)
        self.consumers.append(endpoint)
        return endpoint

    def _take_endpoint_id(self) -> int:
        eid = self._next_endpoint_id
        self._next_endpoint_id += 1
        return eid

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.config.num_cores:
            raise WorkloadError(
                f"core {core_id} out of range (system has {self.config.num_cores})"
            )

    def _stamp(
        self, txn: TransactionRecord, state: TxnState, detail: str = ""
    ) -> None:
        """Stamp a lifecycle transition and publish it on the hook bus."""
        txn.stamp(state, self.env.now, detail)
        hooks = self.system.hooks
        if hooks.wants(TransactionHook):
            hooks.publish(
                TransactionHook(
                    tick=self.env.now,
                    record=txn,
                    state=state,
                    sqi=txn.sqi,
                    detail=detail,
                )
            )

    # ------------------------------------------------------------------- push
    def push(self, producer: ProducerEndpoint, payload: Any) -> Generator:
        """Enqueue one message (``yield from`` inside a thread program)."""
        cfg = self.config
        cost = cfg.line_write_cost + cfg.push_instruction_cost
        if not cfg.inline_library:
            cost += cfg.call_overhead
        yield self.env.timeout(cost)
        # prodBuf backpressure: claim an entry from the shared pool, or
        # wait on this SQI's reserve (the forward-progress guarantee).
        device = self.system.device_for(producer.sqi)
        granted, pool = device.acquire_entry(producer.sqi)
        yield granted
        txn = self.system.transactions.open(producer.sqi)
        self._stamp(txn, TxnState.CREATED)
        message = Message(
            payload=payload,
            sqi=producer.sqi,
            producer_id=producer.endpoint_id,
            seq=producer.take_seq(),
            transaction_id=txn.tid,
            produced_at=self.env.now,
            credit_pool=pool,
            txn=txn,
        )
        producer.pushes += 1
        hooks = self.system.hooks
        if hooks.wants(PushHook):
            hooks.publish(
                PushHook(
                    tick=self.env.now,
                    sqi=message.sqi,
                    producer_id=message.producer_id,
                    seq=message.seq,
                    transaction_id=txn.tid,
                )
            )
        # vl_push is posted (writeback-like): the producer continues while
        # the packet traverses the network; ownership is with the device.
        network = self.system.network
        self.system.network.transit(
            PacketKind.PUSH_DATA,
            src=network.core_node(producer.core_id),
            dst=network.srd_node(device.srd_index),
        ).subscribe(lambda _ev, m=message: device.accept_push(m))
        return message

    # -------------------------------------------------------------------- pop
    def pop(self, consumer: ConsumerEndpoint) -> Generator:
        """Dequeue one message (``yield from`` inside a thread program)."""
        message = yield from self._pop_impl(consumer, stop_check=None)
        assert message is not None
        return message

    def pop_until(self, consumer: ConsumerEndpoint, stop_check) -> Generator:
        """Dequeue one message, or return None once *stop_check()* is true.

        The cancellable pop that M:N consumer workers use for termination:
        with many consumers sharing an SQI, per-worker message counts are
        decided dynamically by the routing device, so workers loop "pop
        until the shared work counter says everything is processed".
        """
        return self._pop_impl(consumer, stop_check=stop_check)

    def _pop_impl(self, consumer: ConsumerEndpoint, stop_check) -> Generator:
        cfg = self.config
        if not cfg.inline_library:
            yield self.env.timeout(cfg.call_overhead)

        if not consumer.spec_enabled:
            # Legacy dequeue: vl_select + vl_fetch are issued unconditionally
            # at the top of the pop — when data already sits in the line
            # (fast path) the fetch is *stale* by the time it reaches the
            # device: the paper's "prerequest" (Section 4.2), which acts as
            # an unguided prefetch for the next message (and fails when that
            # message lands while the line is still full).
            yield self.env.timeout(cfg.fetch_instruction_cost)
            self._send_request(
                consumer,
                prerequest=consumer.current_line.state is LineState.VALID,
            )

        line = consumer.current_line
        if not line.poppable:
            # ---- slow path: poll the line until the stash lands (a VALID
            # line whose burst fill is still unconfirmed is not poppable —
            # delivering it would jump the predicted order).
            stall_start = self.env.now
            since_fetch = 0
            refetch_after = cfg.refetch_interval
            while not consumer.current_line.poppable:
                if (
                    cfg.spin_then_yield
                    and self.env.now - stall_start >= cfg.spin_threshold
                ):
                    # Optional spin-then-yield discipline (ablation knob):
                    # deschedule after the spin window; the wake quantum
                    # coarsens delivery detection.
                    quantum = cfg.yield_penalty
                else:
                    quantum = cfg.poll_interval
                yield self.env.timeout(quantum)
                if stop_check is not None and stop_check():
                    return None
                since_fetch += quantum
                if not consumer.spec_enabled and since_fetch >= refetch_after:
                    # Re-issue the fetch.  The first re-issue races the
                    # expected stash (refetch_interval ≈ the load-to-use
                    # round trip) — the "prerequest" of Section 4.2; the
                    # interval then backs off exponentially so long waits
                    # (wavefront stalls) do not spam the network, and a
                    # request NACKed by a full consBuf is still recovered.
                    self._send_request(consumer, prerequest=True)
                    since_fetch = 0
                    refetch_after = min(refetch_after * 2, 1 << 16)
                if self.env.now - stall_start >= cfg.stale_scan_threshold:
                    recovered = consumer.oldest_valid_line()
                    if recovered is not None:
                        consumer.retarget(recovered)
                        break
                    stall_start = self.env.now
            # Spin-loop exit: branch recovery / pipeline refill.
            yield self.env.timeout(cfg.slow_path_penalty)
            line = consumer.current_line

        # ---- fast path / delivery: read, trace first use, vacate.
        hooks = self.system.hooks
        if hooks.wants(TraceHook):
            hooks.publish(
                TraceHook(
                    tick=self.env.now,
                    kind=EventKind.FIRST_USE,
                    transaction_id=line.fill_txn or 0,
                    sqi=consumer.sqi,
                )
            )
        yield self.env.timeout(cfg.pop_fast_path_cost)
        message = line.consume()
        if message.txn is not None:
            self._stamp(message.txn, TxnState.RETIRED)
        if hooks.wants(DeliveryHook):
            hooks.publish(
                DeliveryHook(
                    tick=self.env.now,
                    sqi=message.sqi,
                    endpoint_id=consumer.endpoint_id,
                    producer_id=message.producer_id,
                    seq=message.seq,
                    transaction_id=message.transaction_id,
                )
            )
        self.system.latency_stats.add(self.env.now - message.produced_at)
        consumer.advance()
        consumer.pops += 1
        return message

    def _send_request(self, consumer: ConsumerEndpoint, prerequest: bool) -> None:
        """Fire a vl_fetch packet at the device (posted, non-blocking)."""
        txn = self.system.transactions.open(consumer.sqi, kind="request")
        self._stamp(txn, TxnState.CREATED, "prerequest" if prerequest else "")
        request = ConsRequest(
            sqi=consumer.sqi,
            line=consumer.current_line,
            issued_at=self.env.now,
            prerequest=prerequest,
            txn=txn,
        )
        network = self.system.network
        device = self.system.device_for(consumer.sqi)
        network.transit(
            PacketKind.REQUEST,
            src=network.core_node(consumer.core_id),
            dst=network.srd_node(device.srd_index),
        ).subscribe(lambda _ev, r=request, d=device: d.accept_request(r))
