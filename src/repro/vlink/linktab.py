"""The linkTab: per-SQI metadata inside the routing device.

Physically the VLRD keeps head/tail register pairs indexing shared prodBuf /
consBuf entries (Figure 4/5); logically each SQI owns two FIFOs — buffered
producer data awaiting a target, and pending consumer requests awaiting
data.  We model the logical FIFOs directly; the *shared-entry* capacity
limits are enforced globally by the routing device (prodBuf credits,
consBuf occupancy), exactly as the dynamically-shared entries of the real
design behave.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import RegistrationError
from repro.vlink.packets import ConsRequest, ProdEntry


class LinkRow:
    """One linkTab row: the logical queues of a single SQI."""

    __slots__ = ("sqi", "buffered_data", "pending_requests", "spec_head")

    def __init__(self, sqi: int) -> None:
        self.sqi = sqi
        #: Producer packets with no target yet (prodHead/prodTail queue).
        self.buffered_data: Deque[ProdEntry] = deque()
        #: Registered consumer requests (consHead/consTail queue).
        self.pending_requests: Deque[ConsRequest] = deque()
        #: Index into specBuf of the next speculation candidate (SPAMeR,
        #: the linkTabSpec extension — Section 3.2).  None = no spec entry.
        self.spec_head: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkRow sqi={self.sqi} data={len(self.buffered_data)} "
            f"reqs={len(self.pending_requests)} specHead={self.spec_head}>"
        )


class LinkTab:
    """The table of :class:`LinkRow` entries, bounded by the hardware size."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise RegistrationError(f"linkTab capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rows: Dict[int, LinkRow] = {}

    def row(self, sqi: int) -> LinkRow:
        """Return the row for *sqi*, allocating it on first use."""
        if sqi not in self._rows:
            if len(self._rows) >= self.capacity:
                raise RegistrationError(
                    f"linkTab full: cannot allocate SQI {sqi} "
                    f"(capacity {self.capacity})"
                )
            self._rows[sqi] = LinkRow(sqi)
        return self._rows[sqi]

    def __contains__(self, sqi: int) -> bool:
        return sqi in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Dict[int, LinkRow]:
        return self._rows
