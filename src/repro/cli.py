"""Command-line interface: regenerate any table or figure from a shell.

Examples::

    python -m repro table1
    python -m repro fig8 --scale 0.25
    python -m repro run FIR --setting tuned --trace
    python -m repro fig11 incast --scale 0.1
    python -m repro autotune FIR --budget 20
    python -m repro motivation
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval.experiments import (
    comparison_experiment,
    inlining_experiment,
    render_fig8,
    render_fig9,
    render_fig10a,
    render_fig10b,
    render_table1,
    render_table2,
    trace_experiment,
)
from repro.eval.report import format_speedup, format_table, format_trace_rows
from repro.eval.runner import (
    Setting,
    available_setting_names,
    run_workload,
    setting_by_name,
)
from repro.workloads.registry import workload_names


def _setting_names() -> tuple:
    """Registry-driven: every registered device/zero-arg algorithm shows up."""
    return tuple(available_setting_names())


def _setting(name: str) -> Setting:
    return setting_by_name(name)


def _config(args):
    """Config override from kernel/burst flags (None = shipped defaults).

    Built only when a flag deviates from the shipped default, so default
    invocations keep ``config=None`` and stay on the golden path.
    """
    overrides = {}
    sched = getattr(args, "scheduler", None)
    if sched and sched != "heap":
        overrides["scheduler"] = sched
    burst_k = getattr(args, "burst_k", None)
    if burst_k is not None:
        overrides["burst_k"] = burst_k
    p_min = getattr(args, "p_min", None)
    if p_min is not None:
        overrides["p_min"] = p_min
    if overrides:
        from repro.config import SystemConfig

        return SystemConfig(**overrides)
    return None


def _grid(args):
    return comparison_experiment(scale=args.scale, seed=args.seed,
                                 config=_config(args),
                                 jobs=getattr(args, "jobs", None))


def cmd_table1(_args) -> None:
    print(render_table1())


def cmd_table2(_args) -> None:
    print(render_table2())


def cmd_fig7(args) -> None:
    from repro.eval.runner import run_workload_traced

    if args.csv:
        # Export the full reconstructed trace as CSV for external plotting.
        _metrics, system = run_workload_traced(
            "incast", _setting(args.setting), scale=args.scale, seed=args.seed
        )
        with open(args.csv, "w") as fh:
            fh.write(system.trace.to_csv())
        print(f"wrote {args.csv}")
        return
    result = trace_experiment(setting=_setting(args.setting), scale=args.scale,
                              seed=args.seed)
    txns = result.transactions
    mid = txns[len(txns) // 2].line_fill or 0
    print(format_trace_rows(txns, mid - args.window, mid + args.window))
    print(
        f"\ntransactions={len(txns)} speculative={result.speculative_count} "
        f"request-bound={result.request_bound_count} "
        f"potential-saving={result.total_potential_saving} cycles"
    )


def cmd_fig8(args) -> None:
    print(render_fig8(_grid(args)))


def cmd_fig9(args) -> None:
    print(render_fig9(_grid(args)))


def cmd_fig10a(args) -> None:
    print(render_fig10a(_grid(args)))


def cmd_fig10b(args) -> None:
    print(render_fig10b(_grid(args)))


def cmd_fig11(args) -> None:
    from repro.eval.sweep import sensitivity_sweep

    points = sensitivity_sweep(args.workload, scale=args.scale, seed=args.seed,
                               jobs=getattr(args, "jobs", None))
    rows = [
        [p.label, p.params.label() if p.params else "-",
         f"{p.normalized_delay:.3f}", f"{p.normalized_energy:.3f}"]
        for p in points
    ]
    print(format_table(["algorithm", "params", "delay", "energy"], rows,
                       title=f"Figure 11 panel: {args.workload}"))


def cmd_run(args) -> None:
    hist = None
    verify = getattr(args, "verify", False)
    jobs = getattr(args, "jobs", None)
    captured = {}

    def on_system(system) -> None:
        captured["system"] = system
        if hist is not None:
            hist.attach(system.hooks)

    if getattr(args, "hook_stats", False):
        from repro.eval.metrics import StageLatencyHistogram

        hist = StageLatencyHistogram()

    if jobs not in (None, 1) and hist is None:
        # Route the run through the multiprocess executor — same metrics,
        # exercised worker path (handy as a parallel-executor smoke test).
        from repro.eval.parallel import RunRequest, run_requests

        request = RunRequest.from_setting(
            args.workload, _setting(args.setting), scale=args.scale,
            seed=args.seed, config=_config(args), verify=verify,
        )
        m = run_requests([request], jobs=jobs)[0]
    else:
        m = run_workload(args.workload, _setting(args.setting), scale=args.scale,
                         seed=args.seed, config=_config(args),
                         on_system=on_system, verify=verify)
    rows = [
        ["execution", f"{m.exec_cycles} cycles ({m.exec_ms:.3f} ms)"],
        ["messages", m.messages_delivered],
        ["push attempts", m.push_attempts],
        ["push failures", f"{m.push_failures} ({m.failure_rate:.1%})"],
        ["speculative pushes", m.spec_pushes],
        ["push precision", f"{m.push_precision:.1%}"],
        ["push recall", f"{m.push_recall:.1%}"],
        ["wasted push bytes", m.wasted_push_bytes],
        ["bus utilization", f"{m.bus_utilization:.1%}"],
        ["avg line empty cycles", f"{m.avg_line_empty:.0f}"],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} under {_setting(args.setting).label}"))
    if verify and captured.get("system") is not None:
        verifier = captured["system"].verifier
        if verifier is not None:
            # quiesce() in the runner already raised on any violation, so
            # reaching here means a clean bill of health.
            print()
            print(f"verification: PASS ({verifier.summary()})")
    elif verify:
        # Worker-process run: quiesce() already raised on any violation
        # before the metrics crossed the process boundary.
        print()
        print("verification: PASS (checked in worker process)")
    if hist is not None:
        print()
        print("per-stage transaction latency histograms (cycles)")
        print(hist.render())


def cmd_obs(args) -> None:
    """Fully-observed runs: Perfetto trace, metrics JSON, accuracy summary."""
    from repro.obs.runner import (
        ObsRequest,
        SMOKE_SCALE,
        run_obs,
        smoke_requests,
    )

    scale = args.scale if args.scale is not None else SMOKE_SCALE
    if args.workload == "smoke":
        requests = smoke_requests(scale=scale, seed=args.seed)
    else:
        requests = [
            ObsRequest(args.workload, args.setting, scale=scale,
                       seed=args.seed, pid_base=0)
        ]
    result = run_obs(requests, jobs=getattr(args, "jobs", None))

    wrote = False
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(result.trace_json())
        print(f"wrote Perfetto trace to {args.trace} "
              f"(load at https://ui.perfetto.dev)")
        wrote = True
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(result.metrics_json())
        print(f"wrote metrics to {args.metrics}")
        wrote = True
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(result.jsonl())
        print(f"wrote JSONL event stream to {args.jsonl}")
        wrote = True
    if args.summary or not wrote:
        print(result.summary())


def cmd_area(_args) -> None:
    from repro.eval.areapower import estimate_srd_area, estimate_vlrd_area

    srd, vlrd = estimate_srd_area(), estimate_vlrd_area()
    rows = [[k, f"{v:.4f}"] for k, v in srd.buffers_mm2.items()]
    rows += [
        ["control/other", f"{srd.control_mm2:.4f}"],
        ["TOTAL SRD", f"{srd.total_mm2:.4f}"],
        ["TOTAL VLRD", f"{vlrd.total_mm2:.4f}"],
        ["SRD/VLRD", f"{srd.total_mm2 / vlrd.total_mm2:.3f}"],
        ["share of 16-core SoC", f"{srd.share_of_soc():.2%}"],
    ]
    print(format_table(["structure", "mm^2 @ 16nm"], rows,
                       title="Section 4.5: area estimate"))


def cmd_power(_args) -> None:
    from repro.eval.areapower import paper_power_bounds

    rows = [
        [label, f"{est.dynamic_mw:.2f}", f"{est.leakage_mw:.2f}",
         f"{est.total_mw:.2f}", f"{est.share_of_soc():.3%}"]
        for label, est in paper_power_bounds().items()
    ]
    print(format_table(
        ["setting", "dynamic mW", "leakage mW", "total mW", "SoC share"],
        rows, title="Section 4.5: power bounds"))


def cmd_inline(args) -> None:
    res = inlining_experiment(scale=args.scale, seed=args.seed)
    rows = [[k, format_speedup(v)] for k, v in res.items()]
    print(format_table(["benchmark", "inlining speedup"], rows,
                       title="Section 3.4: function inlining"))


def cmd_motivation(_args) -> None:
    from repro.swqueue import motivation_experiment

    rows = [
        [r.mechanism, f"{r.cycles_per_message:.1f}", r.coherence_packets]
        for r in motivation_experiment(messages=400).values()
    ]
    print(format_table(["mechanism", "cycles/message", "packets"], rows,
                       title="Figure 1: cross-core latency by mechanism"))


def cmd_autotune(args) -> None:
    if getattr(args, "burst", False):
        _autotune_burst(args)
        return
    from repro.eval.autotune import autotune

    r = autotune(args.workload, scale=args.scale, seed=args.seed,
                 max_evaluations=args.budget)
    rows = [
        ["best parameters", r.best_params.label()],
        ["best score (delay + 0.05*energy)", f"{r.best_score:.3f}"],
        ["paper parameters score", f"{r.paper_score:.3f}"],
        ["improvement over paper set", format_speedup(r.improvement_over_paper)],
        ["simulations used", r.evaluations],
    ]
    print(format_table(["result", "value"], rows,
                       title=f"Parameter search: {args.workload}"))


def _autotune_burst(args) -> None:
    """The multi-push (k, p_min) grid: frontier table plus the winner."""
    from repro.eval.autotune import autotune_burst

    ks = [int(v) for v in args.ks.split(",") if v.strip()]
    p_mins = [float(v) for v in args.p_mins.split(",") if v.strip()]
    r = autotune_burst(
        args.workload, ks=ks, p_mins=p_mins, scale=args.scale,
        seed=args.seed, rho=args.rho, jobs=getattr(args, "jobs", None),
        executor=_serve_executor(args),
    )
    unit = "p99 sojourn" if r.rho is not None else "exec cycles"
    rows = [
        [p.burst_k, f"{p.p_min:g}", f"{p.score:.0f}",
         format_speedup(p.speedup_over(r.baseline_score))]
        for p in r.frontier()
    ]
    suffix = f" at rho={r.rho:g}" if r.rho is not None else ""
    print(format_table(
        ["k", "p_min", unit, "vs tuned"], rows,
        title=f"Multi-push frontier: {args.workload}{suffix} "
              f"(tuned {unit}: {r.baseline_score:.0f})"))
    best = r.best
    print(
        f"\nbest point: k={best.burst_k} p_min={best.p_min:g} "
        f"({format_speedup(r.best_speedup)} vs tuned single-push)"
    )


def cmd_replicate(args) -> None:
    from repro.eval.replication import replicated_comparison

    seeds = [args.seed + i for i in range(args.seeds)]
    result = replicated_comparison(seeds=seeds, scale=args.scale,
                                   jobs=getattr(args, "jobs", None))
    rows = [[label, str(stat)] for label, stat in result.geomeans.items()]
    print(format_table(["setting", "geomean speedup (95% CI)"], rows,
                       title=f"Figure 8 geomeans over {args.seeds} seeds"))


def _serve_executor(args):
    """A remote ServeExecutor when ``--serve SPOOL`` was given, else None."""
    spool = getattr(args, "serve", None)
    if not spool:
        return None
    from repro.serve import ServeExecutor

    return ServeExecutor.remote(spool)


def cmd_batch(args) -> None:
    from repro.eval.batch import run_batch_file, summarize_report

    report = run_batch_file(args.spec, report_path=args.out,
                            jobs=getattr(args, "jobs", None),
                            executor=_serve_executor(args))
    print(format_table(["workload", "setting", "mean speedup"],
                       summarize_report(report),
                       title=f"Batch study: {report['name']}"))
    if args.out:
        print(f"full report written to {args.out}")


def cmd_scale(args) -> None:
    """The interconnect scaling study: cores x topology x device."""
    from repro.eval.scaling import scaling_experiment

    cores = [int(v) for v in args.cores.split(",") if v.strip()]
    topologies = [t.strip() for t in args.topology.split(",") if t.strip()]
    settings = [s.strip() for s in args.settings.split(",") if s.strip()]
    result = scaling_experiment(
        cores=cores,
        topologies=topologies,
        settings=settings,
        scale=args.scale,
        seed=args.seed,
        num_srds=args.srds,
        verify=getattr(args, "verify", False),
        jobs=getattr(args, "jobs", None),
        base=_config(args),
    )
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.to_json())
            fh.write("\n")
        print(f"\nwrote JSON report to {args.out}")


def cmd_load(args) -> None:
    """The open-system load sweep: tail latency vs offered load."""
    from repro.eval.load import load_experiment

    topologies = [t.strip() for t in args.topology.split(",") if t.strip()]
    settings = [s.strip() for s in args.settings.split(",") if s.strip()]
    rhos = [float(v) for v in args.rhos.split(",") if v.strip()]
    result = load_experiment(
        workload=args.workload,
        arrival=args.arrival,
        settings=settings,
        topologies=topologies,
        rhos=rhos,
        scale=args.scale,
        seed=args.seed,
        churn=args.churn,
        jobs=getattr(args, "jobs", None),
        base=_config(args),
        executor=_serve_executor(args),
    )
    print(result.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.to_json())
            fh.write("\n")
        print(f"\nwrote JSON report to {args.out}")


# --------------------------------------------------------------------- serve
#: The serve smoke grid: the fig8 smoke matrix at obs smoke scale.
SERVE_GRIDS = {"fig8-quick": ("ping-pong", "incast")}
SERVE_GRID_SETTINGS = ("vl", "tuned")
SERVE_GRID_SCALE = 0.05


def _serve_grid_requests(grid: str, scale: float, seed: int):
    from repro.eval.parallel import RunRequest

    workloads = SERVE_GRIDS[grid]
    return [
        RunRequest.from_setting(workload, _setting(name), scale=scale,
                                seed=seed)
        for workload in workloads
        for name in SERVE_GRID_SETTINGS
    ]


def cmd_serve_start(args) -> None:
    """Run the daemon in the foreground until stopped (``repro serve stop``)."""
    from repro.serve import ServeDaemon, Spool

    spool = Spool(args.spool)
    daemon = ServeDaemon(
        spool=spool,
        jobs=args.jobs,
        policy=args.policy,
        max_depth=args.max_depth,
        cache=not args.no_cache,
    )
    print(f"serving spool {spool.root} "
          f"(policy={args.policy}, workers={daemon.workers}, "
          f"max-depth={args.max_depth}, "
          f"cache={'off' if args.no_cache else 'on'})",
          flush=True)
    daemon.serve_forever(poll_s=args.poll)


def cmd_serve_submit(args) -> None:
    """Submit one run — or a named grid — and optionally wait for results."""
    import dataclasses
    import json as _json

    from repro.serve import ServeClient

    client = ServeClient(args.spool)
    if args.grid:
        requests = _serve_grid_requests(args.grid, args.scale, args.seed)
    else:
        if not args.workload:
            raise SystemExit("serve submit needs a workload or --grid")
        from repro.eval.parallel import RunRequest

        requests = [
            RunRequest.from_setting(args.workload, _setting(args.setting),
                                    scale=args.scale, seed=args.seed)
        ]
    job_ids = [
        client.submit(request, priority=args.priority) for request in requests
    ]
    for request, job_id in zip(requests, job_ids):
        print(f"submitted {job_id}  {request.workload}/{request.label}")
    if not args.wait:
        return

    metrics_list = client.results(job_ids, timeout=args.timeout)
    hits = sum(
        1 for job_id in job_ids
        if client.status(job_id).get("cache_hit", False)
    )
    print(f"cache hits: {hits}/{len(job_ids)}")
    doc = {
        "cells": [
            {
                "workload": request.workload,
                "setting": metrics.setting,
                "seed": request.seed,
                "scale": request.scale,
                "metrics": dataclasses.asdict(metrics),
            }
            for request, metrics in zip(requests, metrics_list)
        ]
    }
    if args.out:
        # Sim-deterministic content only: byte-diffs clean across passes
        # whether cells were computed or served from the cache.
        with open(args.out, "w") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote results to {args.out}")
    else:
        rows = [
            [cell["workload"], cell["setting"],
             cell["metrics"]["exec_cycles"]]
            for cell in doc["cells"]
        ]
        print(format_table(["workload", "setting", "exec cycles"], rows,
                           title="serve results"))


def cmd_serve_status(args) -> None:
    import json as _json

    from repro.serve import ServeClient

    client = ServeClient(args.spool)
    status = client.stats()
    if status is None:
        print(f"no daemon heartbeat on spool {args.spool}")
        raise SystemExit(1)
    print(_json.dumps(status, indent=2, sort_keys=True))


def cmd_serve_result(args) -> None:
    import dataclasses
    import json as _json

    from repro.serve import ServeClient

    metrics = ServeClient(args.spool).result(args.job_id, timeout=args.timeout)
    print(_json.dumps(dataclasses.asdict(metrics), indent=2, sort_keys=True))


def cmd_serve_drain(args) -> None:
    from repro.serve import ServeClient

    ServeClient(args.spool).drain(timeout=args.timeout)
    print("drained: all accepted jobs finished")


def cmd_serve_stop(args) -> None:
    from repro.serve import ServeClient

    ServeClient(args.spool).stop(timeout=args.timeout, wait=not args.no_wait)
    print("stopped" if not args.no_wait else "stop requested")


def cmd_list(_args) -> None:
    rows = [[n] for n in workload_names()]
    print(format_table(["benchmark"], rows, title="Table 2 workloads"))
    rows = [[s] for s in _setting_names()]
    print()
    print(format_table(["setting"], rows, title="Available settings"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPAMeR reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, workload: bool = False, setting: bool = False):
        p.add_argument("--scale", type=float, default=0.25,
                       help="message-count scale factor (1.0 = paper scale)")
        p.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
        if workload:
            p.add_argument("workload", choices=workload_names())
        if setting:
            p.add_argument("--setting", choices=_setting_names(), default="tuned")
        return p

    def jobs(p):
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="fan independent simulations across N worker "
                            "processes (0 = all cores; default: serial). "
                            "Results are bit-identical to serial runs — "
                            "see docs/PERFORMANCE.md")
        return p

    def burst(p):
        p.add_argument("--burst-k", type=int, default=None, metavar="K",
                       help="multi-push burst width: claim up to K "
                            "consecutive specBuf slots per confidence-gated "
                            "burst (default: 1 = single-push SPAMeR)")
        p.add_argument("--p-min", type=float, default=None, metavar="P",
                       help="minimum EWMA acceptance estimate before a "
                            "burst may extend past its head push "
                            "(default: 0.75)")
        return p

    def sched(p):
        from repro.sim.sched import scheduler_names

        p.add_argument("--scheduler", choices=scheduler_names(),
                       default="heap", metavar="NAME",
                       help="kernel pending-queue strategy: "
                            f"{', '.join(scheduler_names())} "
                            "(default: heap). All strategies produce "
                            "identical simulated results; calendar/batch "
                            "are faster on deep pending sets — see "
                            "docs/PERFORMANCE.md §5")
        return p

    sub.add_parser("table1", help="Table 1").set_defaults(fn=cmd_table1)
    sub.add_parser("table2", help="Table 2").set_defaults(fn=cmd_table2)
    p = common(sub.add_parser("fig7", help="Figure 7 transaction trace"),
               setting=True)
    p.add_argument("--window", type=int, default=3000)
    p.add_argument("--csv", metavar="FILE", default=None,
                   help="export the full trace as CSV instead of printing")
    p.set_defaults(fn=cmd_fig7, setting="vl")
    burst(sched(jobs(common(sub.add_parser("fig8", help="Figure 8 speedups"))))
          ).set_defaults(fn=cmd_fig8)
    sched(jobs(common(sub.add_parser("fig9", help="Figure 9 breakdown")))
          ).set_defaults(fn=cmd_fig9)
    sched(jobs(common(sub.add_parser("fig10a", help="Figure 10a failure rates")))
          ).set_defaults(fn=cmd_fig10a)
    sched(jobs(common(sub.add_parser("fig10b", help="Figure 10b bus utilization")))
          ).set_defaults(fn=cmd_fig10b)
    jobs(common(sub.add_parser("fig11", help="Figure 11 sensitivity panel"),
                workload=True)).set_defaults(fn=cmd_fig11)
    p = burst(sched(jobs(common(
        sub.add_parser("run", help="run one workload under one setting"),
        workload=True, setting=True))))
    p.add_argument("--hook-stats", action="store_true",
                   help="dump per-stage transaction latency histograms "
                        "collected over the instrumentation hook bus")
    p.add_argument("--verify", action="store_true",
                   help="attach the live invariant checker (FIFO order, "
                        "message conservation, cacheline/transaction "
                        "lifecycle legality); the run fails on any "
                        "semantic violation")
    p.set_defaults(fn=cmd_run)
    p = jobs(sub.add_parser(
        "obs",
        help="observability: Perfetto trace, metrics JSON, accuracy summary"))
    p.add_argument("workload", nargs="?", default="smoke",
                   choices=["smoke"] + workload_names(),
                   help="a workload, or 'smoke' for the fig8 smoke matrix "
                        "(ping-pong/incast x vl/tuned)")
    p.add_argument("--setting", choices=_setting_names(), default="tuned",
                   help="setting for single-workload runs (ignored by smoke)")
    p.add_argument("--scale", type=float, default=None,
                   help="message-count scale factor (default: 0.05, the "
                        "smoke-matrix scale)")
    p.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="write Chrome/Perfetto trace_event JSON here")
    p.add_argument("--metrics", metavar="FILE", default=None,
                   help="write the metrics-registry snapshot JSON here")
    p.add_argument("--jsonl", metavar="FILE", default=None,
                   help="write the compact JSONL event stream here")
    p.add_argument("--summary", action="store_true",
                   help="print the speculation-accuracy and stage-latency "
                        "tables (default when no output file is given)")
    p.set_defaults(fn=cmd_obs)
    sub.add_parser("area", help="Section 4.5 area").set_defaults(fn=cmd_area)
    sub.add_parser("power", help="Section 4.5 power").set_defaults(fn=cmd_power)
    common(sub.add_parser("inline", help="Section 3.4 inlining")).set_defaults(
        fn=cmd_inline)
    sub.add_parser("motivation", help="Figure 1 latency comparison").set_defaults(
        fn=cmd_motivation)
    p = jobs(common(sub.add_parser("replicate",
                                   help="Figure 8 geomeans across seeds")))
    p.add_argument("--seeds", type=int, default=3,
                   help="number of replication seeds")
    p.set_defaults(fn=cmd_replicate)
    p = jobs(sub.add_parser("batch", help="run a JSON experiment spec"))
    p.add_argument("spec", help="path to the spec file (see repro.eval.batch)")
    p.add_argument("--out", default=None, help="write the JSON report here")
    p.set_defaults(fn=cmd_batch)
    p = burst(jobs(sub.add_parser(
        "scale",
        help="interconnect scaling study: cores x topology x device")))
    p.add_argument("--cores", default="8,16,32,64", metavar="LIST",
                   help="comma-separated core counts (default: 8,16,32,64)")
    p.add_argument("--topology", default="single-bus,mesh", metavar="LIST",
                   help="comma-separated topologies: single-bus, mesh, "
                        "torus, ring, crossbar (default: single-bus,mesh)")
    p.add_argument("--settings", default="vl,tuned", metavar="LIST",
                   help="comma-separated settings per cell (default: vl,tuned "
                        "— one per stock device)")
    p.add_argument("--srds", type=int, default=1,
                   help="SRD shard count (queues partition across shards)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="message-count scale factor (default: 0.1 — keeps "
                        "the 64-core cells tractable)")
    p.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    p.add_argument("--verify", action="store_true",
                   help="run every cell under the live invariant checker")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the machine-readable JSON report here")
    p.set_defaults(fn=cmd_scale)
    p = burst(jobs(sub.add_parser(
        "load",
        help="open-system load sweep: tail latency vs offered load")))
    p.add_argument("--workload", default="incast",
                   choices=workload_names(),
                   help="an open-capable workload: ping-pong, incast, "
                        "pipeline, firewall, FIR (default: incast)")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "ramp"],
                   help="arrival process driving the sessions "
                        "(default: poisson)")
    p.add_argument("--topology", default="single-bus", metavar="LIST",
                   help="comma-separated topologies: single-bus, mesh, "
                        "torus, ring, crossbar (default: single-bus)")
    p.add_argument("--settings", default="vl,tuned", metavar="LIST",
                   help="comma-separated settings per cell (default: vl,tuned)")
    p.add_argument("--rhos", default="0.2,0.5,0.8,1.1", metavar="LIST",
                   help="offered-load points relative to the calibrated "
                        "closed-batch service rate (default: 0.2,0.5,0.8,1.1 "
                        "— the last one is past saturation)")
    p.add_argument("--churn", type=float, default=0.0,
                   help="per-session probability of departing early "
                        "(default: 0 — no churn)")
    p.add_argument("--scale", type=float, default=0.25,
                   help="message-count scale factor (1.0 = paper scale)")
    p.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the machine-readable JSON report here")
    p.set_defaults(fn=cmd_load)
    p = jobs(common(sub.add_parser("autotune",
                                   help="per-benchmark parameter search"),
                    workload=True))
    p.add_argument("--budget", type=int, default=25,
                   help="maximum simulations to spend")
    p.add_argument("--burst", action="store_true",
                   help="grid-search the multi-push (k, p_min) frontier on "
                        "the saturated 64-core bus instead of the tuned "
                        "delay parameters")
    p.add_argument("--ks", default="1,2,4,8", metavar="LIST",
                   help="comma-separated burst widths for --burst "
                        "(default: 1,2,4,8)")
    p.add_argument("--p-mins", default="0.0,0.5,0.75,0.9", metavar="LIST",
                   help="comma-separated acceptance gates for --burst "
                        "(default: 0.0,0.5,0.75,0.9)")
    p.add_argument("--rho", type=float, default=None,
                   help="score the --burst grid by p99 sojourn under an "
                        "open arrival process at this offered load "
                        "(default: closed batch, scored by exec cycles)")
    p.set_defaults(fn=cmd_autotune)

    # ------------------------------------------------------------------ serve
    from repro.serve import DEFAULT_MAX_DEPTH, DEFAULT_POLICY, sched_policy_names

    serve = sub.add_parser(
        "serve",
        help="long-lived experiment service: warm pool + result cache "
             "(see docs/SERVING.md)")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    def spool(p, timeout: bool = False):
        p.add_argument("--spool", required=True, metavar="DIR",
                       help="spool directory shared by daemon and clients")
        if timeout:
            p.add_argument("--timeout", type=float, default=300.0,
                           help="seconds to wait before giving up "
                                "(default: 300)")
        return p

    p = spool(serve_sub.add_parser(
        "start", help="run the daemon in the foreground on a spool"))
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes in the persistent pool "
                        "(0 = all cores; default: all cores)")
    p.add_argument("--policy", choices=sched_policy_names(),
                   default=DEFAULT_POLICY,
                   help=f"scheduling policy (default: {DEFAULT_POLICY})")
    p.add_argument("--max-depth", type=int, default=DEFAULT_MAX_DEPTH,
                   help="admission bound: queued jobs beyond this are "
                        f"rejected (default: {DEFAULT_MAX_DEPTH})")
    p.add_argument("--poll", type=float, default=0.05,
                   help="idle poll interval in seconds (default: 0.05)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed result cache")
    p.set_defaults(fn=cmd_serve_start)

    p = spool(serve_sub.add_parser(
        "submit", help="submit one run or a named grid"), timeout=True)
    p.add_argument("workload", nargs="?", default=None,
                   choices=workload_names(),
                   help="workload for a single run (or use --grid)")
    p.add_argument("--setting", choices=_setting_names(), default="tuned")
    p.add_argument("--grid", choices=sorted(SERVE_GRIDS), default=None,
                   help="submit a named grid instead: fig8-quick = "
                        "ping-pong/incast x vl/tuned")
    p.add_argument("--scale", type=float, default=SERVE_GRID_SCALE,
                   help="message-count scale factor (default: 0.05)")
    p.add_argument("--seed", type=lambda v: int(v, 0), default=0xC0FFEE)
    p.add_argument("--priority", type=int, default=0,
                   help="job priority (higher runs first under --policy "
                        "priority)")
    p.add_argument("--wait", action="store_true",
                   help="block for results; prints the cache-hit count")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="with --wait: write sim-deterministic results JSON "
                        "(byte-identical across cached and fresh passes)")
    p.set_defaults(fn=cmd_serve_submit)

    spool(serve_sub.add_parser("status", help="print the daemon heartbeat")
          ).set_defaults(fn=cmd_serve_status)
    p = spool(serve_sub.add_parser(
        "result", help="fetch one job's metrics (or re-raise its error)"),
        timeout=True)
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_serve_result)
    spool(serve_sub.add_parser(
        "drain", help="block until every accepted job has finished"),
        timeout=True).set_defaults(fn=cmd_serve_drain)
    p = spool(serve_sub.add_parser(
        "stop", help="stop the daemon (finishes in-flight jobs)"),
        timeout=True)
    p.add_argument("--no-wait", action="store_true",
                   help="leave the stop marker without waiting for the "
                        "daemon to exit")
    p.set_defaults(fn=cmd_serve_stop)

    def serve_flag(p):
        p.add_argument("--serve", metavar="SPOOL", default=None,
                       help="route the grid through a running `repro serve "
                            "start` daemon on this spool (warm pool + "
                            "result cache)")
        return p

    for name in ("batch", "load", "autotune"):
        serve_flag(sub.choices[name])

    sub.add_parser("list", help="available workloads and settings").set_defaults(
        fn=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
