"""Exception hierarchy for the SPAMeR reproduction package.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Raised for invalid uses of the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled into the past or double-triggered."""


class ConfigError(ReproError):
    """Raised for inconsistent or out-of-range system configuration values."""


class DeviceError(ReproError):
    """Raised by hardware device models (VLRD/SRD, caches, bus)."""


class BufferFullError(DeviceError):
    """Raised when a hardware buffer (prodBuf/consBuf/specBuf) overflows.

    Device models normally apply backpressure instead of raising; this error
    signals an internal invariant violation (an admission-control bug).
    """


class RegistrationError(DeviceError):
    """Raised for invalid endpoint or specBuf registrations."""


class WorkloadError(ReproError):
    """Raised when a workload is mis-specified (bad topology, thread count)."""


class ProtocolError(ReproError):
    """Raised when the MOESI coherence substrate detects an illegal transition."""
