"""Exception hierarchy for the SPAMeR reproduction package.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Raised for invalid uses of the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled into the past or double-triggered."""


class SimDeadlockError(SimulationError):
    """Raised by the stall watchdog: no queue progress for a full window.

    Carries enough diagnostics to name the stalled parties: ``tick`` is the
    cycle the watchdog fired at and ``blocked`` the names of the thread
    programs that had not finished (the blocked consumers/producers).  The
    message itself is the full diagnostic dump.
    """

    def __init__(self, message: str, tick: int = 0, blocked: tuple = ()) -> None:
        super().__init__(message)
        self.tick = int(tick)
        self.blocked = tuple(blocked)

    def __reduce__(self):
        # Explicit reconstruction: the parallel executor ships worker
        # failures across the process boundary by pickle, and the default
        # BaseException reduction only re-calls ``cls(*args)`` — which
        # would drop ``tick``/``blocked`` for any subclass that stops
        # storing them in ``__dict__``.  Keyword-free positional form keeps
        # this valid for subclasses with the same signature.
        return (type(self), (self.args[0] if self.args else "",
                             self.tick, self.blocked))


class VerificationError(ReproError):
    """Raised when the correctness subsystem finds a semantic violation.

    ``violations`` holds the structured
    :class:`~repro.verify.invariants.InvariantViolation` entries (or oracle
    mismatch strings) that triggered the failure.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)

    def __reduce__(self):
        # See SimDeadlockError.__reduce__: keep the structured violation
        # list intact across the worker-process boundary.
        return (type(self), (self.args[0] if self.args else "",
                             self.violations))


class ConfigError(ReproError):
    """Raised for inconsistent or out-of-range system configuration values."""


class DeviceError(ReproError):
    """Raised by hardware device models (VLRD/SRD, caches, bus)."""


class BufferFullError(DeviceError):
    """Raised when a hardware buffer (prodBuf/consBuf/specBuf) overflows.

    Device models normally apply backpressure instead of raising; this error
    signals an internal invariant violation (an admission-control bug).
    """


class RegistrationError(DeviceError):
    """Raised for invalid endpoint or specBuf registrations."""


class ServeError(ReproError):
    """Raised by the experiment service (:mod:`repro.serve`)."""


class AdmissionError(ServeError):
    """Raised when the serve job queue refuses a submission.

    The admission gate bounds queue depth: rather than queueing without
    bound (and letting every submitted sweep's latency grow unboundedly),
    the daemon rejects with this typed error carrying the observed
    ``depth`` and the configured ``limit`` so callers can back off and
    resubmit.  Also raised for submissions to a draining or stopped
    daemon (``depth``/``limit`` then describe the gate that refused).
    """

    def __init__(self, message: str, depth: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.depth = int(depth)
        self.limit = int(limit)

    def __reduce__(self):
        # See SimDeadlockError.__reduce__: serve results cross process
        # boundaries (spool files, worker pickles) and the default
        # BaseException reduction would drop depth/limit.
        return (type(self), (self.args[0] if self.args else "",
                             self.depth, self.limit))


class JobNotFoundError(ServeError):
    """Raised when a serve client names a job the daemon never accepted."""


class WorkloadError(ReproError):
    """Raised when a workload is mis-specified (bad topology, thread count)."""


class ProtocolError(ReproError):
    """Raised when the MOESI coherence substrate detects an illegal transition."""
