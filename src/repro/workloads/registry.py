"""Benchmark registry — the 8 workloads of Table 2, in paper order."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.dsp import Fir
from repro.workloads.ember import Halo, Incast, PingPong, Sweep
from repro.workloads.packet import Firewall, Pipeline
from repro.workloads.scaling import ScalingHalo
from repro.workloads.sort import Bitonic

#: Table 2 order.
WORKLOAD_CLASSES = [PingPong, Halo, Sweep, Incast, Pipeline, Firewall, Fir, Bitonic]

_REGISTRY: Dict[str, Callable[..., Workload]] = {
    cls.name: cls for cls in WORKLOAD_CLASSES
}
# Instantiable by name but outside Table 2 (figure grids stay untouched).
_REGISTRY[ScalingHalo.name] = ScalingHalo


def workload_names() -> List[str]:
    """The benchmark names in Table 2 order."""
    return [cls.name for cls in WORKLOAD_CLASSES]


def make_workload(name: str, scale: float = 1.0, arrival=None) -> Workload:
    """Instantiate a benchmark by its Table 2 name.

    *arrival* is None (closed batch), an
    :class:`~repro.workloads.arrival.ArrivalSpec` or an
    :class:`~repro.workloads.arrival.ArrivalProcess`; open processes are
    only accepted by open-capable workloads.
    """
    if name not in _REGISTRY:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {workload_names()}"
        )
    return _REGISTRY[name](scale=scale, arrival=arrival)
