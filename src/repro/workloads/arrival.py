"""Arrival processes: the open-system traffic layer.

Every workload historically ran as a *closed batch* — all work injected at
t=0, the run ending when the batch drains — which can only report batch
runtime.  An :class:`ArrivalProcess` turns each request-generating thread
(an incast producer, a pipeline generator, the FIR source) into a
*session* whose requests arrive over simulated time, so sustained offered
load, per-request sojourn times and saturation behaviour become
measurable (docs/MODEL.md, "Open-system traffic").

Design constraints, mirroring the rest of the substrate:

* **Registry-driven** like devices (:mod:`repro.registry`) and topologies
  (:mod:`repro.net.topology`): a new process is one decorated class, and
  :func:`make_arrival` builds it by name from the CLI or a batch spec.
* **Deterministic** — every draw comes from a named
  :class:`~repro.sim.rng.RngPool` stream keyed by the *session* name, so
  the same master seed produces byte-identical schedules in any worker
  process (``--jobs N`` invariance) and adding a session never perturbs
  another's sequence.
* **Closed batch is the zero-cost special case** —
  :class:`ClosedBatch.plan` returns all-zero ticks without touching the
  RNG pool, so default runs draw no extra randomness, schedule no extra
  events, and keep every golden metric and trace fixture byte-identical.

Schedules are *planned at build time*: :meth:`ArrivalProcess.plan` returns
the absolute arrival ticks for one session up front (including the effect
of churn — a departing session simply has a shorter schedule), which lets
workloads size their consumer loops and :class:`~repro.workloads.base.
WorkCounter` targets before any thread runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.errors import ConfigError, WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.sim.rng import RngPool


class ArrivalProcess(ABC):
    """When a session's requests arrive, as absolute simulation ticks."""

    #: Registry name (set by :func:`register_arrival`).
    name = "abstract"
    #: True only for :class:`ClosedBatch`: all requests at t=0, no RNG.
    is_closed = False

    def __init__(self, churn: float = 0.0) -> None:
        if not 0.0 <= churn <= 1.0:
            raise ConfigError(f"churn must be in [0, 1], got {churn}")
        #: Probability that a session departs before issuing its full
        #: quota (client churn).  A churned session's schedule is simply
        #: truncated — it issued fewer requests, it did not fail.
        self.churn = churn

    # ------------------------------------------------------------------- plan
    def plan(self, rng_pool: "RngPool", session: str, count: int) -> List[int]:
        """Absolute arrival ticks for *session*, one per issued request.

        The returned list is ``count`` long unless churn truncates it
        (never below one request).  All randomness derives from streams
        named after *session*, so plans are independent across sessions
        and bit-identical across processes for one master seed.
        """
        if count < 1:
            raise WorkloadError(f"session {session!r} needs >= 1 requests")
        quota = self._quota(rng_pool, session, count)
        gaps = self.interarrivals(rng_pool.stream(f"arrival:{session}"), quota)
        ticks: List[int] = []
        now = 0
        for gap in gaps:
            now += max(0, int(gap))
            ticks.append(now)
        return ticks

    def _quota(self, rng_pool: "RngPool", session: str, count: int) -> int:
        """Requests the session issues before (maybe) departing.

        Drawn from a dedicated ``:churn`` stream so enabling churn never
        perturbs the interarrival sequence itself.
        """
        if self.churn <= 0.0:
            return count
        rng = rng_pool.stream(f"arrival:{session}:churn")
        if rng.uniform() >= self.churn:
            return count
        return max(1, int(round(rng.uniform() * count)))

    @abstractmethod
    def interarrivals(self, rng: "np.random.Generator", count: int) -> List[int]:
        """Gaps (cycles) between consecutive requests; first gap is the
        session's join offset, letting sessions start mid-run."""

    def label(self) -> str:
        churn = f",churn={self.churn:g}" if self.churn else ""
        return f"{self.name}({self._param_label()}{churn})"

    def _param_label(self) -> str:
        return ""


# -------------------------------------------------------------------- registry
_ARRIVALS: Dict[str, type] = {}


def register_arrival(name: str, *, description: str = ""):
    """Class decorator: make an arrival process constructible by *name*."""

    def decorator(cls):
        if name in _ARRIVALS:
            raise ConfigError(f"arrival process {name!r} is already registered")
        cls.name = name
        cls.description = description or (cls.__doc__ or "").strip().split("\n")[0]
        _ARRIVALS[name] = cls
        return cls

    return decorator


def arrival_names() -> List[str]:
    """Registered arrival-process names, sorted."""
    return sorted(_ARRIVALS)


def make_arrival(name: str, **params) -> ArrivalProcess:
    """Instantiate an arrival process by registry name."""
    if name not in _ARRIVALS:
        raise ConfigError(
            f"unknown arrival process {name!r}; registered: {arrival_names()}"
        )
    return _ARRIVALS[name](**params)


def unregister_arrival(name: str) -> None:
    """Remove a registration (test isolation helper)."""
    _ARRIVALS.pop(name, None)


@dataclass(frozen=True)
class ArrivalSpec:
    """A picklable arrival process, by registry name plus parameters.

    The open-system analogue of :class:`~repro.eval.runner.TunedFactory`:
    a :class:`~repro.eval.parallel.RunRequest` carries this across the
    process boundary and the worker rebuilds the process via
    :meth:`build`, so load sweeps fan out exactly like figure grids.
    """

    name: str = "closed"
    params: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def make(cls, name: str, **params) -> "ArrivalSpec":
        return cls(name, tuple(sorted(params.items())))

    def build(self) -> ArrivalProcess:
        return make_arrival(self.name, **dict(self.params))


# ------------------------------------------------------------------- processes
@register_arrival("closed", description="closed batch: everything at t=0")
class ClosedBatch(ArrivalProcess):
    """The historical model: every request available at t=0.

    ``plan`` never touches the RNG pool and ignores churn (a closed batch
    has no notion of a session leaving), so default runs stay
    byte-identical to the pre-arrival-process code.
    """

    is_closed = True

    def __init__(self, churn: float = 0.0) -> None:
        super().__init__(churn=0.0)

    def plan(self, rng_pool: "RngPool", session: str, count: int) -> List[int]:
        if count < 1:
            raise WorkloadError(f"session {session!r} needs >= 1 requests")
        return [0] * count

    def interarrivals(self, rng, count: int) -> List[int]:
        return [0] * count


#: The default arrival process every workload runs under.
CLOSED_BATCH = ClosedBatch()


@register_arrival("poisson", description="memoryless arrivals at a fixed rate")
class Poisson(ArrivalProcess):
    """Exponential interarrivals at ``rate`` requests per cycle.

    The canonical open-system source (M/·/· queueing): memoryless gaps
    with mean ``1/rate`` cycles.  Offered load is swept by scaling the
    rate relative to the closed-batch service rate (see
    :mod:`repro.eval.load`).
    """

    def __init__(self, rate: float = 0.001, churn: float = 0.0) -> None:
        super().__init__(churn=churn)
        if rate <= 0:
            raise ConfigError(f"rate must be > 0 requests/cycle, got {rate}")
        self.rate = float(rate)

    def interarrivals(self, rng, count: int) -> List[int]:
        gaps = rng.exponential(1.0 / self.rate, size=count)
        return [max(1, int(round(g))) for g in gaps]

    def _param_label(self) -> str:
        return f"rate={self.rate:g}"


@register_arrival("bursty", description="two-state MMPP: bursts and lulls")
class Bursty(ArrivalProcess):
    """A two-state Markov-modulated Poisson process.

    The session alternates between a *burst* state (fast arrivals at
    ``rate * boost``) and a *lull* state (slow arrivals at
    ``rate / boost``); after each arrival it switches state with
    probability ``switch``.  The mean rate stays near ``rate`` while the
    interarrival distribution becomes bimodal — the same hard-to-predict
    pattern the FIR source bakes into its compute gaps (Section 4.3),
    now available to every open-capable workload.
    """

    def __init__(
        self,
        rate: float = 0.001,
        boost: float = 4.0,
        switch: float = 0.1,
        churn: float = 0.0,
    ) -> None:
        super().__init__(churn=churn)
        if rate <= 0:
            raise ConfigError(f"rate must be > 0 requests/cycle, got {rate}")
        if boost < 1.0:
            raise ConfigError(f"boost must be >= 1, got {boost}")
        if not 0.0 < switch <= 1.0:
            raise ConfigError(f"switch must be in (0, 1], got {switch}")
        self.rate = float(rate)
        self.boost = float(boost)
        self.switch = float(switch)

    def interarrivals(self, rng, count: int) -> List[int]:
        gaps: List[int] = []
        burst = True
        for _ in range(count):
            rate = self.rate * self.boost if burst else self.rate / self.boost
            gaps.append(max(1, int(round(rng.exponential(1.0 / rate)))))
            if rng.uniform() < self.switch:
                burst = not burst
        return gaps

    def _param_label(self) -> str:
        return f"rate={self.rate:g},boost={self.boost:g},switch={self.switch:g}"


@register_arrival("ramp", description="diurnal ramp: rate climbs over the run")
class DiurnalRamp(ArrivalProcess):
    """A non-stationary source whose rate ramps from ``rate_lo`` to
    ``rate_hi`` over ``period`` cycles, then holds.

    The discrete-event analogue of a diurnal traffic curve compressed to
    one rising edge: early requests arrive sparsely, late ones densely,
    so a single run walks the system from light load into (past)
    saturation.  Gaps are drawn from the instantaneous rate at the
    previous arrival's tick (a piecewise-exponential approximation).
    """

    def __init__(
        self,
        rate_lo: float = 0.0005,
        rate_hi: float = 0.002,
        period: int = 200_000,
        churn: float = 0.0,
    ) -> None:
        super().__init__(churn=churn)
        if rate_lo <= 0 or rate_hi <= 0:
            raise ConfigError("rates must be > 0 requests/cycle")
        if rate_hi < rate_lo:
            raise ConfigError(
                f"rate_hi={rate_hi} must be >= rate_lo={rate_lo} (a ramp climbs)"
            )
        if period < 1:
            raise ConfigError(f"period must be >= 1 cycle, got {period}")
        self.rate_lo = float(rate_lo)
        self.rate_hi = float(rate_hi)
        self.period = int(period)

    def rate_at(self, tick: int) -> float:
        """Instantaneous rate: linear ramp, clamped past the period."""
        frac = min(1.0, max(0.0, tick / self.period))
        return self.rate_lo + (self.rate_hi - self.rate_lo) * frac

    def interarrivals(self, rng, count: int) -> List[int]:
        gaps: List[int] = []
        now = 0
        for _ in range(count):
            gap = max(1, int(round(rng.exponential(1.0 / self.rate_at(now)))))
            gaps.append(gap)
            now += gap
        return gaps

    def _param_label(self) -> str:
        return (
            f"lo={self.rate_lo:g},hi={self.rate_hi:g},period={self.period}"
        )


def resolve_arrival(arrival) -> ArrivalProcess:
    """Normalize None / a spec / an instance to an :class:`ArrivalProcess`."""
    if arrival is None:
        return CLOSED_BATCH
    if isinstance(arrival, ArrivalSpec):
        return arrival.build()
    if isinstance(arrival, ArrivalProcess):
        return arrival
    raise ConfigError(
        f"expected an ArrivalProcess, ArrivalSpec or None, got {arrival!r}"
    )
