"""Ember-derived communication patterns: ping-pong, halo, sweep, incast.

These four benchmarks reproduce the common communication patterns the paper
takes from the Ember benchmark suite (Table 2):

* **ping-pong** — data back and forth between two threads, (1:1)×2;
* **halo**      — exchange data with neighboring threads on a 4×4 grid,
  (1:1)×48 (one queue per directed edge);
* **sweep**     — data sweeps through a grid of threads corner to corner
  (forward and backward wavefronts), (1:1)×48;
* **incast**    — all threads send data to the master thread, (4:1)×1.

Compute-time constants are class attributes so that the sensitivity and
ablation benches can tune the compute-to-communication ratio.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.workloads.base import QueueSpec, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class PingPong(Workload):
    """Two threads bounce a token over a pair of 1:1 queues.

    Data production sits on the critical path (each side can only reply
    after receiving), so speculation has nothing to overlap — the paper
    reports ≈1.0× here.

    Open-system reading: side A is the *session* (one request = one
    round trip), side B the echo server; a request completes when A
    consumes B's reply.
    """

    name = "ping-pong"
    description = "data back and forth between two threads"
    open_capable = True

    ROUNDS = 800
    COMPUTE = 150

    def topology(self) -> List[QueueSpec]:
        return [QueueSpec(1, 1, 2)]

    def num_threads(self) -> int:
        return 2

    def session_quotas(self) -> Dict[str, int]:
        return {"pingpong-a": self.scaled(self.ROUNDS)}

    def build(self, system: "System") -> None:
        lib = system.library
        q_ab, q_ba = lib.create_queue(), lib.create_queue()
        prod_a = lib.open_producer(q_ab, core_id=0)
        cons_b = lib.open_consumer(q_ab, core_id=1)
        prod_b = lib.open_producer(q_ba, core_id=1)
        cons_a = lib.open_consumer(q_ba, core_id=0)
        plan = self.plan_sessions(system, self.session_quotas())["pingpong-a"]
        rounds = len(plan)

        def side_a(ctx):
            def round_trip(i, record):
                key = ("ab", i)
                self.note_produced(key)
                self.track_request(key, record)
                yield from ctx.push(prod_a, key)
                msg = yield from ctx.pop(cons_a)
                self.note_consumed(msg.payload)
                self.request_complete(key, ctx.now)
                yield from ctx.compute_jittered(self.COMPUTE, 0.05)

            yield from self.drive(ctx, "pingpong-a", plan, round_trip)

        def side_b(ctx):
            for i in range(rounds):
                msg = yield from ctx.pop(cons_b)
                self.note_consumed(msg.payload)
                self.request_first_pop(msg.payload, ctx.now)
                yield from ctx.compute_jittered(self.COMPUTE, 0.05)
                key = ("ba", i)
                self.note_produced(key)
                yield from ctx.push(prod_b, key)

        system.spawn(0, side_a, "pingpong-a")
        system.spawn(1, side_b, "pingpong-b")


class Halo(Workload):
    """4×4 halo exchange: compute, push to all neighbors, pop from all.

    The pops come *after* a long interior-compute phase, so neighbor data is
    usually already at the routing device: speculation pre-places it and
    hides the request leg — the paper reports 1.33× here and notes VL's
    accidental-prefetch "prerequests" help the baseline too.
    """

    name = "halo"
    description = "exchange data with neighboring threads"

    ROWS = 4
    COLS = 4
    ITERATIONS = 40
    #: Cachelines exchanged per neighbor per iteration.
    MSGS_PER_EDGE = 1
    INTERIOR_COMPUTE = 900
    BOUNDARY_COMPUTE = 80

    def topology(self) -> List[QueueSpec]:
        edges = 2 * (self.ROWS * (self.COLS - 1) + self.COLS * (self.ROWS - 1))
        return [QueueSpec(1, 1, edges)]

    def num_threads(self) -> int:
        return self.ROWS * self.COLS

    def _neighbors(self, r: int, c: int) -> List[Tuple[int, int]]:
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.ROWS and 0 <= nc < self.COLS:
                out.append((nr, nc))
        return out

    def build(self, system: "System") -> None:
        lib = system.library
        core_of = lambda r, c: r * self.COLS + c  # noqa: E731 - tiny mapping

        # One queue per directed edge; producers/consumers opened per thread.
        prods: Dict[Tuple[int, int, int, int], object] = {}
        conss: Dict[Tuple[int, int, int, int], object] = {}
        for r in range(self.ROWS):
            for c in range(self.COLS):
                for nr, nc in self._neighbors(r, c):
                    sqi = lib.create_queue()
                    prods[(r, c, nr, nc)] = lib.open_producer(sqi, core_of(r, c))
                    conss[(r, c, nr, nc)] = lib.open_consumer(sqi, core_of(nr, nc))

        iterations = self.scaled(self.ITERATIONS)

        def make_thread(r: int, c: int):
            neighbors = self._neighbors(r, c)
            my_prods = [prods[(r, c, nr, nc)] for nr, nc in neighbors]
            my_conss = [conss[(nr, nc, r, c)] for nr, nc in neighbors]

            def thread(ctx):
                for it in range(iterations):
                    # Mild per-iteration imbalance: within the tuned
                    # algorithm's interval-variation tolerance (its tau
                    # parameter absorbs jitter up to ~96 cycles, §3.5).
                    yield from ctx.compute_jittered(self.INTERIOR_COMPUTE, 0.08)
                    # Exchange the strip part by part: send one line to
                    # every neighbor, then receive one from each.  Sending
                    # the whole strip before receiving would demand more
                    # routing-device entries than exist system-wide.
                    for part in range(self.MSGS_PER_EDGE):
                        for (nr, nc), prod in zip(neighbors, my_prods):
                            key = (r, c, nr, nc, it, part)
                            self.note_produced(key)
                            yield from ctx.push(prod, key)
                        for cons in my_conss:
                            msg = yield from ctx.pop(cons)
                            self.note_consumed(msg.payload)
                    yield from ctx.compute_jittered(self.BOUNDARY_COMPUTE, 0.05)

            return thread

        for r in range(self.ROWS):
            for c in range(self.COLS):
                system.spawn(core_of(r, c), make_thread(r, c), f"halo-{r}{c}")


class Sweep(Workload):
    """Wavefront sweeps corner to corner and back across a 4×4 grid.

    Each cell can only produce after consuming its upstream dependencies, so
    data production is on the critical path; the paper reports ≈1.0×.
    """

    name = "sweep"
    description = "data sweeps through a grid of threads corner to corner"

    ROWS = 4
    COLS = 4
    ROUNDS = 30
    CELL_COMPUTE = 400

    def topology(self) -> List[QueueSpec]:
        # Forward (right+down) and backward (left+up) directed edges.
        edges = 2 * (self.ROWS * (self.COLS - 1) + self.COLS * (self.ROWS - 1))
        return [QueueSpec(1, 1, edges)]

    def num_threads(self) -> int:
        return self.ROWS * self.COLS

    def build(self, system: "System") -> None:
        lib = system.library
        core_of = lambda r, c: r * self.COLS + c  # noqa: E731 - tiny mapping

        prods: Dict[Tuple[Tuple[int, int], Tuple[int, int]], object] = {}
        conss: Dict[Tuple[Tuple[int, int], Tuple[int, int]], object] = {}

        def link(src: Tuple[int, int], dst: Tuple[int, int]) -> None:
            sqi = lib.create_queue()
            prods[(src, dst)] = lib.open_producer(sqi, core_of(*src))
            conss[(src, dst)] = lib.open_consumer(sqi, core_of(*dst))

        for r in range(self.ROWS):
            for c in range(self.COLS):
                if c + 1 < self.COLS:
                    link((r, c), (r, c + 1))  # forward right
                    link((r, c + 1), (r, c))  # backward left
                if r + 1 < self.ROWS:
                    link((r, c), (r + 1, c))  # forward down
                    link((r + 1, c), (r, c))  # backward up

        rounds = self.scaled(self.ROUNDS)

        def make_thread(r: int, c: int):
            fwd_in = [s for (s, d) in prods if d == (r, c) and (s[0] < r or s[1] < c)]
            fwd_out = [d for (s, d) in prods if s == (r, c) and (d[0] > r or d[1] > c)]
            bwd_in = [s for (s, d) in prods if d == (r, c) and (s[0] > r or s[1] > c)]
            bwd_out = [d for (s, d) in prods if s == (r, c) and (d[0] < r or d[1] < c)]

            def phase(ctx, ins, outs, tag, rnd):
                for src in ins:
                    msg = yield from ctx.pop(conss[(src, (r, c))])
                    self.note_consumed(msg.payload)
                yield from ctx.compute_jittered(self.CELL_COMPUTE, 0.05)
                for dst in outs:
                    key = (tag, (r, c), dst, rnd)
                    self.note_produced(key)
                    yield from ctx.push(prods[((r, c), dst)], key)

            def thread(ctx):
                for rnd in range(rounds):
                    yield from phase(ctx, fwd_in, fwd_out, "fwd", rnd)
                    yield from phase(ctx, bwd_in, bwd_out, "bwd", rnd)

            return thread

        for r in range(self.ROWS):
            for c in range(self.COLS):
                system.spawn(core_of(r, c), make_thread(r, c), f"sweep-{r}{c}")


class Incast(Workload):
    """Four producers funnel into a single master consumer, (4:1)×1.

    The master aggregates (long per-message compute) while producers run
    ahead: data queues up at the routing device, and speculation pre-fills
    the master's 32 registered cachelines (Section 4.3).
    """

    name = "incast"
    description = "all threads sending data to the master thread"
    open_capable = True

    PRODUCERS = 4
    MESSAGES_PER_PRODUCER = 500
    PRODUCE_COMPUTE = 180
    AGGREGATE_COMPUTE = 420
    MASTER_LINES = 32

    def topology(self) -> List[QueueSpec]:
        return [QueueSpec(self.PRODUCERS, 1, 1)]

    def num_threads(self) -> int:
        return self.PRODUCERS + 1

    def session_quotas(self) -> Dict[str, int]:
        per_producer = self.scaled(self.MESSAGES_PER_PRODUCER)
        return {
            f"incast-prod{pid}": per_producer for pid in range(self.PRODUCERS)
        }

    def build(self, system: "System") -> None:
        lib = system.library
        sqi = lib.create_queue()
        master_lines = self.MASTER_LINES if system.spec_default else None
        cons = lib.open_consumer(sqi, core_id=0, num_lines=master_lines)
        plans = self.plan_sessions(system, self.session_quotas())
        total = sum(len(plan) for plan in plans.values())

        def make_producer(pid: int):
            session = f"incast-prod{pid}"
            prod = lib.open_producer(sqi, core_id=pid + 1)

            def producer(ctx):
                def send(i, record):
                    key = (pid, i)
                    self.note_produced(key)
                    self.track_request(key, record)
                    yield from ctx.push(prod, key)
                    yield from ctx.compute_jittered(self.PRODUCE_COMPUTE, 0.1)

                yield from self.drive(ctx, session, plans[session], send)

            return producer

        def master(ctx):
            for _ in range(total):
                msg = yield from ctx.pop(cons)
                self.note_consumed(msg.payload)
                self.request_complete(msg.payload, ctx.now)
                yield from ctx.compute_jittered(self.AGGREGATE_COMPUTE, 0.05)

        system.spawn(0, master, "incast-master")
        for pid in range(self.PRODUCERS):
            system.spawn(pid + 1, make_producer(pid), f"incast-prod{pid}")
