"""Workload framework: Table 2 topologies, shared counters, validation.

A workload declares its queue topology in the paper's ``(M:N)×k`` notation,
builds endpoints and thread programs against a :class:`~repro.system.System`,
and validates its own message accounting after the run (conservation: every
produced message is consumed exactly once).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


@dataclass(frozen=True)
class QueueSpec:
    """One ``(M:N)×k`` topology term of Table 2."""

    producers: int
    consumers: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.producers < 1 or self.consumers < 1 or self.count < 1:
            raise WorkloadError(f"invalid queue spec {self!r}")

    def label(self) -> str:
        return f"({self.producers}:{self.consumers})x{self.count}"


class WorkCounter:
    """A shared atomic work counter for M:N consumer termination.

    With several consumers on one SQI, the routing device decides the
    per-consumer message distribution dynamically, so workers cannot expect
    fixed counts; instead they loop ``pop_until(all_work_done)`` against
    this counter — the standard shared-counter termination idiom of
    task-parallel runtimes.  (The counter itself would live in one coherent
    cacheline; its increment cost is charged by the caller via
    ``ctx.compute``.)
    """

    def __init__(self, target: int) -> None:
        if target < 0:
            raise WorkloadError(f"negative work target {target}")
        self.target = target
        self.done_count = 0

    def mark_done(self, amount: int = 1) -> None:
        self.done_count += amount
        if self.done_count > self.target:
            raise WorkloadError(
                f"work counter overran: {self.done_count} > {self.target} "
                "(duplicate message delivery?)"
            )

    def all_done(self) -> bool:
        return self.done_count >= self.target


class Workload(ABC):
    """Base class for the 8 task-parallel benchmarks (Table 2)."""

    #: Registry key and Table 2 name, e.g. ``"ping-pong"``.
    name: str = "abstract"
    #: Table 2 description.
    description: str = ""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise WorkloadError(f"scale must be > 0, got {scale}")
        self.scale = scale
        #: Multiset of produced payload keys, filled during build/run.
        self.produced: Dict[object, int] = {}
        #: Multiset of consumed payload keys.
        self.consumed: Dict[object, int] = {}

    # -- declarative interface ---------------------------------------------------
    @abstractmethod
    def topology(self) -> List[QueueSpec]:
        """The queue topology in Table 2 notation."""

    @abstractmethod
    def num_threads(self) -> int:
        """Number of software threads (each pinned to one core)."""

    @abstractmethod
    def build(self, system: "System") -> None:
        """Create queues/endpoints and spawn this workload's threads."""

    # -- helpers -------------------------------------------------------------------
    def scaled(self, n: int) -> int:
        """Scale a message/iteration count by the workload's scale factor."""
        return max(1, int(round(n * self.scale)))

    def note_produced(self, key: object) -> None:
        self.produced[key] = self.produced.get(key, 0) + 1

    def note_consumed(self, key: object) -> None:
        self.consumed[key] = self.consumed.get(key, 0) + 1

    def validate(self) -> None:
        """Check message conservation after the run.

        Raises :class:`WorkloadError` when any message was lost or
        duplicated — the core functional invariant of the queue substrate.
        """
        if self.produced != self.consumed:
            missing = {
                k: v - self.consumed.get(k, 0)
                for k, v in self.produced.items()
                if self.consumed.get(k, 0) != v
            }
            extra = {
                k: v - self.produced.get(k, 0)
                for k, v in self.consumed.items()
                if self.produced.get(k, 0) != v
            }
            raise WorkloadError(
                f"{self.name}: message conservation violated; "
                f"missing={dict(list(missing.items())[:5])} "
                f"extra={dict(list(extra.items())[:5])}"
            )

    def table2_row(self) -> str:
        """The workload's Table 2 row: description + topology."""
        topo = "+".join(spec.label() for spec in self.topology())
        return f"{self.description} {topo}"

    def total_messages(self) -> int:
        """Messages produced (available after a run)."""
        return sum(self.produced.values())
