"""Workload framework: Table 2 topologies, shared counters, validation.

A workload declares its queue topology in the paper's ``(M:N)×k`` notation,
builds endpoints and thread programs against a :class:`~repro.system.System`,
and validates its own message accounting after the run (conservation: every
produced message is consumed exactly once).

Since the open-system refactor, request-generating threads are *sessions*
driven by an :class:`~repro.workloads.arrival.ArrivalProcess`: the per
request work is a reusable body generator and :meth:`Workload.drive` paces
its iterations by the planned arrival schedule.  The default
:class:`~repro.workloads.arrival.ClosedBatch` plan is all-zero ticks, so
the driver degenerates to the historical plain loop — no extra events, no
extra randomness, byte-identical golden figures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.workloads.arrival import ArrivalProcess, resolve_arrival

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.thread import ThreadContext
    from repro.sim.request import RequestLog, RequestRecord
    from repro.system import System


@dataclass(frozen=True)
class QueueSpec:
    """One ``(M:N)×k`` topology term of Table 2."""

    producers: int
    consumers: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.producers < 1 or self.consumers < 1 or self.count < 1:
            raise WorkloadError(f"invalid queue spec {self!r}")

    def label(self) -> str:
        return f"({self.producers}:{self.consumers})x{self.count}"


class WorkCounter:
    """A shared atomic work counter for M:N consumer termination.

    With several consumers on one SQI, the routing device decides the
    per-consumer message distribution dynamically, so workers cannot expect
    fixed counts; instead they loop ``pop_until(all_work_done)`` against
    this counter — the standard shared-counter termination idiom of
    task-parallel runtimes.  (The counter itself would live in one coherent
    cacheline; its increment cost is charged by the caller via
    ``ctx.compute``.)

    ``label`` names the queue/stage the counter guards so an overrun
    diagnostic points at the offender instead of just printing numbers.
    :meth:`retire` shrinks the target when a churned session departs
    without issuing its full quota — the remaining consumers then
    terminate at the reduced count instead of tripping conservation.
    """

    def __init__(self, target: int, label: str = "") -> None:
        if target < 0:
            raise WorkloadError(f"negative work target {target}")
        self.target = target
        self.label = label
        self.done_count = 0
        self.retired = 0

    def mark_done(self, amount: int = 1) -> None:
        self.done_count += amount
        if self.done_count > self.target:
            where = f" on {self.label!r}" if self.label else ""
            raise WorkloadError(
                f"work counter{where} overran: {self.done_count} > "
                f"{self.target} (duplicate message delivery?)"
            )

    def retire(self, amount: int) -> None:
        """Lower the target by *amount* (a departed session's shortfall)."""
        if amount < 0:
            where = f" on {self.label!r}" if self.label else ""
            raise WorkloadError(
                f"cannot retire negative work {amount} from work "
                f"counter{where}"
            )
        if amount == 0:
            return
        if self.target - amount < self.done_count:
            where = f" on {self.label!r}" if self.label else ""
            raise WorkloadError(
                f"cannot retire {amount} from work counter{where}: "
                f"{self.done_count} of {self.target} already done"
            )
        self.target -= amount
        self.retired += amount

    def all_done(self) -> bool:
        return self.done_count >= self.target


class Workload(ABC):
    """Base class for the 8 task-parallel benchmarks (Table 2)."""

    #: Registry key and Table 2 name, e.g. ``"ping-pong"``.
    name: str = "abstract"
    #: Table 2 description.
    description: str = ""
    #: Whether this workload's request-generating threads can be paced by
    #: an open arrival process.  Dependency-driven patterns (halo, sweep:
    #: every iteration consumes the previous one's output, so there is no
    #: exogenous request to schedule) stay closed-only.
    open_capable: bool = False

    def __init__(self, scale: float = 1.0, arrival=None) -> None:
        if scale <= 0:
            raise WorkloadError(f"scale must be > 0, got {scale}")
        self.scale = scale
        #: The arrival process pacing this run's sessions (closed batch
        #: unless the caller supplies an open one).
        self.arrival: ArrivalProcess = resolve_arrival(arrival)
        if not self.arrival.is_closed and not self.open_capable:
            raise WorkloadError(
                f"workload {self.name!r} is closed-only (dependency-driven); "
                f"it cannot run under the {self.arrival.name!r} arrival "
                "process"
            )
        #: Multiset of produced payload keys, filled during build/run.
        self.produced: Dict[object, int] = {}
        #: Multiset of consumed payload keys.
        self.consumed: Dict[object, int] = {}
        #: Open-system bookkeeping: the system's request log (bound by
        #: :meth:`plan_sessions` on open runs) and the payload-key →
        #: in-flight record map the lifecycle helpers consult.  Both stay
        #: empty on closed runs, so the helpers are dictionary-miss
        #: no-ops there.
        self._request_log: Optional["RequestLog"] = None
        self._pending_requests: Dict[object, "RequestRecord"] = {}

    # -- declarative interface ---------------------------------------------------
    @abstractmethod
    def topology(self) -> List[QueueSpec]:
        """The queue topology in Table 2 notation."""

    @abstractmethod
    def num_threads(self) -> int:
        """Number of software threads (each pinned to one core)."""

    @abstractmethod
    def build(self, system: "System") -> None:
        """Create queues/endpoints and spawn this workload's threads."""

    def session_quotas(self) -> Dict[str, int]:
        """Nominal requests per session, before churn (open-capable only).

        The load sweep uses this to convert a target offered load into a
        per-session rate without building a system.
        """
        raise WorkloadError(
            f"workload {self.name!r} is closed-only; it has no sessions"
        )

    # -- open-system driving -----------------------------------------------------
    def plan_sessions(
        self, system: "System", quotas: Dict[str, int]
    ) -> Dict[str, List[int]]:
        """Arrival ticks per session (schedule length = issued requests).

        Called once at build time; on open arrivals this also activates
        the system's request log.  Closed-batch plans are all zeros and
        touch no RNG stream, so default builds are unchanged.
        """
        plans = {
            session: self.arrival.plan(system.rng, session, count)
            for session, count in quotas.items()
        }
        if not self.arrival.is_closed:
            self._request_log = system.requests.activate()
        return plans

    def drive(
        self,
        ctx: "ThreadContext",
        session: str,
        ticks: List[int],
        body: Callable[[int, Optional["RequestRecord"]], Generator],
    ) -> Generator:
        """Run *body* once per planned arrival, pacing an open session.

        *body(i, record)* is the per-request session work (a generator to
        ``yield from``); *record* is the request's lifecycle record, or
        None on closed runs.  A session sleeps (plain timeout, the core
        stays idle) until the next arrival is due; a backlogged session
        admits late, which the record's ``queue_delay`` measures.

        Closed batch: every tick is 0, the ``if tick`` guard skips both
        the wait and the tick comparison, and no record is opened — the
        loop is event-for-event identical to the historical inline form.
        """
        log = self._request_log
        for i, tick in enumerate(ticks):
            record = None
            if tick:
                delay = tick - ctx.env.now
                if delay > 0:
                    yield ctx.env.timeout(delay)
            if log is not None:
                record = log.open(session, i, tick, ctx.env.now)
            yield from body(i, record)

    def track_request(self, key: object, record: Optional["RequestRecord"]) -> None:
        """Associate a produced payload *key* with its request record, so
        downstream consumers can stamp first-pop/completion by key."""
        if record is not None:
            self._pending_requests[key] = record

    def request_first_pop(self, key: object, tick: int) -> None:
        """Stamp FIRST_POP for the request tracked under *key* (no-op for
        untracked keys — i.e. always, on closed runs)."""
        record = self._pending_requests.get(key)
        if record is not None:
            self._request_log.touch(record, tick)

    def request_complete(self, key: object, tick: int) -> None:
        """Stamp COMPLETED (and FIRST_POP if missing) for *key*'s request
        and drop the tracking entry."""
        record = self._pending_requests.pop(key, None)
        if record is not None:
            self._request_log.complete(record, tick)

    # -- helpers -------------------------------------------------------------------
    def scaled(self, n: int) -> int:
        """Scale a message/iteration count by the workload's scale factor."""
        return max(1, int(round(n * self.scale)))

    def note_produced(self, key: object) -> None:
        self.produced[key] = self.produced.get(key, 0) + 1

    def note_consumed(self, key: object) -> None:
        self.consumed[key] = self.consumed.get(key, 0) + 1

    def validate(self) -> None:
        """Check message conservation after the run.

        Raises :class:`WorkloadError` when any message was lost or
        duplicated — the core functional invariant of the queue substrate.
        """
        if self.produced != self.consumed:
            missing = {
                k: v - self.consumed.get(k, 0)
                for k, v in self.produced.items()
                if self.consumed.get(k, 0) != v
            }
            extra = {
                k: v - self.produced.get(k, 0)
                for k, v in self.consumed.items()
                if self.produced.get(k, 0) != v
            }
            raise WorkloadError(
                f"{self.name}: message conservation violated; "
                f"missing={dict(list(missing.items())[:5])} "
                f"extra={dict(list(extra.items())[:5])}"
            )
        if self._request_log is not None and self._pending_requests:
            raise WorkloadError(
                f"{self.name}: {len(self._pending_requests)} tracked "
                "requests never completed"
            )

    def table2_row(self) -> str:
        """The workload's Table 2 row: description + topology."""
        topo = "+".join(spec.label() for spec in self.topology())
        return f"{self.description} {topo}"

    def total_messages(self) -> int:
        """Messages produced (available after a run)."""
        return sum(self.produced.values())
