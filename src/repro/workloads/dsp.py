"""FIR — a 10-stage digital signal processing filter chain, (1:1)×9.

Ten threads form a linear pipeline: a sample source followed by nine filter
stages.  Each message carries a sample sequence number and the window of
the most recent ``TAPS`` samples; stage *i* accumulates ``coeff[i] *
window[i]`` into the partial sum, so the final stage produces the true FIR
response ``y[n] = Σ c_i · x[n-i]`` for every sample — order-independently,
which lets the workload validate its output against a direct dot product.

The source is *bursty* (groups of samples in quick succession separated by
gaps), which makes the inter-arrival interval at each stage bimodal: the
consumer alternates between the library's fast path (data already in the
cacheline) and slow path.  This is the hard-to-predict behaviour the paper
tunes its delay algorithm on — the adaptive algorithm "learns the period of
the slow path instead of the fast path" (Section 4.3), while the tuned
algorithm locks onto the fast-path period.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import QueueSpec, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class Fir(Workload):
    """Data streams through a 10-stage FIR filter."""

    name = "FIR"
    description = "data streams through 10-stage FIR filter"
    open_capable = True

    STAGES = 10          # 1 source + 9 filter stages, (1:1)x9
    TAPS = 9             # one coefficient per filter stage
    SAMPLES = 600
    BURST = 16           # samples per burst from the source
    INTRA_BURST_GAP = 40
    INTER_BURST_GAP = 420
    MAC_COMPUTE = 100    # per-stage multiply-accumulate cost

    def __init__(self, scale: float = 1.0, arrival=None) -> None:
        super().__init__(scale, arrival)
        self.coefficients = np.array(
            [0.5, 0.25, 0.125, -0.125, 0.0625, -0.0625, 0.03125, -0.03125, 0.015625]
        )
        self.results: List[float] = []
        self.inputs: List[float] = []

    def topology(self) -> List[QueueSpec]:
        return [QueueSpec(1, 1, self.STAGES - 1)]

    def num_threads(self) -> int:
        return self.STAGES

    def session_quotas(self) -> Dict[str, int]:
        return {"fir-source": self.scaled(self.SAMPLES)}

    def build(self, system: "System") -> None:
        lib = system.library
        samples = self.scaled(self.SAMPLES)
        rng = system.rng.stream("fir-input")
        signal = rng.standard_normal(samples)
        plan = self.plan_sessions(system, self.session_quotas())["fir-source"]
        issued = len(plan)
        self.inputs = list(signal[:issued])

        queues = [lib.create_queue() for _ in range(self.STAGES - 1)]
        prods = [lib.open_producer(q, core_id=i) for i, q in enumerate(queues)]
        conss = [lib.open_consumer(q, core_id=i + 1) for i, q in enumerate(queues)]

        def source(ctx):
            window = [0.0] * self.TAPS

            def feed(n, record):
                nonlocal window
                window = [float(signal[n])] + window[: self.TAPS - 1]
                key = ("s0", n)
                self.note_produced(key)
                self.track_request(key, record)
                # Payload: (trace key, sequence, sample window, partial sum).
                yield from ctx.push(prods[0], (key, n, tuple(window), 0.0))
                if (n + 1) % self.BURST == 0:
                    yield from ctx.compute_jittered(self.INTER_BURST_GAP, 0.05)
                else:
                    yield from ctx.compute_jittered(self.INTRA_BURST_GAP, 0.05)

            yield from self.drive(ctx, "fir-source", plan, feed)

        def make_stage(stage: int):
            cons = conss[stage - 1]
            prod = prods[stage] if stage < self.STAGES - 1 else None
            coeff = float(self.coefficients[stage - 1])

            def stage_thread(ctx):
                for _ in range(issued):
                    msg = yield from ctx.pop(cons)
                    key, n, window, partial = msg.payload
                    self.note_consumed(key)
                    self.request_first_pop(key, ctx.now)
                    yield from ctx.compute_jittered(self.MAC_COMPUTE, 0.05)
                    partial = partial + coeff * window[stage - 1]
                    if prod is not None:
                        new_key = (f"s{stage}", n)
                        self.note_produced(new_key)
                        yield from ctx.push(prod, (new_key, n, window, partial))
                    else:
                        self.results.append((n, partial))
                        self.request_complete(("s0", n), ctx.now)

            return stage_thread

        system.spawn(0, source, "fir-source")
        for stage in range(1, self.STAGES):
            system.spawn(stage, make_stage(stage), f"fir-stage{stage}")

    def validate(self) -> None:
        """Conservation plus numerical check against the direct FIR."""
        super().validate()
        if len(self.results) != len(self.inputs):
            raise WorkloadError(
                f"FIR: {len(self.results)} outputs for {len(self.inputs)} inputs"
            )
        x = np.asarray(self.inputs)
        expected = np.convolve(x, self.coefficients)[: len(x)]
        got = np.empty(len(x))
        for n, y in self.results:
            got[n] = y
        if not np.allclose(got, expected, atol=1e-9):
            worst = int(np.argmax(np.abs(got - expected)))
            raise WorkloadError(
                f"FIR output mismatch at sample {worst}: "
                f"{got[worst]} != {expected[worst]}"
            )
