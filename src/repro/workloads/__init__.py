"""The paper's 8 task-parallel benchmarks (Table 2).

Each workload declares its queue topology in ``(M:N)×k`` notation, spawns
one pinned thread per core, and validates message conservation (and, where
applicable, numerical correctness — FIR checks against a direct convolution,
bitonic checks blocks come back sorted).
"""

from repro.workloads.base import QueueSpec, WorkCounter, Workload
from repro.workloads.dsp import Fir
from repro.workloads.ember import Halo, Incast, PingPong, Sweep
from repro.workloads.packet import Firewall, Pipeline
from repro.workloads.registry import WORKLOAD_CLASSES, make_workload, workload_names
from repro.workloads.sort import Bitonic, bitonic_sort, compare_exchange_count

__all__ = [
    "Bitonic",
    "Fir",
    "Firewall",
    "Halo",
    "Incast",
    "PingPong",
    "Pipeline",
    "QueueSpec",
    "Sweep",
    "WORKLOAD_CLASSES",
    "WorkCounter",
    "Workload",
    "bitonic_sort",
    "compare_exchange_count",
    "make_workload",
    "workload_names",
]
