"""bitonic — scatter / sort / gather over two biased queues.

Batcher's bitonic sorting network [5] offers "plenty of parallelism for
hardware to exploit"; the benchmark's software structure (Table 2) is a
master that scatters blocks over a (1:N) queue to worker threads, which
sort them with the bitonic network and return them over an (M:1) queue.

The two queues are biased (Section 4.3): the scatter queue is
producer-bound — the master must prepare each block before pushing, and N
workers drain far faster than one master can feed — so speculation starves
for producer data there; the gather side sees a busy master and benefits
moderately.

:func:`bitonic_sort` is a real, pure implementation of the sorting network
(power-of-two sizes) used both as the workers' payload computation and as a
standalone tested utility.
"""

from __future__ import annotations

from typing import List, Sequence, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.workloads.base import QueueSpec, WorkCounter, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def bitonic_sort(values: Sequence, ascending: bool = True) -> List:
    """Sort *values* with Batcher's bitonic network.

    The input length must be a power of two (the classic network
    constraint).  Returns a new sorted list; the comparison schedule is the
    standard ``log²(n)`` stage network, so the number of compare-exchange
    operations is deterministic for a given length — which is exactly what
    a hardware-parallel implementation would execute.
    """
    n = len(values)
    if not is_power_of_two(n):
        raise ValueError(f"bitonic_sort needs a power-of-two length, got {n}")
    data = list(values)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    up = (i & k) == 0
                    if (data[i] > data[partner]) == (up == ascending):
                        data[i], data[partner] = data[partner], data[i]
            j //= 2
        k *= 2
    return data


def compare_exchange_count(n: int) -> int:
    """Number of compare-exchange ops the network performs for length *n*."""
    if not is_power_of_two(n):
        raise ValueError(f"power-of-two length required, got {n}")
    stages = n.bit_length() - 1  # log2 n
    return (n // 2) * stages * (stages + 1) // 2


class Bitonic(Workload):
    """Sort with varying number of threads, (1:N)×1 + (M:1)×1."""

    name = "bitonic"
    description = "sort with varying number of threads"

    WORKERS = 6
    BLOCKS = 240
    BLOCK_SIZE = 32        # power of two (network constraint)
    PREPARE_COMPUTE = 420  # master: generate/partition one block
    MERGE_COMPUTE = 160    # master: fold one sorted block into the output
    #: Cycles per compare-exchange, scaled by the real network op count.
    CE_COMPUTE = 1.2
    WINDOW = 8             # blocks in flight before the master reaps results

    def topology(self) -> List[QueueSpec]:
        return [QueueSpec(1, self.WORKERS, 1), QueueSpec(self.WORKERS, 1, 1)]

    def num_threads(self) -> int:
        return self.WORKERS + 1

    def build(self, system: "System") -> None:
        lib = system.library
        blocks = self.scaled(self.BLOCKS)
        rng = system.rng.stream("bitonic-blocks")
        sort_cost = int(self.CE_COMPUTE * compare_exchange_count(self.BLOCK_SIZE))

        q_scatter, q_gather = lib.create_queue(), lib.create_queue()
        master_prod = lib.open_producer(q_scatter, core_id=0)
        master_cons = lib.open_consumer(q_gather, core_id=0)
        worker_cons = [
            lib.open_consumer(q_scatter, core_id=w + 1) for w in range(self.WORKERS)
        ]
        worker_prod = [
            lib.open_producer(q_gather, core_id=w + 1) for w in range(self.WORKERS)
        ]
        scatter_work = WorkCounter(blocks)
        self.sorted_blocks = {}

        def master(ctx):
            reaped = 0
            for i in range(blocks):
                yield from ctx.compute_jittered(self.PREPARE_COMPUTE, 0.1)
                block = tuple(int(v) for v in rng.integers(0, 10_000, self.BLOCK_SIZE))
                key = ("blk", i)
                self.note_produced(key)
                yield from ctx.push(master_prod, (key, i, block))
                if i - reaped >= self.WINDOW:
                    msg = yield from ctx.pop(master_cons)
                    yield from self._reap(ctx, msg)
                    reaped += 1
            while reaped < blocks:
                msg = yield from ctx.pop(master_cons)
                yield from self._reap(ctx, msg)
                reaped += 1

        def make_worker(w: int):
            cons, prod = worker_cons[w], worker_prod[w]

            def worker(ctx):
                while True:
                    msg = yield from ctx.pop_until(cons, scatter_work.all_done)
                    if msg is None:
                        return
                    key, i, block = msg.payload
                    self.note_consumed(key)
                    yield from ctx.compute_jittered(sort_cost, 0.05)
                    result = tuple(bitonic_sort(block))
                    scatter_work.mark_done()
                    out_key = ("sorted", i)
                    self.note_produced(out_key)
                    yield from ctx.push(prod, (out_key, i, result))

            return worker

        self._blocks = blocks
        system.spawn(0, master, "bitonic-master")
        for w in range(self.WORKERS):
            system.spawn(w + 1, make_worker(w), f"bitonic-w{w}")

    def _reap(self, ctx, msg):
        out_key, i, result = msg.payload
        self.note_consumed(out_key)
        self.sorted_blocks[i] = result
        yield from ctx.compute_jittered(self.MERGE_COMPUTE, 0.1)

    def validate(self) -> None:
        super().validate()
        if len(self.sorted_blocks) != self._blocks:
            raise WorkloadError(
                f"bitonic: {len(self.sorted_blocks)} of {self._blocks} blocks returned"
            )
        for i, block in self.sorted_blocks.items():
            if list(block) != sorted(block):
                raise WorkloadError(f"bitonic: block {i} came back unsorted")
