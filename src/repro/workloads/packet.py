"""Network packet-processing workloads: pipeline and firewall.

Both follow the software structure of Wang et al.'s CAF benchmarks
(Table 2):

* **pipeline** — a 4-stage packet pipeline with multi-threaded middle
  stages, (1:4)×1 + (4:4)×1 + (4:1)×1 + (1:1)×1 (the 1:1 queue is the
  credit channel from the sink back to the generator);
* **firewall** — filter and dispatch packages, (1:1)×3 + (2:1)×1
  (source fans out to two filters over 1:1 queues, the filters merge into
  the sink over a 2:1 queue, and the sink returns credits 1:1).
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.workloads.base import QueueSpec, WorkCounter, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class Pipeline(Workload):
    """4-stage pipeline with the two middle stages 4-way multi-threaded."""

    name = "pipeline"
    description = "4-stage pipeline with middle stages multi-threaded"
    open_capable = True

    STAGE_WIDTH = 4
    PACKETS = 600
    CREDIT_WINDOW = 32
    GEN_COMPUTE = 60
    STAGE_COMPUTE = 520
    SINK_COMPUTE = 70
    IDLE_BACKOFF = 64

    def topology(self) -> List[QueueSpec]:
        w = self.STAGE_WIDTH
        return [QueueSpec(1, w), QueueSpec(w, w), QueueSpec(w, 1), QueueSpec(1, 1)]

    def num_threads(self) -> int:
        return 2 + 2 * self.STAGE_WIDTH

    def session_quotas(self) -> Dict[str, int]:
        return {"pipe-gen": self.scaled(self.PACKETS)}

    def build(self, system: "System") -> None:
        lib = system.library
        w = self.STAGE_WIDTH
        packets = self.scaled(self.PACKETS)

        q1, q2, q3, q4 = (lib.create_queue() for _ in range(4))
        gen_core = 0
        stage_a_cores = list(range(1, 1 + w))
        stage_b_cores = list(range(1 + w, 1 + 2 * w))
        sink_core = 1 + 2 * w

        gen_prod = lib.open_producer(q1, gen_core)
        a_cons = [lib.open_consumer(q1, c) for c in stage_a_cores]
        a_prod = [lib.open_producer(q2, c) for c in stage_a_cores]
        b_cons = [lib.open_consumer(q2, c) for c in stage_b_cores]
        b_prod = [lib.open_producer(q3, c) for c in stage_b_cores]
        sink_cons = lib.open_consumer(q3, sink_core)
        credit_prod = lib.open_producer(q4, sink_core)
        credit_cons = lib.open_consumer(q4, gen_core)

        plan = self.plan_sessions(system, self.session_quotas())["pipe-gen"]
        issued = len(plan)

        stage_a_work = WorkCounter(packets, label="pipeline.q1:stage-a")
        stage_b_work = WorkCounter(packets, label="pipeline.q2:stage-b")
        if issued < packets:
            # The generator session churned at plan time: retire its
            # shortfall so the stage workers terminate at the reduced
            # count instead of tripping conservation.
            stage_a_work.retire(packets - issued)
            stage_b_work.retire(packets - issued)

        def generator(ctx):
            in_flight = 0

            def emit(i, record):
                nonlocal in_flight
                if in_flight >= self.CREDIT_WINDOW:
                    credit = yield from ctx.pop(credit_cons)
                    self.note_consumed(credit.payload)
                    in_flight -= 1
                yield from ctx.compute_jittered(self.GEN_COMPUTE, 0.1)
                key = ("pkt", i)
                self.note_produced(key)
                self.track_request(key, record)
                yield from ctx.push(gen_prod, key)
                in_flight += 1

            yield from self.drive(ctx, "pipe-gen", plan, emit)
            while in_flight > 0:
                credit = yield from ctx.pop(credit_cons)
                self.note_consumed(credit.payload)
                in_flight -= 1

        def make_worker(cons, prod, counter, stage_tag):
            def worker(ctx):
                while True:
                    msg = yield from ctx.pop_until(cons, counter.all_done)
                    if msg is None:
                        return
                    self.note_consumed(msg.payload)
                    self.request_first_pop(msg.payload, ctx.now)
                    yield from ctx.compute_jittered(self.STAGE_COMPUTE, 0.1)
                    counter.mark_done()
                    key = (stage_tag,) + msg.payload
                    self.note_produced(key)
                    yield from ctx.push(prod, key)

            return worker

        def sink(ctx):
            for _ in range(issued):
                msg = yield from ctx.pop(sink_cons)
                self.note_consumed(msg.payload)
                # Payload is ("b", "a", "pkt", i); the tracked request key
                # is the generator's original ("pkt", i) suffix.
                self.request_complete(msg.payload[2:], ctx.now)
                yield from ctx.compute_jittered(self.SINK_COMPUTE, 0.1)
                key = ("credit", msg.payload)
                self.note_produced(key)
                yield from ctx.push(credit_prod, key)

        system.spawn(gen_core, generator, "pipe-gen")
        for idx, core in enumerate(stage_a_cores):
            system.spawn(
                core,
                make_worker(a_cons[idx], a_prod[idx], stage_a_work, "a"),
                f"pipe-a{idx}",
            )
        for idx, core in enumerate(stage_b_cores):
            system.spawn(
                core,
                make_worker(b_cons[idx], b_prod[idx], stage_b_work, "b"),
                f"pipe-b{idx}",
            )
        system.spawn(sink_core, sink, "pipe-sink")


class Firewall(Workload):
    """Filter and dispatch packages: source → two filters → merging sink."""

    name = "firewall"
    description = "filter and dispatch packages"
    open_capable = True

    PACKETS = 800
    CREDIT_WINDOW = 16
    SOURCE_COMPUTE = 110
    FILTER_COMPUTE = 400
    SINK_COMPUTE = 120

    def topology(self) -> List[QueueSpec]:
        return [QueueSpec(1, 1, 3), QueueSpec(2, 1, 1)]

    def num_threads(self) -> int:
        return 4

    def session_quotas(self) -> Dict[str, int]:
        return {"fw-source": self.scaled(self.PACKETS)}

    def build(self, system: "System") -> None:
        lib = system.library
        packets = self.scaled(self.PACKETS)
        # Route packets alternately to the two filters (dispatch).
        q_a, q_b, q_merge, q_credit = (lib.create_queue() for _ in range(4))

        src_prod_a = lib.open_producer(q_a, 0)
        src_prod_b = lib.open_producer(q_b, 0)
        filt_a_cons = lib.open_consumer(q_a, 1)
        filt_b_cons = lib.open_consumer(q_b, 2)
        filt_a_prod = lib.open_producer(q_merge, 1)
        filt_b_prod = lib.open_producer(q_merge, 2)
        sink_cons = lib.open_consumer(q_merge, 3)
        credit_prod = lib.open_producer(q_credit, 3)
        credit_cons = lib.open_consumer(q_credit, 0)

        plan = self.plan_sessions(system, self.session_quotas())["fw-source"]
        issued = len(plan)

        def source(ctx):
            in_flight = 0

            def emit(i, record):
                nonlocal in_flight
                if in_flight >= self.CREDIT_WINDOW:
                    credit = yield from ctx.pop(credit_cons)
                    self.note_consumed(credit.payload)
                    in_flight -= 1
                yield from ctx.compute_jittered(self.SOURCE_COMPUTE, 0.1)
                key = ("pkt", i)
                self.note_produced(key)
                self.track_request(key, record)
                prod = src_prod_a if i % 2 == 0 else src_prod_b
                yield from ctx.push(prod, key)
                in_flight += 1

            yield from self.drive(ctx, "fw-source", plan, emit)
            while in_flight > 0:
                credit = yield from ctx.pop(credit_cons)
                self.note_consumed(credit.payload)
                in_flight -= 1

        def make_filter(cons, prod, count, tag):
            def filt(ctx):
                for _ in range(count):
                    msg = yield from ctx.pop(cons)
                    self.note_consumed(msg.payload)
                    self.request_first_pop(msg.payload, ctx.now)
                    yield from ctx.compute_jittered(self.FILTER_COMPUTE, 0.1)
                    key = (tag,) + msg.payload
                    self.note_produced(key)
                    yield from ctx.push(prod, key)

            return filt

        def sink(ctx):
            for _ in range(issued):
                msg = yield from ctx.pop(sink_cons)
                self.note_consumed(msg.payload)
                # Payload is ("fa"|"fb", "pkt", i); the tracked request
                # key is the source's original ("pkt", i) suffix.
                self.request_complete(msg.payload[1:], ctx.now)
                yield from ctx.compute_jittered(self.SINK_COMPUTE, 0.1)
                key = ("credit", msg.payload)
                self.note_produced(key)
                yield from ctx.push(credit_prod, key)

        count_a = (issued + 1) // 2
        count_b = issued // 2
        system.spawn(0, source, "fw-source")
        system.spawn(1, make_filter(filt_a_cons, filt_a_prod, count_a, "fa"), "fw-filterA")
        system.spawn(2, make_filter(filt_b_cons, filt_b_prod, count_b, "fb"), "fw-filterB")
        system.spawn(3, sink, "fw-sink")
