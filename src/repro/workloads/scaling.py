"""Core-count-adaptive workloads for the interconnect scaling study.

The Table 2 workloads are pinned to the paper's 16-core geometry (halo is
a literal 4×4 grid).  :class:`ScalingHalo` keeps halo's communication
pattern — nearest-neighbor exchange, the workload whose structure *maps*
onto a mesh — but derives its grid from ``system.config.num_cores`` at
build time, so one workload spans the 8→64-core sweep
(:mod:`repro.eval.scaling`).

It registers under ``"scaling-halo"`` in the instantiation registry only,
NOT in ``WORKLOAD_CLASSES``: the Table 2 figure grids and their golden
fixtures stay exactly as shipped.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.net.topology import derive_mesh_dims
from repro.workloads.base import QueueSpec
from repro.workloads.ember import Halo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class ScalingHalo(Halo):
    """Halo exchange on the grid implied by the system's core count.

    8 cores → 2×4, 16 → 4×4, 32 → 4×8, 64 → 8×8 (the same most-square
    factorization the mesh topology defaults to, so on a derived mesh
    every grid neighbor is one hop away and the workload's communication
    locality is faithfully spatial).
    """

    name = "scaling-halo"
    description = "halo exchange sized to num_cores (scaling study)"

    def topology(self) -> List[QueueSpec]:
        # ROWS/COLS are only known after build() sees the system; the
        # shape report uses the base 4×4 until then.
        return super().topology()

    def build(self, system: "System") -> None:
        # Instance attributes shadow the Halo class attributes, so every
        # inherited method (_neighbors, thread bodies) follows the derived
        # geometry.
        self.ROWS, self.COLS = derive_mesh_dims(system.config.num_cores)
        super().build(system)
