"""The simulation correctness subsystem.

Three independent legs, each attacking a different class of bug:

* :mod:`repro.verify.invariants` — a **live invariant checker** that rides
  the instrumentation hook bus during a run, plus the **stall watchdog**
  that turns silent deadlocks into typed, diagnosable errors.
* :mod:`repro.verify.oracle` — a **differential oracle**: a pure-Python
  functional queue model replayed against every device flavor, diffing the
  delivered message streams (semantics must match even though timings
  differ).
* :mod:`repro.verify.fuzz` — **property-based workload fuzzing**:
  Hypothesis strategies generating randomized producer/consumer programs
  run under both the checker and the oracle.

Everything here is observe-only: enabling verification schedules no
simulation events, so figures stay bit-identical with it on or off.
"""

from repro.verify.invariants import (
    InvariantChecker,
    InvariantViolation,
    StallWatchdog,
)
from repro.verify.oracle import (
    CanonicalStream,
    FunctionalQueueModel,
    OracleReport,
    StreamRecorder,
    run_differential,
)

__all__ = [
    "CanonicalStream",
    "FunctionalQueueModel",
    "InvariantChecker",
    "InvariantViolation",
    "OracleReport",
    "StallWatchdog",
    "StreamRecorder",
    "run_differential",
]
