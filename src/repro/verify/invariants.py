"""Live invariant checking and the stall watchdog.

:class:`InvariantChecker` is a plain :class:`~repro.sim.hooks.HookBus`
subscriber — attaching it never changes a run's event sequence.  It
enforces, while the simulation runs:

* **Per-link FIFO order** — on a single-consumer SQI, each producer's
  messages must be delivered in push order (the guarantee
  ``tests/test_properties.py`` states; multi-consumer SQIs shard a
  producer's stream across endpoints, so only duplication is checkable).
* **Message conservation** — no message delivered twice, none fabricated
  (delivered without a matching push), none silently lost through the
  specBuf path (checked at quiesce).
* **Cacheline state-machine legality** — a fill of a VALID line or a
  vacate of an EMPTY line can only come from a device bug (the legal miss
  is the distinct ``failed-fill`` transition); a burst ``rollback`` may
  only invalidate a line the checker saw filled, and never after the
  message was popped.
* **Transaction lifecycle legality** — every stamp must follow an edge of
  :data:`~repro.sim.transaction.LEGAL_TRANSITIONS`; additionally a message
  must not re-enter the mapping pipeline after a *hit* response (the
  double-delivery signature) — unless that hit was undone by a burst
  rollback (``ROLLED_BACK``), which legalises exactly one re-entry — and
  no in-flight message records may remain at quiesce.

The :class:`~repro.sim.hooks.HookBus` isolates subscriber exceptions (they
are captured, not raised), so the checker *accumulates*
:class:`InvariantViolation` records and raises a
:class:`~repro.errors.VerificationError` from :meth:`InvariantChecker.quiesce`
— call it after the run (the runner does when built with ``verify=True``).

:class:`StallWatchdog` is the deadlock/livelock leg: an observe-only
kernel callback that polls cheap progress counters and raises
:class:`~repro.errors.SimDeadlockError` with a diagnostic dump — blocked
thread names, per-SQI buffer occupancy, specBuf in-flight state — when no
queue progress happens for a full window.  It deliberately does *not*
subscribe to hooks: a subscriber would force event-object construction on
every lifecycle stamp, taxing runs that only want the watchdog.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import SimDeadlockError, VerificationError
from repro.sim.hooks import DeliveryHook, LineHook, PushHook, TransactionHook
from repro.sim.transaction import (
    TERMINAL_MESSAGE_STATES,
    TxnState,
    is_legal_transition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class InvariantViolation(NamedTuple):
    """One semantic violation the checker observed."""

    tick: int
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[tick {self.tick}] {self.rule}: {self.detail}"


class InvariantChecker:
    """Hook-bus subscriber enforcing the queue-semantics invariants."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.violations: List[InvariantViolation] = []
        #: (sqi, producer_id) -> pushed seq numbers, in push order.
        self._pushed: Dict[Tuple[int, int], List[int]] = {}
        #: (sqi, producer_id) -> last delivered seq (FIFO monotonicity).
        self._last_delivered: Dict[Tuple[int, int], int] = {}
        #: (sqi, producer_id, seq) already delivered (duplicate detection).
        self._delivered: Set[Tuple[int, int, int]] = set()
        #: (kind, tid) -> last observed lifecycle state.
        self._txn_state: Dict[Tuple[str, int], TxnState] = {}
        #: (kind, tid) whose most recent RESPONDED stamp was a hit.
        self._hit_responded: Set[Tuple[str, int]] = set()
        #: Message tids that reached RETIRED (double-delivery net).
        self._retired_tids: Set[int] = set()
        #: (endpoint_id, index) -> checker's view of line occupancy.
        self._line_valid: Dict[Tuple[int, int], bool] = {}
        #: sqi -> number of consumer endpoints (cached; None = unknown yet).
        self._consumers_per_sqi: Dict[int, int] = {}
        self.events_seen = 0
        self._subs = [
            system.hooks.subscribe(PushHook, self._on_push),
            system.hooks.subscribe(DeliveryHook, self._on_delivery),
            system.hooks.subscribe(LineHook, self._on_line),
            system.hooks.subscribe(TransactionHook, self._on_transaction),
        ]

    # ----------------------------------------------------------------- teardown
    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        for sub in self._subs:
            self.system.hooks.unsubscribe(sub)
        self._subs = []

    # ---------------------------------------------------------------- recording
    def _flag(self, tick: int, rule: str, detail: str) -> None:
        self.violations.append(InvariantViolation(int(tick), rule, detail))

    def _single_consumer(self, sqi: int) -> bool:
        count = self._consumers_per_sqi.get(sqi)
        if count is None:
            count = sum(
                1 for ep in self.system.library.consumers if ep.sqi == sqi
            )
            self._consumers_per_sqi[sqi] = count
        return count == 1

    # -------------------------------------------------------------- subscribers
    def _on_push(self, event: PushHook) -> None:
        self.events_seen += 1
        self._pushed.setdefault((event.sqi, event.producer_id), []).append(
            event.seq
        )

    def _on_delivery(self, event: DeliveryHook) -> None:
        self.events_seen += 1
        key = (event.sqi, event.producer_id, event.seq)
        if key in self._delivered:
            self._flag(
                event.tick,
                "conservation/duplicate-delivery",
                f"sqi={event.sqi} producer={event.producer_id} "
                f"seq={event.seq} delivered twice",
            )
        self._delivered.add(key)
        pushed = self._pushed.get((event.sqi, event.producer_id), ())
        if event.seq not in pushed:
            self._flag(
                event.tick,
                "conservation/fabricated-message",
                f"sqi={event.sqi} producer={event.producer_id} "
                f"seq={event.seq} delivered but never pushed",
            )
        if self._single_consumer(event.sqi):
            last = self._last_delivered.get((event.sqi, event.producer_id))
            if last is not None and event.seq <= last:
                self._flag(
                    event.tick,
                    "fifo/out-of-order",
                    f"sqi={event.sqi} producer={event.producer_id}: "
                    f"seq {event.seq} delivered after seq {last}",
                )
            self._last_delivered[(event.sqi, event.producer_id)] = event.seq

    def _on_line(self, event: LineHook) -> None:
        self.events_seen += 1
        key = (event.endpoint_id, event.index)
        valid = self._line_valid.get(key, False)
        if event.transition == "fill":
            if valid:
                self._flag(
                    event.tick,
                    "cacheline/fill-of-valid-line",
                    f"endpoint {event.endpoint_id} line {event.index} filled "
                    "while VALID (a legal miss is 'failed-fill')",
                )
            if (
                event.transaction_id is not None
                and event.transaction_id in self._retired_tids
            ):
                self._flag(
                    event.tick,
                    "conservation/refill-of-retired-message",
                    f"message txn#{event.transaction_id} stashed again into "
                    f"endpoint {event.endpoint_id} line {event.index} after "
                    "it was already popped",
                )
            self._line_valid[key] = True
        elif event.transition == "vacate":
            if not valid:
                self._flag(
                    event.tick,
                    "cacheline/vacate-of-empty-line",
                    f"endpoint {event.endpoint_id} line {event.index} "
                    "vacated while EMPTY",
                )
            self._line_valid[key] = False
        elif event.transition == "failed-fill":
            if not valid:
                self._flag(
                    event.tick,
                    "cacheline/failed-fill-of-empty-line",
                    f"endpoint {event.endpoint_id} line {event.index}: miss "
                    "response from an EMPTY line",
                )
        elif event.transition == "rollback":
            # Burst misprediction recovery: an unconfirmed fill invalidated
            # before any consumer saw it.  Legal only on a line the checker
            # saw filled, and only before the message was popped.
            if not valid:
                self._flag(
                    event.tick,
                    "cacheline/rollback-of-empty-line",
                    f"endpoint {event.endpoint_id} line {event.index} "
                    "rolled back while EMPTY",
                )
            if (
                event.transaction_id is not None
                and event.transaction_id in self._retired_tids
            ):
                self._flag(
                    event.tick,
                    "cacheline/rollback-after-pop",
                    f"message txn#{event.transaction_id} rolled back from "
                    f"endpoint {event.endpoint_id} line {event.index} after "
                    "the consumer already popped it",
                )
            self._line_valid[key] = False

    def _on_transaction(self, event: TransactionHook) -> None:
        self.events_seen += 1
        record = event.record
        if record is None:
            return
        key = (record.kind, record.tid)
        prev = self._txn_state.get(key)
        if not is_legal_transition(prev, event.state):
            prev_name = prev.value if prev is not None else "(unstamped)"
            self._flag(
                event.tick,
                "lifecycle/illegal-transition",
                f"{record.kind}#{record.tid} sqi={record.sqi}: "
                f"{prev_name} -> {event.state.value}",
            )
        if event.state in (TxnState.MAPPED, TxnState.BUFFERED):
            if key in self._hit_responded:
                self._flag(
                    event.tick,
                    "lifecycle/re-entry-after-hit",
                    f"{record.kind}#{record.tid} sqi={record.sqi} re-entered "
                    "the mapping pipeline after a hit response "
                    "(double-delivery signature)",
                )
        if event.state is TxnState.RESPONDED:
            if event.detail == "hit":
                self._hit_responded.add(key)
            else:
                self._hit_responded.discard(key)
        if event.state is TxnState.ROLLED_BACK:
            # A burst rollback undoes the speculative fill (hit responses
            # included — the landed line is invalidated before any pop), so
            # the message legally re-enters the pipeline exactly once.
            self._hit_responded.discard(key)
        if event.state is TxnState.RETIRED and record.kind == "message":
            self._retired_tids.add(record.tid)
        self._txn_state[key] = event.state

    # ------------------------------------------------------------------ quiesce
    def check_quiesce(self) -> List[InvariantViolation]:
        """End-of-run checks (leaks); returns violations added by this call."""
        before = len(self.violations)
        now = self.system.env.now
        leaked = 0
        parked = 0
        for (kind, tid), state in sorted(self._txn_state.items()):
            if kind != "message":
                # Requests may legally park at ARRIVED forever: a stale
                # prerequest that never matches data stays pending in
                # consBuf (Section 4.2) — benign, not a leak.
                continue
            if state in TERMINAL_MESSAGE_STATES or tid in self._retired_tids:
                # Ever-retired counts: the hit response for the final stash
                # may legally stamp RESPONDED after the consumer popped.
                continue
            if state is TxnState.BUFFERED:
                # Parked on the SQI's buffering queue: undelivered but
                # accounted for (producers outran consumers), not lost.
                parked += 1
                continue
            leaked += 1
            self._flag(
                now,
                "lifecycle/leaked-in-flight-record",
                f"message#{tid} still {state.value} at quiesce",
            )
        # Conservation: every pushed message must be delivered or accounted
        # for by an open record (leaked — flagged above — or parked).  This
        # second net catches messages whose lifecycle records vanished
        # entirely, e.g. a mutation dropping the whole transaction.
        undelivered = 0
        examples: List[Tuple[int, int, int]] = []
        for (sqi, pid), seqs in sorted(self._pushed.items()):
            for seq in seqs:
                if (sqi, pid, seq) not in self._delivered:
                    undelivered += 1
                    if len(examples) < 8:
                        examples.append((sqi, pid, seq))
        unaccounted = undelivered - parked - leaked
        if unaccounted > 0:
            self._flag(
                now,
                "conservation/lost-messages",
                f"{unaccounted} message(s) pushed but neither delivered nor "
                f"in flight; undelivered (sqi, producer, seq) start: "
                f"{examples}",
            )
        return self.violations[before:]

    def quiesce(self) -> None:
        """Run the end-of-run checks and raise on any accumulated violation."""
        self.check_quiesce()
        self.raise_if_violations()

    def raise_if_violations(self) -> None:
        if not self.violations:
            return
        head = "\n  ".join(str(v) for v in self.violations[:12])
        more = len(self.violations) - 12
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        raise VerificationError(
            f"{len(self.violations)} invariant violation(s):\n  {head}{suffix}",
            violations=tuple(self.violations),
        )

    # ------------------------------------------------------------------ queries
    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (
            f"invariant checker: {self.events_seen} events observed, "
            f"{len(self.violations)} violation(s)"
        )


class StallWatchdog:
    """Abort a stalled run with a diagnostic instead of spinning forever.

    Installs an observe-only callback on the kernel (it schedules nothing,
    so the event sequence is untouched) that compares a cheap progress
    metric — endpoint pushes + pops plus the sum of every device's stat
    counters — across a window of ``config.watchdog_cycles`` cycles.  No
    change across a full window means every remaining event is a consumer
    poll loop spinning on a line nothing will ever fill: the watchdog
    raises :class:`~repro.errors.SimDeadlockError` naming the blocked
    threads and dumping where packets are parked.
    """

    def __init__(self, system: "System", window: Optional[int] = None) -> None:
        self.system = system
        self.window = int(window or system.config.watchdog_cycles)
        self._last_progress = -1

    # ------------------------------------------------------------------ install
    def install(self) -> "StallWatchdog":
        env = self.system.env
        self._last_progress = self._progress()
        env.set_watchdog(self._check, env.now + self.window)
        return self

    def uninstall(self) -> None:
        self.system.env.clear_watchdog()

    # ----------------------------------------------------------------- progress
    def _progress(self) -> int:
        system = self.system
        total = sum(ep.pushes for ep in system.library.producers)
        total += sum(ep.pops for ep in system.library.consumers)
        for device in system.devices:
            total += sum(device.stats.as_dict().values())
        return total

    def _check(self, now: int) -> None:
        progress = self._progress()
        if progress != self._last_progress:
            self._last_progress = progress
            self.system.env.defer_watchdog(now + self.window)
            return
        blocked = tuple(
            getattr(proc, "name", repr(proc))
            for proc in self.system.threads
            if proc.is_alive
        )
        raise SimDeadlockError(
            self._diagnose(now, blocked), tick=now, blocked=blocked
        )

    # --------------------------------------------------------------- diagnosis
    def _diagnose(self, now: int, blocked: Tuple[str, ...]) -> str:
        system = self.system
        lines = [
            f"no queue progress for {self.window} cycles (tick {now})",
            f"blocked threads: {', '.join(blocked) if blocked else '(none)'}",
        ]
        for i, device in enumerate(system.devices):
            snapshot = device.pipeline.occupancy_snapshot()
            if snapshot:
                parked = ", ".join(
                    f"sqi {sqi}: {data} buffered / {reqs} pending requests"
                    for sqi, (data, reqs) in sorted(snapshot.items())
                )
                lines.append(f"device[{i}] parked packets: {parked}")
            lines.append(
                f"device[{i}] prodBuf entries in use: {device.entries_in_use}"
            )
            specbuf = getattr(device, "specbuf", None)
            if specbuf is not None:
                lines.append(
                    f"device[{i}] specBuf: {len(specbuf)} entries, "
                    f"{specbuf.on_fly_count()} push(es) in flight"
                )
        valid = sum(
            1
            for ep in system.library.consumers
            for line in ep.lines
            if not line.is_empty
        )
        lines.append(f"consumer lines holding unread data: {valid}")
        lines.append(
            "likely cause: consumers waiting on stashes the device will "
            "never send (e.g. speculation disabled on fetch-skipping "
            "endpoints, or a dropped response)"
        )
        return "\n".join(lines)
