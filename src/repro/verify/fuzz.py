"""Property-based workload fuzzing.

Randomized producer/consumer thread programs — arbitrary link topologies,
message counts and compute delays — executed under the live invariant
checker *and* the differential oracle.  A specification is plain data
(:class:`ProgramSpec`), so failing cases shrink to minimal topologies and
replay deterministically.

Hypothesis is optional at runtime: the strategies are gated behind an
import guard so the simulator itself never depends on it.  The fuzz tests
(``tests/test_fuzz_semantics.py``) skip cleanly when it is absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.verify.oracle import CanonicalStream, FunctionalQueueModel, StreamRecorder
from repro.workloads.base import QueueSpec, WorkCounter, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.eval.runner import Setting
    from repro.system import System

try:  # pragma: no cover - presence depends on the environment
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    st = None  # type: ignore[assignment]
    HAVE_HYPOTHESIS = False

#: Core budget for fuzz systems: every thread gets its own core.
FUZZ_CORES = 8
#: Generous stall window — fuzz programs make progress every few hundred
#: cycles, so a silent 200k-cycle gap is a real deadlock.
FUZZ_WATCHDOG = 200_000


@dataclass(frozen=True)
class LinkSpec:
    """One fuzzed queue: M producers, N consumers, messages per producer."""

    producers: int = 1
    consumers: int = 1
    messages: int = 4

    def __post_init__(self) -> None:
        if self.producers < 1 or self.consumers < 1 or self.messages < 1:
            raise WorkloadError(f"invalid fuzz link {self!r}")

    @property
    def threads(self) -> int:
        return self.producers + self.consumers

    @property
    def total_messages(self) -> int:
        return self.producers * self.messages


@dataclass(frozen=True)
class ProgramSpec:
    """A complete fuzz case: links plus per-side compute delays."""

    links: Tuple[LinkSpec, ...] = (LinkSpec(),)
    producer_compute: int = 50
    consumer_compute: int = 50

    def __post_init__(self) -> None:
        if not self.links:
            raise WorkloadError("a fuzz program needs at least one link")
        if self.producer_compute < 0 or self.consumer_compute < 0:
            raise WorkloadError("fuzz compute delays must be >= 0")
        if self.total_threads > FUZZ_CORES:
            raise WorkloadError(
                f"fuzz program needs {self.total_threads} threads; "
                f"budget is {FUZZ_CORES}"
            )

    @property
    def total_threads(self) -> int:
        return sum(link.threads for link in self.links)

    def label(self) -> str:
        topo = "+".join(
            f"({l.producers}:{l.consumers})x{l.messages}" for l in self.links
        )
        return f"fuzz[{topo} p{self.producer_compute} c{self.consumer_compute}]"


class FuzzWorkload(Workload):
    """A workload materializing one :class:`ProgramSpec`."""

    name = "fuzz"
    description = "randomized producer/consumer program"

    def __init__(self, spec: ProgramSpec) -> None:
        super().__init__(scale=1.0)
        self.spec = spec

    def topology(self) -> List[QueueSpec]:
        return [
            QueueSpec(link.producers, link.consumers)
            for link in self.spec.links
        ]

    def num_threads(self) -> int:
        return self.spec.total_threads

    def build(self, system: "System") -> None:
        lib = system.library
        spec = self.spec
        next_core = 0

        def take_core() -> int:
            nonlocal next_core
            core, next_core = next_core, next_core + 1
            return core

        for link_idx, link in enumerate(spec.links):
            sqi = lib.create_queue()
            counter = WorkCounter(link.total_messages)

            for p in range(link.producers):
                core = take_core()
                producer = lib.open_producer(sqi, core_id=core)

                def producer_thread(ctx, producer=producer, p=p,
                                    link_idx=link_idx, link=link):
                    for seq in range(link.messages):
                        key = (link_idx, p, seq)
                        self.note_produced(key)
                        yield from ctx.push(producer, key)
                        if spec.producer_compute:
                            yield from ctx.compute(spec.producer_compute)

                system.spawn(core, producer_thread,
                             f"fuzz-p{link_idx}.{p}")

            if link.consumers == 1:
                core = take_core()
                consumer = lib.open_consumer(sqi, core_id=core)

                def consumer_thread(ctx, consumer=consumer, link=link):
                    for _ in range(link.total_messages):
                        msg = yield from ctx.pop(consumer)
                        self.note_consumed(msg.payload)
                        if spec.consumer_compute:
                            yield from ctx.compute(spec.consumer_compute)

                system.spawn(core, consumer_thread, f"fuzz-c{link_idx}.0")
            else:
                # M:N termination: the device shards messages dynamically,
                # so workers loop against the shared work counter.
                for c in range(link.consumers):
                    core = take_core()
                    consumer = lib.open_consumer(sqi, core_id=core)

                    def worker(ctx, consumer=consumer, counter=counter,
                               link_idx=link_idx, c=c):
                        while not counter.all_done():
                            msg = yield from ctx.pop_until(
                                consumer, counter.all_done
                            )
                            if msg is None:
                                break
                            self.note_consumed(msg.payload)
                            counter.mark_done()
                            if spec.consumer_compute:
                                yield from ctx.compute(spec.consumer_compute)

                    system.spawn(core, worker, f"fuzz-c{link_idx}.{c}")


@dataclass
class FuzzCaseResult:
    """Everything one fuzz execution produced, for asserting and diffing."""

    spec: ProgramSpec
    setting_label: str
    stream: CanonicalStream
    predicted: CanonicalStream
    violations: Tuple = ()
    #: The quiesced system, for post-run structural assertions (e.g. the
    #: multi-push claim/release balance checks) — never part of the diff.
    system: Optional["System"] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.mismatches()

    def mismatches(self) -> List[str]:
        return self.predicted.diff(
            self.stream, "functional model", self.setting_label
        )


def run_fuzz_case(
    spec: ProgramSpec,
    setting: "Setting",
    config: Optional["SystemConfig"] = None,
    seed: int = 0xC0FFEE,
    limit: int = 50_000_000,
) -> FuzzCaseResult:
    """Execute one fuzz case under the checker + oracle; returns the result.

    Raises :class:`~repro.errors.VerificationError` (checker),
    :class:`~repro.errors.SimDeadlockError` (watchdog) or
    :class:`~repro.errors.WorkloadError` (conservation) on a violated
    property; an :class:`FuzzCaseResult` with ``ok=True`` otherwise.
    """
    from repro.config import SystemConfig
    from repro.verify.invariants import StallWatchdog

    cfg = config or SystemConfig(num_cores=FUZZ_CORES)
    cfg = cfg.with_overrides(verify=True, watchdog_cycles=FUZZ_WATCHDOG)
    system = setting.build_system(config=cfg, seed=seed)
    recorder = StreamRecorder().attach(system)
    workload = FuzzWorkload(spec)
    workload.build(system)
    StallWatchdog(system).install()
    system.run_to_completion(limit=limit)
    workload.validate()
    assert system.verifier is not None
    system.verifier.quiesce()
    return FuzzCaseResult(
        spec=spec,
        setting_label=setting.label,
        stream=recorder.canonical(),
        predicted=FunctionalQueueModel().predict(recorder),
        violations=tuple(system.verifier.violations),
        system=system,
    )


def run_fuzz_differential(
    spec: ProgramSpec,
    settings: Sequence["Setting"],
    config: Optional["SystemConfig"] = None,
    seed: int = 0xC0FFEE,
) -> List[str]:
    """Run *spec* under every setting; return cross-flavor mismatches."""
    results = [
        run_fuzz_case(spec, setting, config=config, seed=seed)
        for setting in settings
    ]
    mismatches: List[str] = []
    for result in results:
        mismatches.extend(result.mismatches())
    base = results[0]
    for other in results[1:]:
        mismatches.extend(
            base.stream.diff(other.stream, base.setting_label,
                             other.setting_label)
        )
    return mismatches


# ----------------------------------------------------------------- strategies
if HAVE_HYPOTHESIS:

    def link_specs() -> "st.SearchStrategy[LinkSpec]":
        """Links small enough to keep fuzz cases inside the time budget."""
        return st.builds(
            LinkSpec,
            producers=st.integers(min_value=1, max_value=2),
            consumers=st.integers(min_value=1, max_value=2),
            messages=st.integers(min_value=1, max_value=10),
        )

    def program_specs() -> "st.SearchStrategy[ProgramSpec]":
        """Whole programs: 1–2 links, bounded compute, <= 8 threads."""
        return (
            st.builds(
                ProgramSpec,
                links=st.lists(link_specs(), min_size=1, max_size=2).map(tuple),
                producer_compute=st.integers(min_value=0, max_value=400),
                consumer_compute=st.integers(min_value=0, max_value=400),
            )
            .filter(lambda spec: spec.total_threads <= FUZZ_CORES)
        )
