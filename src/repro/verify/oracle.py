"""The differential oracle: device flavors must agree on *semantics*.

Timing differs wildly across the evaluated devices — a speculative push
lands cycles before an on-demand one — so full delivery interleavings are
not comparable.  What *is* device-invariant is the **canonical stream**:
the per-``(sqi, producer)`` sequence of delivered message seq numbers.
On a single-consumer SQI that projection must be exactly the push order
(FIFO); on a multi-consumer SQI the device shards a producer's stream
across endpoints dynamically, so only the delivered *multiset* is
invariant.  The oracle

1. replays one workload under every requested device flavor with a
   :class:`StreamRecorder` riding the hook bus,
2. computes the prediction of :class:`FunctionalQueueModel` — a pure
   Python, zero-timing queue semantics model — from the observed pushes,
3. diffs every flavor's canonical stream against the model and against
   the other flavors, and
4. for 1:1 single-link workload shapes, additionally replays the stream
   through the Michael–Scott-style software queue
   (:mod:`repro.swqueue.msqueue`) as an independent reference
   implementation.

All mismatches land in an :class:`OracleReport`; ``report.ok`` is the
assertion surface for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.hooks import DeliveryHook, PushHook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.eval.runner import Setting
    from repro.system import System


class StreamRecorder:
    """Hook-bus subscriber capturing push and delivery streams of one run."""

    def __init__(self) -> None:
        #: (sqi, producer_id) -> seqs in push order.
        self.pushes: Dict[Tuple[int, int], List[int]] = {}
        #: (sqi, producer_id) -> seqs in delivery order.
        self.deliveries: Dict[Tuple[int, int], List[int]] = {}
        #: sqi -> consumer endpoint ids that received at least one message.
        self.consumers_seen: Dict[int, set] = {}
        self._system: Optional["System"] = None

    def attach(self, system: "System") -> "StreamRecorder":
        self._system = system
        system.hooks.subscribe(PushHook, self._on_push)
        system.hooks.subscribe(DeliveryHook, self._on_delivery)
        return self

    def _on_push(self, event: PushHook) -> None:
        self.pushes.setdefault((event.sqi, event.producer_id), []).append(
            event.seq
        )

    def _on_delivery(self, event: DeliveryHook) -> None:
        self.deliveries.setdefault((event.sqi, event.producer_id), []).append(
            event.seq
        )
        self.consumers_seen.setdefault(event.sqi, set()).add(event.endpoint_id)

    # ------------------------------------------------------------- extraction
    def _consumer_count(self, sqi: int) -> int:
        if self._system is not None:
            count = sum(
                1 for ep in self._system.library.consumers if ep.sqi == sqi
            )
            if count:
                return count
        return len(self.consumers_seen.get(sqi, ())) or 1

    def canonical(self) -> "CanonicalStream":
        """The device-invariant projection of this run's deliveries."""
        links = {}
        for key, seqs in self.deliveries.items():
            sqi = key[0]
            if self._consumer_count(sqi) == 1:
                links[key] = tuple(seqs)
            else:
                # Multi-consumer SQIs shard the stream: order is not
                # comparable across devices, the multiset is.
                links[key] = tuple(sorted(seqs))
        return CanonicalStream(
            links=links,
            pushed={key: tuple(seqs) for key, seqs in self.pushes.items()},
        )


@dataclass(frozen=True)
class CanonicalStream:
    """Delivered seqs per (sqi, producer), order-normalized per link."""

    links: Dict[Tuple[int, int], Tuple[int, ...]]
    pushed: Dict[Tuple[int, int], Tuple[int, ...]] = field(default_factory=dict)

    def diff(self, other: "CanonicalStream", label: str, other_label: str
             ) -> List[str]:
        """Human-readable mismatches between two canonical streams."""
        out: List[str] = []
        for key in sorted(set(self.links) | set(other.links)):
            mine = self.links.get(key)
            theirs = other.links.get(key)
            if mine == theirs:
                continue
            sqi, pid = key
            out.append(
                f"sqi={sqi} producer={pid}: {label} delivered "
                f"{_preview(mine)} but {other_label} delivered "
                f"{_preview(theirs)}"
            )
        return out

    def total_delivered(self) -> int:
        return sum(len(seqs) for seqs in self.links.values())


def _preview(seqs: Optional[Tuple[int, ...]], limit: int = 6) -> str:
    if seqs is None:
        return "(nothing)"
    if len(seqs) <= limit:
        return f"{len(seqs)} msgs {list(seqs)}"
    return f"{len(seqs)} msgs {list(seqs[:limit])}..."


class FunctionalQueueModel:
    """Pure-Python queue semantics: what *must* be delivered, timing-free.

    The model is deliberately trivial — that is the point of an oracle: a
    queue delivers exactly what was pushed, in push order per producer on
    single-consumer links, as a multiset on multi-consumer links.  Any
    device whose canonical stream differs has a semantic bug, whatever its
    timing behaviour.
    """

    def predict(self, recorder: StreamRecorder) -> CanonicalStream:
        links = {}
        for key, seqs in recorder.pushes.items():
            sqi = key[0]
            if recorder._consumer_count(sqi) == 1:
                links[key] = tuple(seqs)
            else:
                links[key] = tuple(sorted(seqs))
        return CanonicalStream(
            links=links,
            pushed={key: tuple(seqs) for key, seqs in recorder.pushes.items()},
        )


# ------------------------------------------------------- software reference
def software_reference_stream(num_messages: int, capacity: int = 8,
                              config: Optional["SystemConfig"] = None
                              ) -> Tuple[int, ...]:
    """Replay a 1:1 stream through the software queue on the MOESI substrate.

    An independent queue implementation (Vyukov-style ring over coherent
    memory, :mod:`repro.swqueue.msqueue`) delivering the same abstract
    workload: one producer enqueues ``0..n-1``, one consumer dequeues
    them.  Returns the dequeued values in delivery order — the reference a
    1:1 hardware link's canonical stream must equal.
    """
    from repro.config import DEFAULT_CONFIG
    from repro.mem.coherence import CoherentMemorySystem
    from repro.sim.kernel import Environment
    from repro.swqueue.msqueue import SoftwareQueue

    env = Environment()
    memory = CoherentMemorySystem(env, config or DEFAULT_CONFIG)
    queue = SoftwareQueue(memory, base_addr=0x10000, capacity=capacity)
    delivered: List[int] = []

    def producer():
        for i in range(num_messages):
            yield from queue.enqueue(0, i)

    def consumer():
        for _ in range(num_messages):
            value = yield from queue.dequeue(1)
            delivered.append(value)

    pa = env.process(producer(), name="oracle-sw-producer")
    pb = env.process(consumer(), name="oracle-sw-consumer")
    env.run_until_complete(env.all_of([pa, pb]))
    return tuple(delivered)


# ------------------------------------------------------------- orchestration
@dataclass
class OracleReport:
    """Outcome of one differential run across device flavors."""

    workload: str
    scale: float
    streams: Dict[str, CanonicalStream]
    mismatches: List[str]
    reference_label: str = "functional-model"

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        flavors = ", ".join(sorted(self.streams))
        verdict = (
            "all streams bit-identical"
            if self.ok
            else f"{len(self.mismatches)} mismatch(es)"
        )
        return (
            f"oracle[{self.workload} @ scale {self.scale}]: "
            f"{{{flavors}}} vs {self.reference_label} — {verdict}"
        )


def run_differential(
    workload_name: str,
    scale: float = 0.05,
    settings: Optional[Sequence["Setting"]] = None,
    config: Optional["SystemConfig"] = None,
    seed: int = 0xC0FFEE,
    include_software_reference: bool = True,
) -> OracleReport:
    """Run *workload_name* under every flavor and diff the delivered streams.

    ``settings=None`` uses the four evaluated configurations
    (:func:`repro.eval.runner.standard_settings`).  The functional model's
    prediction (from the first flavor's observed pushes) is the reference;
    every flavor is diffed against it and the first flavor, and 1:1
    single-link shapes are additionally diffed against the software-queue
    reference implementation.
    """
    from repro.eval.runner import run_workload, standard_settings

    chosen = list(settings) if settings is not None else standard_settings()
    if not chosen:
        raise ValueError("run_differential needs at least one setting")

    streams: Dict[str, CanonicalStream] = {}
    recorders: Dict[str, StreamRecorder] = {}
    for setting in chosen:
        recorder = StreamRecorder()
        run_workload(
            workload_name,
            setting,
            scale=scale,
            config=config,
            seed=seed,
            on_system=recorder.attach,
        )
        recorders[setting.label] = recorder
        streams[setting.label] = recorder.canonical()

    first_label = chosen[0].label
    model = FunctionalQueueModel().predict(recorders[first_label])
    mismatches: List[str] = []
    for label, stream in streams.items():
        mismatches.extend(model.diff(stream, "functional model", label))
    for label, stream in streams.items():
        if label != first_label:
            mismatches.extend(streams[first_label].diff(stream, first_label, label))

    if include_software_reference and len(model.links) == 1:
        ((key, expected),) = model.links.items()
        sw = software_reference_stream(len(expected), config=config)
        if sw != expected:
            mismatches.append(
                f"software-queue reference delivered {_preview(sw)} but the "
                f"functional model expects {_preview(expected)} for "
                f"sqi={key[0]} producer={key[1]}"
            )

    return OracleReport(
        workload=workload_name,
        scale=scale,
        streams=streams,
        mismatches=mismatches,
    )
