"""The top-level System facade: wire a full machine together.

A :class:`System` bundles the simulation environment, the coherence
network, the cores, the routing device (baseline VLRD or SPAMeR SRD) and
the queue library, and provides thread spawning and run control.  This is
the main entry point of the public API::

    from repro import System

    sys_ = System(device="spamer", algorithm="tuned")
    q = sys_.library.create_queue()
    prod = sys_.library.open_producer(q, core_id=0)
    cons = sys_.library.open_consumer(q, core_id=1)

    def producer(ctx):
        for i in range(100):
            yield from ctx.push(prod, i)
            yield from ctx.compute(200)

    def consumer(ctx):
        for _ in range(100):
            msg = yield from ctx.pop(cons)
            yield from ctx.compute(150)

    sys_.spawn(0, producer, "producer")
    sys_.spawn(1, consumer, "consumer")
    sys_.run_to_completion()
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING, Union

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.cpu.core import Core
from repro.cpu.thread import ThreadContext
from repro.mem.address import AddressSpace
from repro.mem.bus import CoherenceNetwork
from repro.registry import resolve_device
from repro.sim.hooks import HookBus
from repro.sim.kernel import Environment
from repro.sim.process import Process
from repro.sim.request import RequestLog
from repro.sim.rng import RngPool
from repro.sim.trace import TraceRecorder
from repro.sim.transaction import TransactionLog
from repro.spamer.delay import DelayAlgorithm, algorithm_by_name
from repro.spamer.security import SecurityPolicy
from repro.vlink.library import QueueLibrary
from repro.vlink.vlrd import VirtualLinkRoutingDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class System:
    """A simulated multi-core machine with a hardware message queue."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        device: Optional[str] = None,
        algorithm: Union[str, DelayAlgorithm, None] = None,
        trace: bool = False,
        seed: int = 0xC0FFEE,
        security: Optional[SecurityPolicy] = None,
        hooks: Optional[HookBus] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        #: The pending-event queue strategy is part of the config surface
        #: (default ``"ladder"``; see docs/PERFORMANCE.md §5) — every
        #: strategy dispatches in bit-identical order, so this knob trades
        #: wall time only, never simulated results.
        self.env = Environment(scheduler=self.config.scheduler)
        self.rng = RngPool(seed)
        #: One instrumentation bus shared by every component of the system.
        self.hooks = hooks if hooks is not None else HookBus()
        self.trace = TraceRecorder(self.env, enabled=trace)
        #: Transaction lifecycle allocator; records are retained for
        #: post-run queries only on traced systems.
        self.transactions = TransactionLog(retain=trace)
        #: Open-system request lifecycle log (inactive until an
        #: open-capable workload plans sessions under an open arrival
        #: process; closed-batch runs never touch it).
        self.requests = RequestLog(hooks=self.hooks)
        self.network = CoherenceNetwork(self.env, self.config, hooks=self.hooks)
        self.addr_space = AddressSpace(self.config.dram_bytes)

        device = device if device is not None else self.config.default_device
        spec = resolve_device(device)
        if spec.accepts_algorithm and algorithm is None:
            algorithm = self.config.default_algorithm or spec.default_algorithm
        if isinstance(algorithm, str):
            algorithm = algorithm_by_name(algorithm)
        self.devices: List[VirtualLinkRoutingDevice] = [
            spec.build(
                self.env,
                self.config,
                self.network,
                algorithm=algorithm,
                trace=self.trace,
                hooks=self.hooks,
                security=security,
            )
            for _ in range(self.config.effective_srds)
        ]
        # Each shard learns its index so it knows its network node on NoC
        # topologies (cross-shard traffic pays real distance).
        for index, shard in enumerate(self.devices):
            shard.srd_index = index
        self.device_name = device
        self.cores: List[Core] = [
            Core(self.env, i, self.config) for i in range(self.config.num_cores)
        ]
        self.library = QueueLibrary(self)
        #: Live invariant checker (attached when ``config.verify`` is set).
        self.verifier = None
        if self.config.verify:
            from repro.verify.invariants import InvariantChecker

            self.verifier = InvariantChecker(self)
        self._threads: List[Process] = []
        #: End-to-end message latency (push call -> consumer's pop return),
        #: one sample per delivered message.
        from repro.sim.stats import RunningStats

        self.latency_stats = RunningStats(keep_samples=True)
        #: Optional observability registry (None = fully disabled; the hook
        #: publishers' ``wants()`` guards then skip all instrumentation).
        #: When set, a MetricsCollector subscribes before any event fires
        #: and run_to_completion() records the run-boundary gauges.
        self.metrics = metrics
        if metrics is not None and getattr(metrics, "enabled", True):
            from repro.obs.collector import MetricsCollector

            MetricsCollector(self.hooks, metrics)

    # ------------------------------------------------------------------ wiring
    @property
    def device(self) -> VirtualLinkRoutingDevice:
        """The first routing device (the only one on default configs)."""
        return self.devices[0]

    def device_for(self, sqi: int) -> VirtualLinkRoutingDevice:
        """The routing device owning *sqi* (SQIs shard across routers)."""
        return self.devices[sqi % len(self.devices)]

    @property
    def supports_speculation(self) -> bool:
        """Whether consumer endpoints may register for speculative pushes
        (a class attribute of the registered device flavor)."""
        return bool(self.device.supports_speculation)

    @property
    def spec_default(self) -> bool:
        """New consumer endpoints default to speculative on SPAMeR builds."""
        return self.supports_speculation

    def spawn(
        self,
        core_id: int,
        program: Callable[[ThreadContext], object],
        name: Optional[str] = None,
    ) -> Process:
        """Pin a thread program to a core and start it."""
        core = self.cores[core_id]
        label = name or f"{program.__name__}@core{core_id}"
        ctx = ThreadContext(self, core, label)
        process = core.pin(program(ctx), label)
        self._threads.append(process)
        return process

    @property
    def threads(self) -> List[Process]:
        return list(self._threads)

    # ------------------------------------------------------------------ running
    def run_to_completion(self, limit: Optional[int] = None) -> int:
        """Run until every spawned thread finishes; returns the end time.

        Raises :class:`~repro.errors.SimulationError` on deadlock or when
        *limit* cycles pass first.
        """
        join = self.env.all_of(self._threads)
        self.env.run_until_complete(join, limit=limit)
        if self.metrics is not None and getattr(self.metrics, "enabled", True):
            from repro.obs.collector import finalize_system

            finalize_system(self, self.metrics)
        return self.env.now

    def run(self, until: Optional[int] = None) -> int:
        """Run the raw event loop (mainly for tests and examples)."""
        return self.env.run(until=until)

    # ------------------------------------------------------------------ metrics
    def aggregate_device_stats(self):
        """Sum the stat counters of every routing device (multi-router)."""
        from repro.sim.stats import Counter

        if len(self.devices) == 1:
            return self.devices[0].stats
        total = Counter()
        for device in self.devices:
            for key, value in device.stats.as_dict().items():
                total.add(key, value)
        return total

    def consumer_line_cycles(self) -> tuple:
        """(average empty cycles, average valid cycles) across all consumer
        cachelines — the Figure 9 breakdown."""
        lines = [line for ep in self.library.consumers for line in ep.lines]
        if not lines:
            return 0.0, 0.0
        empty = sum(line.empty_cycles() for line in lines) / len(lines)
        valid = sum(line.valid_cycles() for line in lines) / len(lines)
        return empty, valid

    def messages_delivered(self) -> int:
        return sum(ep.pops for ep in self.library.consumers)

    def messages_produced(self) -> int:
        return sum(ep.pushes for ep in self.library.producers)
