"""repro — a reproduction of SPAMeR (ICPP 2022).

SPAMeR extends the Virtual-Link hardware message queue with *speculative
pushes*: the routing device anticipates consumer pop requests and pushes
producer data into registered consumer cachelines ahead of time, hiding the
request leg of load-to-use latency.

Public API highlights:

* :class:`repro.System` — build a simulated multi-core machine with either
  the Virtual-Link baseline (``device="vl"``) or SPAMeR (``device="spamer"``
  with a delay algorithm: ``"0delay"``, ``"adapt"``, ``"tuned"``).
* :mod:`repro.workloads` — the paper's 8 task-parallel benchmarks.
* :mod:`repro.eval` — runners regenerating every table and figure.
* :mod:`repro.registry` — :func:`~repro.registry.register_device` /
  :func:`~repro.registry.register_algorithm` decorators plugging new
  routing devices and delay algorithms into ``System``, the runners and
  the CLI with zero core edits.
"""

from repro.config import CacheConfig, DEFAULT_CONFIG, SystemConfig
from repro.errors import (
    BufferFullError,
    ConfigError,
    DeviceError,
    ProtocolError,
    RegistrationError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.registry import (
    algorithm_names,
    device_names,
    register_algorithm,
    register_device,
    resolve_algorithm,
    resolve_device,
)
from repro.spamer import (
    AdaptiveDelay,
    DelayAlgorithm,
    FixedDelay,
    NeverPush,
    SecurityPolicy,
    SpamerRoutingDevice,
    TunedDelay,
    TunedParams,
    ZeroDelay,
    algorithm_by_name,
)
from repro.system import System
from repro.vlink import QueueLibrary, VirtualLinkRoutingDevice

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDelay",
    "BufferFullError",
    "CacheConfig",
    "ConfigError",
    "DEFAULT_CONFIG",
    "DelayAlgorithm",
    "DeviceError",
    "FixedDelay",
    "NeverPush",
    "ProtocolError",
    "QueueLibrary",
    "RegistrationError",
    "ReproError",
    "SchedulingError",
    "SecurityPolicy",
    "SimulationError",
    "SpamerRoutingDevice",
    "System",
    "SystemConfig",
    "TunedDelay",
    "TunedParams",
    "VirtualLinkRoutingDevice",
    "WorkloadError",
    "ZeroDelay",
    "algorithm_by_name",
    "algorithm_names",
    "device_names",
    "register_algorithm",
    "register_device",
    "resolve_algorithm",
    "resolve_device",
    "__version__",
]
