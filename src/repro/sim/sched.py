"""Pluggable pending-event queue strategies for the simulation kernel.

The :class:`~repro.sim.kernel.Environment` stores pending entries — the
plain tuples described in :mod:`repro.sim.kernel` — in a *scheduler*
resolved through this registry, following the same idiom as
:mod:`repro.registry` (devices/algorithms) and
:mod:`repro.net.topology` (fabrics)::

    from repro.sim.sched import register_scheduler

    @register_scheduler("my-queue", description="...")
    class MyScheduler:
        ...

    Environment(scheduler="my-queue")
    SystemConfig(scheduler="my-queue")        # config-level plumbing
    python -m repro fig8 --scheduler my-queue # CLI picks it up too

Every scheduler must dispatch entries in exactly ``(time, priority, seq)``
order — the total order the default binary heap realizes — so simulated
results are bit-identical across schedulers.  That equivalence is enforced
by ``tests/test_kernel_equivalence.py`` (differential Hypothesis traces,
the oracle matrix and the golden Figure-8 metrics, all parametrized over
registered schedulers).

Four implementations ship:

``ladder`` (default)
    A two-tier ladder queue: a small *sorted spine* (ascending list the
    kernel drains with a dispatch cursor — an index increment per event,
    no memmove, no comparisons) absorbs shallow pending sets, and
    overflow *per-cycle lanes* (dict + distinct-time heap) absorb deep
    ones; the spine compacts and refills from the earliest lanes when it
    drains.  The kernel inlines both ends (``insort``/lane-append push,
    cursor-indexed dispatch), so it beats
    the heap at the shallow depths real simulations run at *and* holds
    the O(1)-bucket advantage at stress depths — the measured crossover
    that earned it the default (docs/PERFORMANCE.md §5).

``heap``
    The reference binary heap (:mod:`heapq`).  O(log n) per operation but
    C-accelerated and historically the default; the kernel inlines a
    fast path for it, so ``scheduler="heap"`` executes the exact
    pre-registry loop.

``calendar``
    A slotted calendar queue: a power-of-two ring of per-cycle buckets
    over a near-future window, with a spill heap for entries beyond the
    window.  Push and pop are O(1) for the integer-cycle, mostly-near-
    future schedule pattern the devices produce; whole ``(time,
    priority)`` buckets drain as batches without re-touching the ring.
    Wins once the pending set is deep (hundreds of entries — the 256+
    core regime); see docs/PERFORMANCE.md §5 for measured crossover.

``batch``
    A batched same-timestamp dispatcher: a dict of per-timestamp buckets
    plus a heap of *distinct* timestamps.  Heap traffic drops from one
    push+pop per event to one per distinct timestamp; same-cycle events
    drain as batches.  The strongest structure when timestamps repeat
    heavily and gaps between busy cycles are wide.

Batch-draining contract
-----------------------

The bucket schedulers hand the kernel a whole FIFO batch of entries that
share one ``(time, priority)`` key.  Two rules keep that exactly
heap-equivalent:

* **Preemption.**  A callback running inside a NORMAL batch may schedule
  an URGENT entry for the *same* cycle (``schedule_callback`` does exactly
  this); the heap would dispatch it before the rest of the batch.  The
  scheduler raises its ``preempted`` flag from :meth:`push` when that
  happens; the kernel's loop checks the flag after every dispatch and
  returns the undispatched remainder via :meth:`reclaim`, then re-pops —
  the urgent lane comes back first.
* **Pop implies dispatch.**  The kernel only pops entries it dispatches
  immediately (before any further ``schedule`` call can run).  The
  calendar queue relies on this to advance its window cursor safely:
  after a pop the clock catches up to the popped cycle, so no later push
  can target an earlier cycle.  :meth:`peek_time` never moves the cursor
  and is safe to call at any point.

Bucket schedulers support the kernel's two priority lanes (``URGENT=0``,
``NORMAL=1``); the heap and the ladder additionally accept arbitrary
integer priorities (both realize the order through full-tuple
comparisons, never through a fixed lane pair).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, SchedulingError

_heappush = heapq.heappush
_heappop = heapq.heappop

#: The scheduler :class:`~repro.sim.kernel.Environment` and
#: :class:`~repro.config.SystemConfig` build when the caller names none.
#: Flipped from ``heap`` to ``ladder`` on the measured evidence in the
#: committed ``BENCH_kernel.json``: the ladder is at least as fast on the
#: shallow-16 leg and the real sim leg, and ≥1.3× the heap on the
#: deep-pending stress aggregate (docs/PERFORMANCE.md §5 has the tables
#: and the crossover explanation).  Simulated results are bit-identical
#: by the equivalence-harness contract, so the flip is wall-clock-only.
DEFAULT_SCHEDULER = "ladder"


# ------------------------------------------------------------------- registry
_SCHEDULERS: Dict[str, Callable[[], object]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_scheduler(name: str, *, description: str = "") -> Callable:
    """Class decorator: make an event-queue strategy constructible by name.

    The decorated class must be constructible with no arguments and
    implement the scheduler protocol (``push``/``pop``/``pop_batch``/
    ``reclaim``/``peek_time``/``__len__`` and the ``preempted`` flag, or
    expose a raw ``heap`` list for the kernel's inline fast path).
    """

    def decorator(cls):
        if name in _SCHEDULERS:
            raise ConfigError(f"scheduler {name!r} is already registered")
        _SCHEDULERS[name] = cls
        _DESCRIPTIONS[name] = (
            description or (cls.__doc__ or "").strip().split("\n")[0]
        )
        cls.registry_name = name
        return cls

    return decorator


def resolve_scheduler(name: str) -> Callable[[], object]:
    """Look a scheduler up by name; unknown names list what is available."""
    if name not in _SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r}; registered schedulers: "
            f"{scheduler_names()}"
        )
    return _SCHEDULERS[name]


def scheduler_names() -> List[str]:
    """Registered scheduler names, sorted."""
    return sorted(_SCHEDULERS)


def scheduler_descriptions() -> Dict[str, str]:
    """Name → one-line description (for ``--scheduler`` help and docs)."""
    return dict(_DESCRIPTIONS)


def unregister_scheduler(name: str) -> None:
    """Remove a registration (test isolation helper)."""
    _SCHEDULERS.pop(name, None)
    _DESCRIPTIONS.pop(name, None)


# ----------------------------------------------------------------- reference
@register_scheduler("heap", description="binary heap (heapq) — the "
                    "reference; fastest at shallow pending sets")
class HeapScheduler:
    """The reference binary-heap strategy.

    Exposes the raw ``heap`` list so the kernel's dispatch loops can run
    their historical inline fast path (``heappush``/``heappop`` bound to
    locals, no per-event method calls) — the default configuration is
    byte- and wall-clock-identical to the pre-registry kernel.
    """

    __slots__ = ("heap",)

    def __init__(self) -> None:
        #: The raw heap list; the kernel reads this attribute to enable
        #: its inline fast path.  Entries are the kernel's plain tuples.
        self.heap: List[Tuple] = []

    def push(self, entry: Tuple) -> None:
        _heappush(self.heap, entry)

    def pop(self) -> Tuple:
        return _heappop(self.heap)

    def pop_batch(self) -> Optional[List[Tuple]]:
        """Singleton batches — the generic loop works on a heap too."""
        if not self.heap:
            return None
        return [_heappop(self.heap)]

    def reclaim(self, batch: List[Tuple], index: int) -> None:
        for entry in batch[index:]:
            _heappush(self.heap, entry)

    def peek_time(self) -> Optional[int]:
        heap = self.heap
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return len(self.heap)

    #: Heap comparisons on full entry tuples realize any integer priority;
    #: the generic loop never preempts a singleton batch.
    preempted = False


# ------------------------------------------------------------- bucket shared
def _check_priority(priority: int) -> None:
    if priority != 0 and priority != 1:
        raise SchedulingError(
            f"bucket schedulers support the two kernel priority lanes "
            f"(URGENT=0, NORMAL=1), got priority={priority}; use the "
            f"'heap' scheduler for custom priorities"
        )


@register_scheduler("batch", description="batched same-timestamp "
                    "dispatcher: per-timestamp buckets + a heap of "
                    "distinct times")
class BucketBatchScheduler:
    """Batched same-timestamp dispatcher.

    A dict maps each pending timestamp to a pair of FIFO lanes
    ``[urgent, normal]``; a heap orders the *distinct* timestamps.  Heap
    traffic shrinks from one push+pop per event to one per distinct
    timestamp, and :meth:`pop_batch` drains a whole ``(time, priority)``
    lane without re-touching either structure.
    """

    __slots__ = ("_buckets", "_times", "_len", "_active_time",
                 "_active_prio", "preempted")

    def __init__(self) -> None:
        self._buckets: Dict[int, List[List[Tuple]]] = {}
        self._times: List[int] = []
        self._len = 0
        self._active_time = -1
        self._active_prio = 0
        self.preempted = False

    def push(self, entry: Tuple) -> None:
        t = entry[0]
        priority = entry[1]
        bucket = self._buckets.get(t)
        if bucket is None:
            _check_priority(priority)
            self._buckets[t] = bucket = [[], []]
            _heappush(self._times, t)
        else:
            _check_priority(priority)
        bucket[priority].append(entry)
        self._len += 1
        if t == self._active_time and priority < self._active_prio:
            self.preempted = True

    def pop_batch(self) -> Optional[List[Tuple]]:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            batch = bucket[0]
            if batch:
                bucket[0] = []
                priority = 0
            else:
                batch = bucket[1]
                if not batch:
                    # Both lanes drained: retire the timestamp.
                    _heappop(times)
                    del buckets[t]
                    continue
                bucket[1] = []
                priority = 1
            self._len -= len(batch)
            self._active_time = t
            self._active_prio = priority
            self.preempted = False
            return batch
        return None

    def reclaim(self, batch: List[Tuple], index: int) -> None:
        rest = batch[index:]
        if not rest:
            return
        # The active bucket is still registered (timestamps only retire
        # when both lanes are observed empty by pop_batch), and anything
        # appended to the lane meanwhile carries a larger seq — prepending
        # restores exact (time, priority, seq) order.
        lane = self._buckets[self._active_time][self._active_prio]
        lane[0:0] = rest
        self._len += len(rest)

    def pop(self) -> Tuple:
        batch = self.pop_batch()
        if batch is None:
            raise IndexError("pop from an empty scheduler")
        self.reclaim(batch, 1)
        return batch[0]

    def peek_time(self) -> Optional[int]:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            if bucket[0] or bucket[1]:
                return t
            _heappop(times)
            del buckets[t]
        return None

    def __len__(self) -> int:
        return self._len


@register_scheduler("calendar", description="slotted calendar queue: "
                    "per-cycle ring buckets over a near window + spill "
                    "heap")
class CalendarScheduler:
    """Slotted calendar queue with a spill heap for far-future entries.

    A power-of-two ring of per-cycle slots covers the window
    ``[cursor, cursor + slots)``; each occupied slot holds the FIFO lane
    pair ``[urgent, normal]`` for exactly one cycle (width = 1 cycle, so
    slots never alias within the window).  Entries beyond the window land
    in a spill heap and migrate into the ring as the cursor advances.
    Push is O(1); pop scans forward from the cursor, which the integer-
    cycle, mostly-near-future schedule pattern keeps short — and each hit
    drains a whole per-cycle lane as one batch.
    """

    __slots__ = ("_ring", "_mask", "_cursor", "_ring_len", "_overflow",
                 "_head", "_active_time", "_active_prio", "preempted")

    #: Ring size (cycles covered without spilling).  2048 spans every
    #: latency parameter in :class:`~repro.config.SystemConfig` (the
    #: largest, ``stale_scan_threshold``, is 1024), so steady-state
    #: device traffic never touches the spill heap.
    SLOTS = 2048

    def __init__(self, slots: int = SLOTS) -> None:
        if slots & (slots - 1) or slots <= 0:
            raise ConfigError(f"calendar slots must be a power of two, "
                              f"got {slots}")
        self._ring: List[Optional[List[List[Tuple]]]] = [None] * slots
        self._mask = slots - 1
        self._cursor = 0
        self._ring_len = 0
        self._overflow: List[Tuple] = []
        #: Memoized earliest occupied cycle (-1 = unknown); lets
        #: peek_time avoid rescanning and pop_batch jump straight there.
        self._head = -1
        self._active_time = -1
        self._active_prio = 0
        self.preempted = False

    # -- internal helpers --------------------------------------------------
    def _insert(self, entry: Tuple) -> None:
        """Place an in-window entry into its per-cycle lane."""
        slot = entry[0] & self._mask
        bucket = self._ring[slot]
        if bucket is None:
            self._ring[slot] = bucket = [[], []]
        bucket[entry[1]].append(entry)
        self._ring_len += 1

    def _migrate(self) -> None:
        """Pull spill entries that now fall inside the window into the
        ring (heap pops come out in exact key order, so lane FIFO order
        is preserved)."""
        overflow = self._overflow
        cursor = self._cursor
        mask = self._mask
        while overflow and overflow[0][0] - cursor <= mask:
            self._insert(_heappop(overflow))

    # -- protocol ----------------------------------------------------------
    def push(self, entry: Tuple) -> None:
        t = entry[0]
        priority = entry[1]
        _check_priority(priority)
        if t - self._cursor <= self._mask:
            slot = t & self._mask
            bucket = self._ring[slot]
            if bucket is None:
                self._ring[slot] = bucket = [[], []]
            bucket[priority].append(entry)
            self._ring_len += 1
            if t == self._active_time and priority < self._active_prio:
                self.preempted = True
            head = self._head
            if head >= 0 and t < head:
                self._head = t
        else:
            # Beyond the window (necessarily beyond any memoized head).
            _heappush(self._overflow, entry)

    def pop_batch(self) -> Optional[List[Tuple]]:
        ring = self._ring
        mask = self._mask
        while True:
            if self._overflow:
                self._migrate()
            if not self._ring_len:
                overflow = self._overflow
                if not overflow:
                    return None
                # Jump the window to the earliest spilled cycle.  Safe
                # under the pop-implies-dispatch contract: the clock
                # advances to this cycle before any further push.
                self._cursor = overflow[0][0]
                self._head = -1
                continue
            c = self._head
            if c < 0:
                c = self._cursor
            while True:
                bucket = ring[c & mask]
                if bucket is not None:
                    break
                c += 1
            self._cursor = c
            batch = bucket[0]
            if batch:
                bucket[0] = []
                priority = 0
            else:
                batch = bucket[1]
                if not batch:
                    # Both lanes drained: free the slot, keep scanning.
                    ring[c & mask] = None
                    self._head = -1
                    continue
                bucket[1] = []
                priority = 1
            # The memoized head dies with the batch: the bucket may drain
            # completely during dispatch, so the next peek must rescan
            # (from the cursor, which now sits on this cycle — cheap).
            self._head = -1
            self._ring_len -= len(batch)
            self._active_time = c
            self._active_prio = priority
            self.preempted = False
            return batch

    def reclaim(self, batch: List[Tuple], index: int) -> None:
        rest = batch[index:]
        if not rest:
            return
        # The active slot still holds its lane pair (slots are only freed
        # once pop_batch observes both lanes empty); see
        # BucketBatchScheduler.reclaim for the ordering argument.
        lane = self._ring[self._active_time & self._mask][self._active_prio]
        lane[0:0] = rest
        self._ring_len += len(rest)

    def pop(self) -> Tuple:
        batch = self.pop_batch()
        if batch is None:
            raise IndexError("pop from an empty scheduler")
        self.reclaim(batch, 1)
        return batch[0]

    def peek_time(self) -> Optional[int]:
        if self._head >= 0:
            return self._head
        if self._overflow:
            # Migration is pop-side only (it can advance no cursor), but
            # peek must still see spilled entries that beat the ring.
            self._migrate()
        if self._ring_len:
            ring = self._ring
            mask = self._mask
            c = self._cursor
            while True:
                bucket = ring[c & mask]
                if bucket is not None and (bucket[0] or bucket[1]):
                    self._head = c
                    return c
                c += 1
        overflow = self._overflow
        return overflow[0][0] if overflow else None

    def __len__(self) -> int:
        return self._ring_len + len(self._overflow)


# --------------------------------------------------------------------- ladder
#: Pending-spine size past which the ladder spills its tail into lanes.
#: Chosen from the measured sorted-list-vs-heap crossover:
#: `bisect.insort` beats `heappush` while the insertion memmove stays a
#: few cache lines, and loses past a few hundred entries
#: (docs/PERFORMANCE.md §5).  The kernel's inline push reads this
#: constant, so it must stay in sync with
#: :meth:`LadderScheduler.spill`'s expectations (any positive value is
#: correct; only speed changes).
LADDER_SPINE_CAP = 256

#: How many entries a refill tries to pull back into the spine.  Large
#: enough to amortize the per-refill sort call, small enough that the
#: spine's pending section stays a few cache lines.  Refills always move
#: *whole cycles*, so the actual chunk can exceed this for dense
#: same-cycle bursts.
LADDER_REFILL_TARGET = 64

#: Length of the retired (already-dispatched) spine prefix past which it
#: is compacted away.  Dispatch advances ``cursor`` instead of popping —
#: O(1), no memmove — so retired entries accumulate at the front until a
#: single ``del spine[:cursor]`` reclaims them; at 512 the amortized cost
#: is one pointer move per dispatched event.
LADDER_COMPACT = 512

#: Boundary value meaning "no lanes: every entry belongs in the spine".
#: Plain int so boundary comparisons stay exact integer compares.
_NO_LANES = 1 << 62


@register_scheduler("ladder", description="two-tier ladder queue: sorted "
                    "spine drained by a dispatch cursor + per-cycle "
                    "overflow lanes; wins at sim-leg *and* stress depths")
class LadderScheduler:
    """Two-tier ladder queue: sorted spine + per-cycle overflow lanes.

    **Invariant:** every pending spine entry has ``time < boundary``;
    every lane entry has ``time >= boundary``.  The spine is a list whose
    pending section ``spine[cursor:]`` is ascending-sorted; entries
    before ``cursor`` are already dispatched and only await compaction
    (a single ``del spine[:cursor]`` every :data:`LADDER_COMPACT`
    events), so dispatch is an index + cursor increment — O(1), no
    memmove, no comparisons, no batch machinery, no preemption protocol.
    Pushes below the boundary ``bisect.insort`` into the pending section
    (``lo=cursor`` — the retired prefix is *not* globally sorted against
    new same-cycle URGENT entries, so the bound is load-bearing); pushes
    at or past the boundary append to a per-cycle lane (dict + heap of
    distinct cycles), which keeps deep pending sets O(1) per push.  The
    kernel inlines both paths, reading ``boundary``/``cursor``/``lanes``
    /``times`` directly — exposing ``spine`` opts a scheduler into that
    whole contract.  When the spine drains, :meth:`refill` compacts it
    and pulls the earliest whole cycles back (Timsort over nearly-sorted
    runs, effectively linear), advancing the boundary.

    Because dispatch is always single-entry from a totally ordered
    pending section, the heap-equivalence argument is direct: ``(time,
    priority, seq)`` order holds by construction, for *arbitrary*
    integer priorities — the ladder, unlike the bucket schedulers, never
    fixes a lane count per cycle.  ``preempted`` is permanently
    ``False``: an URGENT entry scheduled mid-cycle insorts ahead of
    everything later and is simply the next dispatch.
    """

    __slots__ = ("spine", "boundary", "cursor", "lanes", "times")

    preempted = False  # single-entry dispatch: nothing to preempt

    def __init__(self) -> None:
        #: The sorted near-future tier.  The kernel binds this exact list
        #: object into its dispatch loop — it is mutated in place
        #: (insort/extend/sort/del-slice) and NEVER rebound.
        self.spine: List[Tuple] = []
        #: First cycle owned by the lanes (``_NO_LANES`` when they are
        #: empty).  Kernel-inlined pushes compare against this directly.
        self.boundary: int = _NO_LANES
        #: Index of the next pending spine entry; ``spine[:cursor]`` is
        #: dispatched garbage awaiting compaction.  The kernel's run loop
        #: mirrors this in a local and writes it back before every
        #: dispatch, so pushes from inside callbacks always see it fresh.
        self.cursor: int = 0
        self.lanes: Dict[int, List[Tuple]] = {}
        self.times: List[int] = []

    # -- internal helpers ---------------------------------------------------
    def _lane_append(self, entry: Tuple) -> None:
        t = entry[0]
        lane = self.lanes.get(t)
        if lane is None:
            self.lanes[t] = [entry]
            _heappush(self.times, t)
        else:
            lane.append(entry)

    def spill(self) -> None:
        """Move the spine's pending tail into the lanes (it grew past the
        cap).

        The cut lands on a *time* boundary (all entries of one cycle stay
        on one side) so the invariant survives; if every pending entry
        shares one cycle the spill is skipped — the spine is then bounded
        by that single cycle's event count, which no structure can split.
        Never touches ``cursor`` (the kernel's run loop caches it in a
        local across the dispatch that triggered this spill).
        """
        spine = self.spine
        cursor = self.cursor
        mid = cursor + (len(spine) - cursor) // 2
        t = spine[mid][0]
        # First pending index with time == t: (t,) compares below every
        # real entry at t (a shorter tuple prefix sorts first).  The
        # search starts at the cursor — the retired prefix may hold
        # same-cycle entries that sort *after* a new URGENT entry.
        cut = bisect_left(spine, (t,), cursor)
        if cut == cursor:
            return
        for entry in spine[cut:]:
            self._lane_append(entry)
        del spine[cut:]
        self.boundary = t

    def refill(self) -> bool:
        """Compact the drained spine and pull the earliest whole cycles
        back from the lanes; returns True when entries arrived.

        Safe under the pop-implies-dispatch contract: refill only runs
        between dispatches, so no concurrent push can land below the new
        boundary before the clock catches up.  The chunk is sorted as a
        whole because lanes are per-cycle FIFO *except* after a spill,
        which may append an older-seq run behind newer direct pushes —
        Timsort over the few resulting runs is near-linear.
        """
        spine = self.spine
        if self.cursor:
            del spine[:self.cursor]
            self.cursor = 0
        times = self.times
        if not times:
            self.boundary = _NO_LANES
            return False
        lanes = self.lanes
        moved = 0
        while times and moved < LADDER_REFILL_TARGET:
            batch = lanes.pop(_heappop(times))
            spine.extend(batch)
            moved += len(batch)
        self.boundary = times[0] if times else _NO_LANES
        spine.sort()
        return True

    # -- protocol -----------------------------------------------------------
    def push(self, entry: Tuple) -> None:
        t = entry[0]
        if t < self.boundary:
            spine = self.spine
            cursor = self.cursor
            insort(spine, entry, cursor)
            if len(spine) - cursor > LADDER_SPINE_CAP:
                self.spill()
        else:
            # Lane append, inlined (the kernel inlines this same branch;
            # this copy serves reclaim, tests, and non-kernel callers).
            lane = self.lanes.get(t)
            if lane is None:
                self.lanes[t] = [entry]
                _heappush(self.times, t)
            else:
                lane.append(entry)

    def pop(self) -> Tuple:
        spine = self.spine
        cursor = self.cursor
        if cursor >= len(spine):
            if not self.refill():
                raise IndexError("pop from an empty scheduler")
            cursor = 0
        entry = spine[cursor]
        cursor += 1
        if cursor >= LADDER_COMPACT:
            del spine[:cursor]
            self.cursor = 0
        else:
            self.cursor = cursor
        return entry

    def pop_batch(self) -> Optional[List[Tuple]]:
        """Singleton batches — the ladder is a single-entry dispatcher."""
        if self.cursor >= len(self.spine) and not self.refill():
            return None
        return [self.pop()]

    def reclaim(self, batch: List[Tuple], index: int) -> None:
        for entry in batch[index:]:
            self.push(entry)

    def peek_time(self) -> Optional[int]:
        spine = self.spine
        cursor = self.cursor
        if cursor < len(spine):
            return spine[cursor][0]
        times = self.times
        return times[0] if times else None

    def __len__(self) -> int:
        return (len(self.spine) - self.cursor
                + sum(map(len, self.lanes.values())))
