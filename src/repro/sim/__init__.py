"""Deterministic discrete-event simulation kernel.

This subpackage replaces the paper's gem5 substrate with a transaction-level
simulator: an event calendar (:class:`Environment`), generator-based
processes, contention primitives (:class:`Resource`, :class:`Store`,
:class:`FifoServer`), statistics, tracing and seeded randomness.
"""

from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Environment, NORMAL, URGENT
from repro.sim.process import Process
from repro.sim.resources import FifoServer, Resource, Store
from repro.sim.rng import RngPool, bithash
from repro.sim.stats import Counter, RunningStats, StateTimer, geometric_mean
from repro.sim.trace import EventKind, TraceEvent, TraceRecorder, Transaction

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "EventKind",
    "FifoServer",
    "NORMAL",
    "Process",
    "Resource",
    "RngPool",
    "RunningStats",
    "StateTimer",
    "Store",
    "Timeout",
    "TraceEvent",
    "TraceRecorder",
    "Transaction",
    "URGENT",
    "bithash",
    "geometric_mean",
]
