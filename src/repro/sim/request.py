"""Per-request lifecycle records for open-system runs.

The open-system traffic layer (:mod:`repro.workloads.arrival`) injects
*requests* into sessions over simulated time; each one gets a
:class:`RequestRecord` mirroring :class:`~repro.sim.transaction.
TransactionRecord` — an explicit, queryable journey instead of scattered
counters.  Lifecycle::

    ARRIVED ──> ADMITTED ──> FIRST_POP ──> COMPLETED

* **arrived** — the arrival process scheduled the request (exogenous);
* **admitted** — the session thread began processing it (the gap is the
  session's own backlog: requests queue *behind the producer* when the
  system cannot drain them as fast as they arrive);
* **first-pop** — a consumer popped the request's first message (the
  moment speculation can win or lose);
* **completed** — the request's final message was consumed downstream.

``sojourn`` (completion − arrival) is the open-system response time whose
p50/p99/p999 the load sweep reports; ``queue_delay`` (admission − arrival)
isolates producer-side backlog from in-fabric time.

Records are plain bookkeeping, exactly like transaction records: they
schedule no simulation events and draw no randomness, so an *inactive*
:class:`RequestLog` (every closed-batch run) costs nothing and perturbs
nothing — golden metrics and traces stay byte-identical.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, NamedTuple, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.hooks import HookBus


class ReqState(Enum):
    """Lifecycle states of one open-system request."""

    ARRIVED = "arrived"
    ADMITTED = "admitted"
    FIRST_POP = "first-pop"
    COMPLETED = "completed"


#: Legal lifecycle edges.  FIRST_POP may be skipped for requests whose
#: first consumption *is* their completion (single-hop workloads stamp
#: both at once).
LEGAL_REQUEST_TRANSITIONS: Dict[Optional[ReqState], frozenset] = {
    None: frozenset({ReqState.ARRIVED}),
    ReqState.ARRIVED: frozenset({ReqState.ADMITTED}),
    ReqState.ADMITTED: frozenset({ReqState.FIRST_POP, ReqState.COMPLETED}),
    ReqState.FIRST_POP: frozenset({ReqState.COMPLETED}),
    ReqState.COMPLETED: frozenset(),
}


class ReqStamp(NamedTuple):
    """One timestamped request state transition."""

    state: ReqState
    tick: int


class RequestRecord:
    """The queryable journey of one open-system request."""

    __slots__ = ("rid", "session", "seq", "stamps")

    def __init__(self, rid: int, session: str, seq: int) -> None:
        self.rid = rid
        #: Session (client) name, e.g. ``"incast-prod2"``.
        self.session = session
        #: Per-session request sequence number.
        self.seq = seq
        self.stamps: List[ReqStamp] = []

    # ------------------------------------------------------------------ record
    def stamp(self, state: ReqState, tick: int) -> ReqStamp:
        entry = ReqStamp(state, int(tick))
        self.stamps.append(entry)
        return entry

    # ------------------------------------------------------------------- query
    @property
    def state(self) -> Optional[ReqState]:
        return self.stamps[-1].state if self.stamps else None

    def first(self, state: ReqState) -> Optional[int]:
        for s in self.stamps:
            if s.state is state:
                return s.tick
        return None

    @property
    def arrival(self) -> Optional[int]:
        return self.first(ReqState.ARRIVED)

    @property
    def admission(self) -> Optional[int]:
        return self.first(ReqState.ADMITTED)

    @property
    def first_pop(self) -> Optional[int]:
        return self.first(ReqState.FIRST_POP)

    @property
    def completion(self) -> Optional[int]:
        return self.first(ReqState.COMPLETED)

    @property
    def completed(self) -> bool:
        return self.completion is not None

    @property
    def sojourn(self) -> Optional[int]:
        """End-to-end response time: completion − arrival (None if open)."""
        start, end = self.arrival, self.completion
        if start is None or end is None:
            return None
        return end - start

    @property
    def queue_delay(self) -> Optional[int]:
        """Producer-side backlog: admission − arrival."""
        start, end = self.arrival, self.admission
        if start is None or end is None:
            return None
        return end - start

    @property
    def service(self) -> Optional[int]:
        """In-system time: completion − admission."""
        start, end = self.admission, self.completion
        if start is None or end is None:
            return None
        return end - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.state.value if self.state else "empty"
        return (
            f"<RequestRecord #{self.rid} {self.session}[{self.seq}] "
            f"state={state}>"
        )


class RequestLog:
    """Allocates request records, tracks sojourn stats, publishes hooks.

    Inactive by default — every closed-batch run leaves it untouched so
    the open-system layer costs exactly nothing there.  An open-capable
    workload calls :meth:`activate` at build time; from then on each
    lifecycle stamp also feeds the sojourn reservoir and (when anybody
    listens) a :class:`~repro.sim.hooks.RequestHook`.
    """

    __slots__ = ("hooks", "active", "_records", "_next_id", "sojourn_stats",
                 "completed")

    def __init__(self, hooks: Optional["HookBus"] = None) -> None:
        self.hooks = hooks
        self.active = False
        self._records: List[RequestRecord] = []
        self._next_id = 0
        from repro.sim.stats import RunningStats

        #: Per-request sojourn samples (completion − arrival), the
        #: reservoir behind the p50/p99/p999 load-sweep report.
        self.sojourn_stats = RunningStats(keep_samples=True)
        self.completed = 0

    def activate(self) -> "RequestLog":
        self.active = True
        return self

    # ------------------------------------------------------------------ record
    def open(
        self, session: str, seq: int, arrival_tick: int, admission_tick: int
    ) -> RequestRecord:
        """Create a record already ARRIVED and ADMITTED.

        Both stamps land at once because the session driver only runs a
        request once it reaches it — the arrival tick is the planned
        (possibly past) schedule entry, the admission tick is now.
        """
        record = RequestRecord(self._next_id, session, seq)
        self._next_id += 1
        record.stamp(ReqState.ARRIVED, arrival_tick)
        record.stamp(ReqState.ADMITTED, admission_tick)
        self._records.append(record)
        self._publish(record, ReqState.ARRIVED, arrival_tick)
        self._publish(record, ReqState.ADMITTED, admission_tick)
        return record

    def touch(self, record: RequestRecord, tick: int) -> None:
        """Stamp FIRST_POP once (later calls for the same record no-op)."""
        if record.first_pop is not None or record.completed:
            return
        record.stamp(ReqState.FIRST_POP, tick)
        self._publish(record, ReqState.FIRST_POP, tick)

    def complete(self, record: RequestRecord, tick: int) -> None:
        """Stamp COMPLETED and fold the sojourn into the reservoir."""
        if record.completed:
            return
        if record.first_pop is None:
            # Single-hop flows: first consumption is the completion.
            record.stamp(ReqState.FIRST_POP, tick)
            self._publish(record, ReqState.FIRST_POP, tick)
        record.stamp(ReqState.COMPLETED, tick)
        self.completed += 1
        sojourn = record.sojourn
        if sojourn is not None:
            self.sojourn_stats.add(sojourn)
        self._publish(record, ReqState.COMPLETED, tick)

    def _publish(self, record: RequestRecord, state: ReqState, tick: int) -> None:
        hooks = self.hooks
        if hooks is None:
            return
        from repro.sim.hooks import RequestHook

        if not hooks.wants(RequestHook):
            return
        hooks.publish(
            RequestHook(
                tick=tick,
                rid=record.rid,
                session=record.session,
                seq=record.seq,
                state=state.value,
                sojourn=record.sojourn if state is ReqState.COMPLETED else None,
            )
        )

    # ----------------------------------------------------------------- queries
    def records(self) -> List[RequestRecord]:
        """Every record, creation order (deterministic)."""
        return list(self._records)

    @property
    def opened(self) -> int:
        return self._next_id

    def in_flight(self) -> List[RequestRecord]:
        return [r for r in self._records if not r.completed]

    def percentile(self, q: float) -> float:
        """Sojourn percentile over completed requests (0.0 when empty)."""
        stats = self.sojourn_stats
        return stats.percentile(q) if stats.n else 0.0
