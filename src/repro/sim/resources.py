"""Shared-resource primitives built on the event kernel.

Three primitives cover every contention point in the modelled system:

* :class:`Resource` — counted semaphore with FIFO waiters (e.g. SRD buffer
  entries, producer credits).
* :class:`Store` — FIFO buffer of items with blocking get/put (e.g. logical
  queues inside the routing device).
* :class:`FifoServer` — a single server that items occupy for a service time
  (the coherence-network bus); tracks busy cycles for utilization metrics.

All three carry ``__slots__`` (a system builds hundreds of them) and
precompute their grant-event names once in ``__init__`` — ``acquire``/
``put``/``get`` run per message hop, and the f-string per call showed up
in the sim-leg profile (docs/PERFORMANCE.md §5).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class Resource:
    """A counted resource with FIFO-queued acquire requests."""

    __slots__ = ("env", "name", "capacity", "_in_use", "_waiters",
                 "_acquire_name")

    def __init__(self, env: "Environment", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._acquire_name = f"acquire:{name}"

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Return an event that fires when one unit has been granted."""
        ev = Event(self.env, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release() without acquire()")
        if self._waiters:
            # Hand the unit straight to the next waiter (count unchanged).
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """FIFO item buffer with blocking ``get``/``put`` and optional capacity."""

    __slots__ = ("env", "name", "capacity", "_items", "_getters", "_putters",
                 "_put_name", "_get_name")

    def __init__(
        self,
        env: "Environment",
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, pending item) pairs
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit *item*; blocks (event stays pending) while full."""
        ev = Event(self.env, name=self._put_name)
        if self._getters:
            # Hand directly to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; True on success."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Return an event yielding the oldest item."""
        ev = Event(self.env, name=self._get_name)
        if self._items:
            item = self._items.popleft()
            self._admit_blocked_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; returns the item or None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_blocked_putter()
        return item

    def _admit_blocked_putter(self) -> None:
        if self._putters:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()


class FifoServer:
    """A single FIFO server with a fixed per-item service time.

    Models the shared coherence-network bus: each packet occupies the server
    for ``service_time`` cycles (its *occupancy*); total busy cycles divided
    by elapsed time is the bus utilization reported in Figure 10b.
    """

    __slots__ = ("env", "name", "service_time", "_free_at", "busy_cycles",
                 "packets_served")

    def __init__(self, env: "Environment", service_time: int, name: str = "bus") -> None:
        if service_time < 0:
            raise SimulationError(f"{name}: negative service time {service_time}")
        self.env = env
        self.name = name
        self.service_time = int(service_time)
        self._free_at: int = env.now
        self.busy_cycles: int = 0
        self.packets_served: int = 0

    def serve(self, extra_delay: int = 0) -> Event:
        """Enqueue one packet; the event fires when service (plus any
        *extra_delay*, e.g. wire propagation after serialization) completes."""
        start = max(self.env.now, self._free_at)
        finish = start + self.service_time
        self._free_at = finish
        self.busy_cycles += self.service_time
        self.packets_served += 1
        return self.env.timeout(finish - self.env.now + int(extra_delay))

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Fraction of cycles the server was busy over *elapsed* (default: now)."""
        window = self.env.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / window)
