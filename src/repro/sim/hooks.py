"""The instrumentation hook bus.

Simulation components publish *typed events* — transaction state changes,
the five Figure-7 trace moments, specBuf hit/miss outcomes, network
occupancy — onto a :class:`HookBus`; observers subscribe per event type
instead of being hard-wired into the hot path.  The
:class:`~repro.sim.trace.TraceRecorder` and the per-stage latency
histograms of :mod:`repro.eval.metrics` are both plain subscribers.

Design constraints:

* **Zero-cost when silent** — publishers guard with :meth:`HookBus.wants`
  so no event object is even constructed unless somebody listens.
* **Deterministic delivery** — subscribers fire synchronously, in
  subscription order, walking the event type's MRO (subscribe to
  :class:`HookEvent` to observe everything).
* **Isolation** — an exception in one subscriber is captured onto
  :attr:`HookBus.errors` and never prevents delivery to the others.
* **No timing impact** — publishing schedules no simulation events, so
  attaching instrumentation never changes a run's tick sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.sim.trace import EventKind
from repro.sim.transaction import TransactionRecord, TxnState


# --------------------------------------------------------------------- events
@dataclass(frozen=True, slots=True)
class HookEvent:
    """Base class for every bus event; subscribe to it to observe all."""

    tick: int


@dataclass(frozen=True, slots=True)
class TraceHook(HookEvent):
    """One of the five Figure-7 trace moments (see :class:`EventKind`).

    ``tick`` may lie in the past: a request arrival is only attributable to
    a transaction once its data shows up, and is then published with its
    original timestamp (the trace's ``record_at`` semantics).
    """

    kind: EventKind = EventKind.DATA_ARRIVE
    transaction_id: int = 0
    sqi: int = 0
    detail: str = ""


@dataclass(frozen=True, slots=True)
class TransactionHook(HookEvent):
    """A transaction entered a new lifecycle state."""

    record: Optional[TransactionRecord] = None
    state: TxnState = TxnState.CREATED
    sqi: int = 0
    detail: str = ""


@dataclass(frozen=True, slots=True)
class SpecBufHook(HookEvent):
    """A speculative push response reached the specBuf (hit or miss)."""

    sqi: int = 0
    entry_index: int = 0
    hit: bool = False


@dataclass(frozen=True, slots=True)
class SpecDecisionHook(HookEvent):
    """A delay algorithm decided when (or whether) to push speculatively.

    Published by the speculation policy at selection and at sticky-slot
    retry time, before the push travels the network — the moment the
    per-algorithm delay decision is made.  ``delay`` is ``send_tick - now``
    (0 = push immediately); ``retry`` distinguishes a first-chance
    selection from a post-miss retry of the same ring slot.  A refused
    retry (``NeverPush``/backoff gave up) is published with ``delay=-1``.
    """

    sqi: int = 0
    entry_index: int = 0
    algorithm: str = ""
    delay: int = 0
    retry: bool = False


@dataclass(frozen=True, slots=True)
class BusHook(HookEvent):
    """A packet was accepted onto the coherence network."""

    kind: str = ""            # PacketKind.value
    busy_cycles: int = 0      # cumulative network busy cycles so far


@dataclass(frozen=True, slots=True)
class LinkHook(HookEvent):
    """A packet traversed one directed NoC link (:mod:`repro.net`).

    Only published by hop-routed topologies (mesh/ring/crossbar); the
    default ``single-bus`` fabric has no links, so golden traces and
    metrics of bus-model runs never see this event.
    """

    link: str = ""            # link name, e.g. "mesh.e[1,2]"
    kind: str = ""            # PacketKind.value of the packet on the link
    src: int = 0              # route source node
    dst: int = 0              # route destination node
    busy_cycles: int = 0      # cumulative busy cycles of this link so far
    wait_cycles: int = 0      # cumulative backpressure cycles at this link


@dataclass(frozen=True, slots=True)
class PushHook(HookEvent):
    """The library issued ``vl_push`` for one message (semantic send)."""

    sqi: int = 0
    producer_id: int = 0
    seq: int = 0              # per-producer FIFO sequence number
    transaction_id: int = 0


@dataclass(frozen=True, slots=True)
class DeliveryHook(HookEvent):
    """A consumer popped one message (the semantic delivery moment)."""

    sqi: int = 0
    endpoint_id: int = 0
    producer_id: int = 0
    seq: int = 0
    transaction_id: int = 0


@dataclass(frozen=True, slots=True)
class RequestHook(HookEvent):
    """An open-system request changed lifecycle state.

    Published by :class:`~repro.sim.request.RequestLog` at every stamp of
    an *active* log — closed-batch runs never activate one, so golden
    traces and metric exports of the default workloads are unchanged.
    ``state`` is a :class:`~repro.sim.request.ReqState` value string
    (``arrived``/``admitted``/``first-pop``/``completed``); ``sojourn``
    is only set on the completion event.  ``tick`` may lie in the past
    for the arrival stamp: a backlogged session admits a request after
    its scheduled arrival and publishes the arrival with its planned
    tick (the same ``record_at`` semantics as :class:`TraceHook`).
    """

    rid: int = 0
    session: str = ""
    seq: int = 0
    state: str = ""
    sojourn: Optional[int] = None


@dataclass(frozen=True, slots=True)
class LineHook(HookEvent):
    """A consumer cacheline changed occupancy state.

    ``transition`` is ``"fill"`` (EMPTY→VALID), ``"vacate"`` (VALID→EMPTY),
    ``"failed-fill"`` (a stash bounced off a VALID line — the legal miss
    response, not a state change) or ``"rollback"`` (a burst misprediction
    invalidated an unconfirmed fill: VALID→EMPTY without a delivery).
    """

    addr: int = 0
    endpoint_id: int = 0
    index: int = 0
    transition: str = ""
    transaction_id: Optional[int] = None


# ----------------------------------------------------------------------- bus
@dataclass(frozen=True, slots=True)
class Subscription:
    """Handle returned by :meth:`HookBus.subscribe`; pass to unsubscribe."""

    event_type: Type[HookEvent]
    token: int
    callback: Callable[[Any], None] = field(compare=False)


class HookBus:
    """Synchronous publish/subscribe fan-out for instrumentation events."""

    __slots__ = ("_subs", "_next_token", "_resolved", "errors")

    def __init__(self) -> None:
        self._subs: Dict[Type[HookEvent], List[Subscription]] = {}
        self._next_token = 0
        #: Memoized per-concrete-type delivery lists: event type -> the
        #: flattened (MRO-ordered, then subscription-ordered) subscriber
        #: tuple.  Invalidated wholesale on any (un)subscribe, so the hot
        #: publish/wants path never re-walks the MRO.
        self._resolved: Dict[Type[HookEvent], Tuple[Subscription, ...]] = {}
        #: (subscription, exception) pairs captured during publishes; a
        #: failing subscriber never blocks delivery to the others.
        self.errors: List[Tuple[Subscription, Exception]] = []

    # ------------------------------------------------------------ subscribing
    def subscribe(
        self, event_type: Type[HookEvent], callback: Callable[[Any], None]
    ) -> Subscription:
        """Register *callback* for events of *event_type* (or subclasses
        published with that type in their MRO).  Delivery order is
        subscription order."""
        sub = Subscription(event_type, self._next_token, callback)
        self._next_token += 1
        self._subs.setdefault(event_type, []).append(sub)
        self._resolved.clear()
        return sub

    def unsubscribe(self, subscription: Subscription) -> bool:
        """Remove a subscription; returns False when already gone."""
        subs = self._subs.get(subscription.event_type)
        if not subs or subscription not in subs:
            return False
        subs.remove(subscription)
        if not subs:
            del self._subs[subscription.event_type]
        self._resolved.clear()
        return True

    # ------------------------------------------------------------- publishing
    def _resolve(self, event_type: Type[HookEvent]) -> Tuple[Subscription, ...]:
        """The delivery list for *event_type*: its MRO walked once, then
        memoized until the subscription set changes."""
        resolved = self._resolved.get(event_type)
        if resolved is None:
            subs = self._subs
            resolved = tuple(
                sub for t in event_type.__mro__ for sub in subs.get(t, ())
            )
            self._resolved[event_type] = resolved
        return resolved

    def wants(self, event_type: Type[HookEvent]) -> bool:
        """True when at least one subscriber would receive *event_type*.

        Publishers use this to skip constructing event objects on silent
        buses, keeping the un-instrumented hot path free (the empty-dict
        check below allocates nothing and touches no cache).
        """
        if not self._subs:
            return False
        return bool(self._resolve(event_type))

    def publish(self, event: HookEvent) -> None:
        """Deliver *event* to every subscriber of its type and supertypes.

        MRO order first (exact type before catch-alls), subscription order
        within a type.  Exceptions are recorded, not raised.  The memoized
        delivery tuple doubles as the snapshot that keeps delivery stable
        when a callback (un)subscribes mid-publish.
        """
        if not self._subs:
            return
        for sub in self._resolve(type(event)):
            try:
                sub.callback(event)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self.errors.append((sub, exc))

    # ---------------------------------------------------------------- queries
    @property
    def subscriber_count(self) -> int:
        return sum(len(subs) for subs in self._subs.values())

    def __bool__(self) -> bool:
        return bool(self._subs)
