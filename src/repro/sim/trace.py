"""Message-queue transaction tracing (Section 4.2 / Figure 7).

The paper traces five event kinds per message-queue transaction and plots
them as marker rows over time:

* ``DATA_ARRIVE``    — producer data reaches the routing device;
* ``REQUEST_ARRIVE`` — consumer request reaches the routing device;
* ``LINE_VACATE``    — the consumer cacheline becomes ready for new data;
* ``LINE_FILL``      — producer data fills the consumer cacheline;
* ``FIRST_USE``      — the consumer first reads the delivered data.

:class:`TraceRecorder` collects timestamped events keyed by a transaction id
(one id per delivered message) and reconstructs :class:`Transaction` records,
including the paper's *potential speculative saving* analysis: for an
on-demand push gated by the request arrival, the saving is
``fill_time - max(data_arrive, line_vacate)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class EventKind(Enum):
    """The five trace rows of Figure 7 (bottom to top)."""

    DATA_ARRIVE = "data arrive"
    REQUEST_ARRIVE = "request arrive"
    LINE_VACATE = "$line vacate"
    LINE_FILL = "fill $line"
    FIRST_USE = "1st data use"


@dataclass(slots=True)
class TraceEvent:
    """One timestamped occurrence within a transaction."""

    time: int
    kind: EventKind
    transaction_id: int
    sqi: int
    detail: str = ""


@dataclass(slots=True)
class Transaction:
    """A reconstructed message delivery (one line of markers in Figure 7)."""

    transaction_id: int
    sqi: int
    data_arrive: Optional[int] = None
    request_arrive: Optional[int] = None
    line_vacate: Optional[int] = None
    line_fill: Optional[int] = None
    first_use: Optional[int] = None

    @property
    def speculative(self) -> bool:
        """True when delivery happened without a consumer request (red dashed)."""
        return self.request_arrive is None and self.line_fill is not None

    @property
    def complete(self) -> bool:
        return self.line_fill is not None and self.first_use is not None

    @property
    def request_bound(self) -> bool:
        """True when the request was the latest of the three fill prerequisites.

        These are the transactions the paper draws in dark black: speculation
        could have delivered the data earlier.
        """
        if self.speculative or self.line_fill is None or self.request_arrive is None:
            return False
        others = [t for t in (self.data_arrive, self.line_vacate) if t is not None]
        if not others:
            return False
        return self.request_arrive > max(others)

    @property
    def potential_saving(self) -> int:
        """Cycles a perfectly-timed speculative push could have saved."""
        if not self.request_bound or self.line_fill is None:
            return 0
        ready = max(t for t in (self.data_arrive, self.line_vacate) if t is not None)
        return max(0, self.line_fill - ready)

    @property
    def load_to_use(self) -> Optional[int]:
        """Cycles between cacheline fill and the consumer's first use."""
        if self.line_fill is None or self.first_use is None:
            return None
        return self.first_use - self.line_fill


class TraceRecorder:
    """Collects trace events; disabled recorders are near-zero-cost."""

    __slots__ = ("env", "enabled", "events", "_next_id", "_attached")

    def __init__(self, env: "Environment", enabled: bool = True) -> None:
        self.env = env
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._next_id = 0
        self._attached: List[object] = []

    def attach(self, bus) -> None:
        """Subscribe this recorder to a :class:`~repro.sim.hooks.HookBus`.

        The recorder observes :class:`~repro.sim.hooks.TraceHook` events
        instead of being called directly from device hot paths.  Disabled
        recorders do not subscribe at all, so publishers skip constructing
        events entirely (``bus.wants(TraceHook)`` stays False).  Attaching
        the same bus twice is a no-op — a system's devices share one bus
        and one recorder.
        """
        if not self.enabled or any(b is bus for b in self._attached):
            return
        from repro.sim.hooks import TraceHook

        self._attached.append(bus)
        bus.subscribe(TraceHook, self._on_trace_hook)

    def _on_trace_hook(self, event) -> None:
        self.events.append(
            TraceEvent(
                event.tick, event.kind, event.transaction_id, event.sqi,
                event.detail,
            )
        )

    def new_transaction(self) -> int:
        """Allocate a fresh transaction id (one per delivered message)."""
        tid = self._next_id
        self._next_id += 1
        return tid

    def record(self, kind: EventKind, transaction_id: int, sqi: int, detail: str = "") -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(self.env.now, kind, transaction_id, sqi, detail))

    def record_at(
        self,
        kind: EventKind,
        time: int,
        transaction_id: int,
        sqi: int,
        detail: str = "",
    ) -> None:
        """Record an event with an explicit timestamp.

        Some trace rows are only attributable to a transaction after the
        fact: a consumer request's arrival belongs to the transaction of the
        data it eventually matches, and a line-vacate event belongs to the
        *next* message filled into that line.  Both are recorded at match /
        fill time with their original timestamps.
        """
        if not self.enabled:
            return
        self.events.append(TraceEvent(int(time), kind, transaction_id, sqi, detail))

    # -- reconstruction ------------------------------------------------------
    def transactions(self) -> List[Transaction]:
        """Group events by transaction id into :class:`Transaction` records."""
        by_id: Dict[int, Transaction] = {}
        for ev in self.events:
            txn = by_id.setdefault(ev.transaction_id, Transaction(ev.transaction_id, ev.sqi))
            if ev.kind is EventKind.DATA_ARRIVE:
                txn.data_arrive = ev.time
            elif ev.kind is EventKind.REQUEST_ARRIVE:
                # Keep the *earliest* matched request, as the paper's plot does.
                if txn.request_arrive is None:
                    txn.request_arrive = ev.time
            elif ev.kind is EventKind.LINE_VACATE:
                txn.line_vacate = ev.time
            elif ev.kind is EventKind.LINE_FILL:
                txn.line_fill = ev.time
            elif ev.kind is EventKind.FIRST_USE:
                txn.first_use = ev.time
        return [by_id[k] for k in sorted(by_id)]

    def window(self, start: int, end: int) -> List[Transaction]:
        """Transactions whose fill falls inside ``[start, end)`` (Fig 7 zoom)."""
        return [
            t
            for t in self.transactions()
            if t.line_fill is not None and start <= t.line_fill < end
        ]

    # -- export ----------------------------------------------------------------
    def to_csv(self) -> str:
        """Export reconstructed transactions as CSV (one row per message).

        Columns match the Figure 7 event rows plus the derived analysis
        fields, ready for external plotting.
        """
        lines = [
            "transaction_id,sqi,data_arrive,request_arrive,line_vacate,"
            "line_fill,first_use,speculative,request_bound,potential_saving"
        ]
        for t in self.transactions():
            fields = [
                t.transaction_id,
                t.sqi,
                t.data_arrive,
                t.request_arrive,
                t.line_vacate,
                t.line_fill,
                t.first_use,
                int(t.speculative),
                int(t.request_bound),
                t.potential_saving,
            ]
            lines.append(",".join("" if f is None else str(f) for f in fields))
        return "\n".join(lines)

    def to_events_json(self) -> str:
        """Export the raw event stream as JSON (for timeline viewers)."""
        import json

        return json.dumps(
            [
                {
                    "time": ev.time,
                    "kind": ev.kind.value,
                    "transaction_id": ev.transaction_id,
                    "sqi": ev.sqi,
                    "detail": ev.detail,
                }
                for ev in self.events
            ]
        )
