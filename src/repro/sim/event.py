"""Core event primitives of the discrete-event simulation kernel.

The kernel follows the classic *event/process* design (as popularised by
SimPy, which is not available offline here): an :class:`Event` is a one-shot
future that callbacks subscribe to; processes are generators that yield
events and are resumed by the kernel when those events fire.

Events move through three states::

    PENDING  --succeed()/fail()-->  TRIGGERED  --kernel step-->  PROCESSED

``TRIGGERED`` means the event sits in the kernel's queue with a value or an
exception attached; ``PROCESSED`` means its callbacks have run.

Events never talk to the queue structure directly — they go through
``Environment.schedule``/``schedule_callback`` — so they are agnostic to
the pending-queue strategy (:mod:`repro.sim.sched`): the same Event
semantics hold under the heap, ladder, calendar, and batch schedulers.
Every class here carries ``__slots__``; events are allocated per message
hop, so the per-instance dict would be the kernel's largest allocation.

Allocation notes (docs/PERFORMANCE.md §5): most events have exactly zero
or one subscriber, so the ``callbacks`` slot is *polymorphic* instead of
eagerly holding a list — ``None`` (no subscriber yet), a bare callable
(exactly one), a list (two or more), or the :data:`PROCESSED` sentinel
once the kernel has dispatched the event.  A ping-pong hop therefore
allocates one ``Event`` and nothing else; the per-event callbacks list
only exists for genuine fan-out (``AllOf``/``AnyOf`` children with extra
watchers).  Use :meth:`Event.subscribe` to add callbacks — never touch
the ``callbacks`` slot directly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` payload.
_PENDING = object()

#: Sentinel stored in the ``callbacks`` slot once the kernel has run the
#: event's callbacks.  Distinct from ``None`` (= "no subscriber yet") so
#: the no-subscriber state needs no list allocation.
PROCESSED = object()


class Event:
    """A one-shot occurrence at a simulated time instant.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    name:
        Optional label used in ``repr`` and trace output.
    """

    __slots__ = ("env", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment", name: Optional[str] = None) -> None:
        self.env = env
        self.name = name
        #: Subscriber state: ``None`` | one callable | list | PROCESSED.
        #: Mutate only through :meth:`subscribe` (the kernel's dispatch is
        #: the one other writer, when it retires the event).
        self.callbacks: Any = None
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when it failed)."""
        if self._value is _PENDING:
            raise SchedulingError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        If nothing waits on a failed event the kernel re-raises it at the top
        level (unless :meth:`defused` was called), so failures cannot pass
        silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Add *callback*; runs immediately via the queue if already processed."""
        cbs = self.callbacks
        if cbs is None:
            # First subscriber: store the bare callable — the overwhelmingly
            # common case (a process resuming, a single watcher), so no
            # list is allocated at all.
            self.callbacks = callback
        elif cbs is PROCESSED:
            # Already processed: schedule an immediate delivery so that the
            # callback still runs from the kernel loop, preserving ordering.
            # This lands URGENT at the current cycle — the case that forces
            # batch-draining schedulers to preempt an in-flight bucket.
            self.env.schedule_callback(callback, self)
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self.callbacks = [cbs, callback]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{label} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` cycles after its creation."""

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: int,
        value: Any = None,
        name: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        # The name stays lazy (rendered by __repr__ on demand): a timeout
        # is the kernel's most-allocated event, and the f-string per
        # construction was a measurable share of its cost.
        super().__init__(env, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"Timeout({self.delay})"
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{label} {state} at t={self.env.now}>"


class AnyOf(Event):
    """Composite event that fires when the *first* of its children fires.

    The value is a dict mapping the already-fired child events to their
    values (there may be more than one if several children fire in the same
    kernel step).
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, name="AnyOf")
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed({ev: ev.value for ev in self.events if ev.processed and ev.ok})


class AllOf(Event):
    """Composite event that fires once *all* of its children have fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, name="AllOf")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for ev in self.events:
            ev.subscribe(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self.events})
