"""Deterministic random-number streams for workload generation.

Every source of randomness in a run derives from a single master seed so
that (a) runs are exactly reproducible and (b) independent components (each
thread's compute-time jitter, packet payloads, ...) draw from *independent*
streams — adding a consumer must not perturb a producer's sequence.

Streams are spawned by name using SeedSequence-style key hashing.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngPool:
    """A pool of named, independent ``numpy.random.Generator`` streams."""

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0xC0FFEE) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for *name*."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive_seed(name))
        return self._streams[name]

    def jitter(self, name: str, base: int, fraction: float) -> int:
        """Draw ``base`` perturbed by up to ±``fraction`` uniformly.

        Used for compute-time jitter in workloads; returns at least 1 cycle.
        """
        if fraction < 0:
            raise ValueError(f"negative jitter fraction {fraction}")
        if fraction == 0:
            return max(1, int(base))
        rng = self.stream(name)
        lo = base * (1.0 - fraction)
        hi = base * (1.0 + fraction)
        return max(1, int(round(rng.uniform(lo, hi))))


def bithash(value: int, tsc: int, bits: int = 2) -> int:
    """Tiny hardware-style hash used by the tuned algorithm's ``halved`` path.

    Listing 1 computes ``halved = delay >> bithash(delay, tsc)``.  The paper
    leaves ``bithash`` unspecified beyond being a cheap obfuscating hash
    ("augmented by random chance", Section 3.6); we fold the operand bits
    with xor and return a shift amount in ``[1, 2**bits)`` so the delay is
    always strictly reduced.
    """
    x = (value ^ (tsc * 0x9E3779B1)) & 0xFFFFFFFF
    x ^= x >> 16
    x ^= x >> 8
    x ^= x >> 4
    span = (1 << bits) - 1
    return 1 + (x % span) if span > 1 else 1
