"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield`` hands the kernel
an :class:`~repro.sim.event.Event`; the process sleeps until that event fires
and is resumed with the event's value (or the event's exception thrown into
the generator, letting process code use ordinary ``try``/``except``).

A process is itself an event that fires when the generator returns, so
processes can wait on each other (fork/join) by yielding the child process.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class Process(Event):
    """A running simulation process (also usable as a join event)."""

    __slots__ = ("generator", "_target")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: The event this process currently waits on (None when runnable).
        self._target: Optional[Event] = None
        # Kick the process off via an immediately-triggered init event so its
        # first slice runs from the kernel loop, not from the constructor.
        init = Event(env, name=f"init:{self.name}")
        init.callbacks = self._resume  # sole subscriber — no list needed
        init._ok = True
        init._value = None
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def _resume(self, event: Event) -> None:
        """Advance the generator by one slice (kernel callback).

        Hot path: runs once per yield across every process in the
        simulation, so ``self.env`` is hoisted to a local (slotted
        attribute loads are cheap but not free, and this method takes
        four of them).
        """
        env = self.env
        self._target = None
        env._active_process = self
        try:
            if event.ok:
                result = self.generator.send(event.value)
            else:
                event.defuse()
                result = self.generator.throw(event.value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(result, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {result!r}; processes must "
                    "yield Event instances (timeout(), another process, ...)"
                )
            )
            return
        if result.env is not self.env:
            self.fail(SimulationError("yielded an event from a different Environment"))
            return
        self._target = result
        result.subscribe(self._resume)
