"""The discrete-event simulation kernel (:class:`Environment`).

A classic calendar-queue kernel: events are stored in a binary heap keyed by
``(time, priority, sequence)``; :meth:`Environment.step` pops the earliest
event, advances the clock, and runs its callbacks.  The ``sequence`` tiebreak
makes runs fully deterministic: two events scheduled for the same cycle fire
in scheduling order.

Time is an integer cycle count.  All device latencies in this package are
integral, which keeps the heap exact (no float comparisons) and runs
reproducible bit-for-bit across platforms.

Hot-path notes (see docs/PERFORMANCE.md): the dispatch loops in
:meth:`Environment.run` and :meth:`Environment.run_until_complete` inline
the body of :meth:`Environment.step` with the queue and ``heappop`` bound
to locals — a simulation is millions of ``step`` calls, so the attribute
lookups and the extra frame per event are measurable.  Deferred callbacks
(:meth:`Environment.schedule_callback`) ride the heap as plain 5-tuples
instead of allocating a shim :class:`Event` per call; the ``sequence``
tiebreak guarantees tuple comparison never reaches the payload slot.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Priority levels: URGENT callbacks run before NORMAL ones in the same cycle.
URGENT = 0
NORMAL = 1


class Environment:
    """Holds the simulation clock and the pending-event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=1_000_000)
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now: int = int(initial_time)
        #: Heap entries are ``(time, priority, seq, event)`` for ordinary
        #: events or ``(time, priority, seq, callback, arg)`` for deferred
        #: callbacks (see :meth:`schedule_callback`).  ``seq`` is unique, so
        #: heap comparisons never reach the payload slots.
        self._queue: List[Tuple] = []
        self._seq: int = 0
        self._processed: int = 0
        self._active_process: Optional[Process] = None
        # Observe-only watchdog hook: called with the current time by the
        # first step() at or past the deadline.  It schedules nothing and
        # never mutates kernel state, so installing one cannot perturb the
        # event sequence — it may only raise to abort a stalled run.
        self._watchdog: Optional[Callable[[int], None]] = None
        self._watchdog_after: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total heap entries dispatched so far (the wall-clock benchmark's
        events/sec denominator)."""
        return self._processed

    @property
    def events_scheduled(self) -> int:
        """Total heap entries ever enqueued (scheduled ≥ processed; the
        difference is the current queue backlog plus cancelled entries).

        Kernel observability is boundary-only by design: the registry
        reads these counters after the run (obs.collector.finalize_system)
        instead of adding even a None-check to the per-event dispatch loop,
        so metrics-off and metrics-on runs execute identical hot paths.
        """
        return self._seq

    @property
    def queue_length(self) -> int:
        """Pending heap entries right now."""
        return len(self._queue)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing *delay* cycles from now."""
        return Timeout(self, int(delay), value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Wrap *generator* as a :class:`Process` and start it now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Enqueue a triggered *event* for processing ``delay`` cycles ahead."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))
        self._seq += 1

    def schedule_callback(self, callback: Callable[[Event], None], event: Event) -> None:
        """Run *callback(event)* for an already-processed event via the queue.

        The deferred call is stored directly in the heap entry — a 5-tuple
        ``(time, priority, seq, callback, event)`` — so no shim
        :class:`Event` is allocated per call.
        """
        heapq.heappush(
            self._queue, (self._now, URGENT, self._seq, callback, event)
        )
        self._seq += 1

    # -- watchdog ------------------------------------------------------------
    def set_watchdog(self, callback: Callable[[int], None], deadline: int) -> None:
        """Install the observe-only stall watchdog.

        *callback(now)* runs inside the first :meth:`step` whose event time
        is at or past *deadline*.  The callback must either raise (aborting
        the run, e.g. with :class:`~repro.errors.SimDeadlockError`) or call
        :meth:`defer_watchdog` to arm the next deadline; returning without
        deferring re-fires it every step.
        """
        self._watchdog = callback
        self._watchdog_after = int(deadline)

    def defer_watchdog(self, deadline: int) -> None:
        """Move the watchdog deadline forward (progress was observed)."""
        self._watchdog_after = int(deadline)

    def clear_watchdog(self) -> None:
        self._watchdog = None

    @property
    def has_watchdog(self) -> bool:
        return self._watchdog is not None

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def _dispatch(self, entry: Tuple) -> None:
        """Advance the clock to *entry* and run its payload (one event)."""
        when = entry[0]
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise SchedulingError("event queue corrupted: time went backwards")
        self._now = when
        if self._watchdog is not None and when >= self._watchdog_after:
            self._watchdog(when)
        self._processed += 1
        if len(entry) == 5:
            # Deferred callback (schedule_callback): no Event was allocated.
            entry[3](entry[4])
            return
        event = entry[3]
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event.ok and not event.defused:
            # A failed event nobody handled: surface the error loudly.
            raise event.value

    def step(self) -> None:
        """Process the single earliest event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._dispatch(heapq.heappop(self._queue))

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulated time.  When *until* is given the clock is
        advanced to exactly *until* even if the last event fired earlier,
        mirroring a wall-clock measurement window.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"until={until} is in the past (now={self._now})")
        # Hot loop: queue/heappop/dispatch bound to locals (a run is millions
        # of iterations; schedule() mutates the same list object in place).
        queue = self._queue
        pop = heapq.heappop
        dispatch = self._dispatch
        while queue:
            if until is not None and queue[0][0] > until:
                break
            dispatch(pop(queue))
        if until is not None:
            self._now = max(self._now, int(until))
        return self._now

    def run_until_complete(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until *process* terminates; returns its value.

        Raises :class:`SimulationError` if the queue drains (deadlock) or the
        optional *limit* is reached before the process completes.
        """
        queue = self._queue
        pop = heapq.heappop
        dispatch = self._dispatch
        while not process.triggered:
            if not queue:
                raise SimulationError(
                    f"deadlock: event queue drained before {process!r} finished"
                )
            if limit is not None and queue[0][0] > limit:
                raise SimulationError(
                    f"simulation limit {limit} reached before {process!r} finished"
                )
            dispatch(pop(queue))
        if not process.ok:
            raise process.value
        return process.value
