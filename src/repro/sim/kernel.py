"""The discrete-event simulation kernel (:class:`Environment`).

A classic calendar-queue kernel: events are stored in a binary heap keyed by
``(time, priority, sequence)``; :meth:`Environment.step` pops the earliest
event, advances the clock, and runs its callbacks.  The ``sequence`` tiebreak
makes runs fully deterministic: two events scheduled for the same cycle fire
in scheduling order.

Time is an integer cycle count.  All device latencies in this package are
integral, which keeps the heap exact (no float comparisons) and runs
reproducible bit-for-bit across platforms.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: Priority levels: URGENT callbacks run before NORMAL ones in the same cycle.
URGENT = 0
NORMAL = 1


class Environment:
    """Holds the simulation clock and the pending-event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=1_000_000)
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now: int = int(initial_time)
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        # Observe-only watchdog hook: called with the current time by the
        # first step() at or past the deadline.  It schedules nothing and
        # never mutates kernel state, so installing one cannot perturb the
        # event sequence — it may only raise to abort a stalled run.
        self._watchdog: Optional[Callable[[int], None]] = None
        self._watchdog_after: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing *delay* cycles from now."""
        return Timeout(self, int(delay), value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Wrap *generator* as a :class:`Process` and start it now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Enqueue a triggered *event* for processing ``delay`` cycles ahead."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))
        self._seq += 1

    def schedule_callback(self, callback: Callable[[Event], None], event: Event) -> None:
        """Run *callback(event)* for an already-processed event via the queue."""
        shim = Event(self, name="callback-shim")
        shim.callbacks.append(lambda _ev: callback(event))
        shim._ok = True
        shim._value = None
        self.schedule(shim, delay=0, priority=URGENT)

    # -- watchdog ------------------------------------------------------------
    def set_watchdog(self, callback: Callable[[int], None], deadline: int) -> None:
        """Install the observe-only stall watchdog.

        *callback(now)* runs inside the first :meth:`step` whose event time
        is at or past *deadline*.  The callback must either raise (aborting
        the run, e.g. with :class:`~repro.errors.SimDeadlockError`) or call
        :meth:`defer_watchdog` to arm the next deadline; returning without
        deferring re-fires it every step.
        """
        self._watchdog = callback
        self._watchdog_after = int(deadline)

    def defer_watchdog(self, deadline: int) -> None:
        """Move the watchdog deadline forward (progress was observed)."""
        self._watchdog_after = int(deadline)

    def clear_watchdog(self) -> None:
        self._watchdog = None

    @property
    def has_watchdog(self) -> bool:
        return self._watchdog is not None

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process the single earliest event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise SchedulingError("event queue corrupted: time went backwards")
        self._now = when
        if self._watchdog is not None and when >= self._watchdog_after:
            self._watchdog(when)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event.ok and not event.defused:
            # A failed event nobody handled: surface the error loudly.
            raise event.value

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulated time.  When *until* is given the clock is
        advanced to exactly *until* even if the last event fired earlier,
        mirroring a wall-clock measurement window.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, int(until))
        return self._now

    def run_until_complete(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until *process* terminates; returns its value.

        Raises :class:`SimulationError` if the queue drains (deadlock) or the
        optional *limit* is reached before the process completes.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: event queue drained before {process!r} finished"
                )
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"simulation limit {limit} reached before {process!r} finished"
                )
            self.step()
        if not process.ok:
            raise process.value
        return process.value
