"""The discrete-event simulation kernel (:class:`Environment`).

Events are stored in a pluggable *scheduler* (see :mod:`repro.sim.sched`)
keyed by ``(time, priority, sequence)``; :meth:`Environment.step` pops the
earliest event, advances the clock, and runs its callbacks.  The
``sequence`` tiebreak makes runs fully deterministic: two events scheduled
for the same cycle fire in scheduling order.  The default ``heap``
scheduler is the classic binary heap; the ``calendar`` and ``batch``
schedulers trade it for O(1) per-cycle buckets that pay off on deep
pending sets — every scheduler realizes the exact same total order, which
``tests/test_kernel_equivalence.py`` enforces differentially.

Time is an integer cycle count.  All device latencies in this package are
integral, which keeps the queue keys exact (no float comparisons) and runs
reproducible bit-for-bit across platforms.

Hot-path notes (see docs/PERFORMANCE.md §5): the kernel inlines the queue
ends of its two fastest strategies rather than paying a Python method
call per event.  A scheduler exposing a raw ``heap`` list gets the
historical ``heappush``/``heappop`` loop; one exposing a sorted ``spine``
list (the default ``ladder``) gets ``bisect.insort``/lane-append pushes
and cursor-indexed dispatch bound straight into :meth:`Environment.run`
— both ends are C calls plus an index, so steady-state dispatch executes
no scheduler-side Python frames at all.  Bucket schedulers (``calendar``/``batch``) go
through the generic batch-draining protocol instead.  Deferred callbacks
(:meth:`Environment.schedule_callback`, :meth:`Environment.call_later`)
ride the queue as plain 5-tuples instead of allocating a shim
:class:`Event` per call; the ``sequence`` tiebreak guarantees tuple
comparison never reaches the payload slot, and CPython's internal tuple
freelist recycles the entries themselves (measured faster than a
Python-level slab — docs/PERFORMANCE.md §5 records the comparison).
Event dispatch reads the polymorphic ``callbacks`` slot directly: the
one-subscriber case calls the bare callable without ever materializing a
callbacks list (see :mod:`repro.sim.event`).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import AllOf, AnyOf, Event, PROCESSED, Timeout
from repro.sim.process import Process
from repro.sim.sched import (
    DEFAULT_SCHEDULER,
    LADDER_COMPACT,
    LADDER_SPINE_CAP,
    resolve_scheduler,
)

_heappush = heapq.heappush

#: Priority levels: URGENT callbacks run before NORMAL ones in the same cycle.
URGENT = 0
NORMAL = 1


class Environment:
    """Holds the simulation clock and the pending-event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=1_000_000)

    *scheduler* selects the pending-queue strategy: a registry name
    (``"ladder"`` — the default, ``"heap"``, ``"calendar"``, ``"batch"``
    — see :mod:`repro.sim.sched`) or, for tests, a zero-argument factory
    returning a scheduler instance.  Every strategy dispatches in
    identical ``(time, priority, seq)`` order; only wall-clock speed
    differs.
    """

    __slots__ = (
        "_now",
        "_sched",
        "_heap",
        "_spine",
        "_lanes",
        "_times",
        "_scheduler_name",
        "_seq",
        "_processed",
        "_active_process",
        "_watchdog",
        "_watchdog_after",
    )

    def __init__(
        self,
        initial_time: int = 0,
        scheduler: Union[str, Callable[[], Any]] = DEFAULT_SCHEDULER,
    ) -> None:
        self._now: int = int(initial_time)
        if isinstance(scheduler, str):
            self._scheduler_name = scheduler
            self._sched = resolve_scheduler(scheduler)()
        else:
            self._sched = scheduler()
            self._scheduler_name = getattr(
                self._sched, "registry_name", type(self._sched).__name__
            )
        #: Raw heap list when the strategy exposes one (HeapScheduler and
        #: subclasses); enables the inline fast path so ``heap``
        #: configurations execute the exact historical dispatch loop.
        #: Queue entries are ``(time, priority, seq, event)`` for ordinary
        #: events or ``(time, priority, seq, callback, arg)`` for deferred
        #: callbacks (see :meth:`schedule_callback`).  ``seq`` is unique,
        #: so tuple comparisons never reach the payload slots.
        self._heap: Optional[List[Tuple]] = getattr(self._sched, "heap", None)
        #: Raw sorted spine when the strategy exposes one (LadderScheduler
        #: and subclasses); enables the second inline fast path —
        #: ``insort`` pushes below the ladder boundary, direct lane
        #: appends past it, and cursor-indexed dispatch.  Exposing
        #: ``spine`` opts a scheduler into the whole inline contract
        #: (``boundary``/``cursor``/``lanes``/``times``/``spill``/
        #: ``refill``); the spine, lanes dict and times heap are mutated
        #: in place by both sides and never rebound.
        self._spine: Optional[List[Tuple]] = (
            None if self._heap is not None
            else getattr(self._sched, "spine", None)
        )
        if self._spine is not None:
            self._lanes: Optional[dict] = self._sched.lanes
            self._times: Optional[List[int]] = self._sched.times
        else:
            self._lanes = None
            self._times = None
        self._seq: int = 0
        self._processed: int = 0
        self._active_process: Optional[Process] = None
        # Observe-only watchdog hook: called with the current time by the
        # first dispatch at or past the deadline — the same firing point
        # whether the dispatch came from step(), run(), or a drained
        # batch.  It schedules nothing and never mutates kernel state, so
        # installing one cannot perturb the event sequence — it may only
        # raise to abort a stalled run.
        self._watchdog: Optional[Callable[[int], None]] = None
        self._watchdog_after: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def scheduler_name(self) -> str:
        """Registry name of the active pending-queue strategy."""
        return self._scheduler_name

    @property
    def events_processed(self) -> int:
        """Total queue entries dispatched so far (the wall-clock benchmark's
        events/sec denominator)."""
        return self._processed

    @property
    def events_scheduled(self) -> int:
        """Total queue entries ever enqueued (scheduled ≥ processed; the
        difference is the current queue backlog plus cancelled entries).

        Kernel observability is boundary-only by design: the registry
        reads these counters after the run (obs.collector.finalize_system)
        instead of adding even a None-check to the per-event dispatch loop,
        so metrics-off and metrics-on runs execute identical hot paths.
        """
        return self._seq

    @property
    def queue_length(self) -> int:
        """Pending queue entries right now."""
        return len(self._sched)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing *delay* cycles from now."""
        return Timeout(self, int(delay), value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Wrap *generator* as a :class:`Process` and start it now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    # The three scheduling methods repeat the push branch verbatim
    # instead of sharing a helper: a shared _push() costs one Python
    # frame per event on every non-heap path, a measured ~8% of the
    # deep-stress dispatch loop.  The branch order favours the shipped
    # default: the ladder's test comes first and the heap fast path pays
    # one extra pointer compare.  Ladder: entries below the boundary
    # insort straight into the spine's pending section; entries past it
    # append straight to the cached per-cycle lanes — at stress depths
    # nearly every push lands there, and the scheduler-frame round trip
    # was a measured ~10% of the dispatch loop.  The spill cap check is
    # amortized through the seq counter (one len() per 64 pushes; the
    # ≤63-entry overshoot is cut back by the next spill).  Everything
    # else gets the generic push method.

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Enqueue a triggered *event* for processing ``delay`` cycles ahead."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        t = self._now + int(delay)
        entry = (t, priority, seq, event)
        spine = self._spine
        if spine is not None:
            sched = self._sched
            if t < sched.boundary:
                cursor = sched.cursor
                insort(spine, entry, cursor)
                if not (seq & 63) and len(spine) - cursor > LADDER_SPINE_CAP:
                    sched.spill()
            else:
                lanes = self._lanes
                lane = lanes.get(t)
                if lane is None:
                    lanes[t] = [entry]
                    _heappush(self._times, t)
                else:
                    lane.append(entry)
        else:
            heap = self._heap
            if heap is not None:
                heapq.heappush(heap, entry)
            else:
                self._sched.push(entry)
        self._seq = seq + 1

    def schedule_callback(self, callback: Callable[[Event], None], event: Event) -> None:
        """Run *callback(event)* for an already-processed event via the queue.

        The deferred call is stored directly in the queue entry — a 5-tuple
        ``(time, priority, seq, callback, event)`` — so no shim
        :class:`Event` is allocated per call.  It is scheduled URGENT at
        the current cycle, so it runs before any NORMAL work pending for
        this cycle (bucket schedulers preempt a partially-drained batch to
        honour this; the ladder insorts it ahead of everything later — no
        protocol needed; see :mod:`repro.sim.sched`).
        """
        seq = self._seq
        t = self._now
        entry = (t, URGENT, seq, callback, event)
        spine = self._spine
        if spine is not None:
            sched = self._sched
            if t < sched.boundary:
                cursor = sched.cursor
                insort(spine, entry, cursor)
                if not (seq & 63) and len(spine) - cursor > LADDER_SPINE_CAP:
                    sched.spill()
            else:
                lanes = self._lanes
                lane = lanes.get(t)
                if lane is None:
                    lanes[t] = [entry]
                    _heappush(self._times, t)
                else:
                    lane.append(entry)
        else:
            heap = self._heap
            if heap is not None:
                heapq.heappush(heap, entry)
            else:
                self._sched.push(entry)
        self._seq = seq + 1

    def call_later(
        self,
        delay: int,
        callback: Callable[[Any], None],
        arg: Any = None,
        priority: int = NORMAL,
    ) -> None:
        """Enqueue a bare *callback(arg)* ``delay`` cycles ahead.

        The event-free counterpart of :meth:`schedule`: the deferred call
        rides the queue as the same 5-tuple form :meth:`schedule_callback`
        uses, so no :class:`Event` is allocated at all.  Useful for
        periodic housekeeping and kernel micro-benchmarks where the full
        event lifecycle would only add constant overhead.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        t = self._now + int(delay)
        entry = (t, priority, seq, callback, arg)
        spine = self._spine
        if spine is not None:
            sched = self._sched
            if t < sched.boundary:
                cursor = sched.cursor
                insort(spine, entry, cursor)
                if not (seq & 63) and len(spine) - cursor > LADDER_SPINE_CAP:
                    sched.spill()
            else:
                lanes = self._lanes
                lane = lanes.get(t)
                if lane is None:
                    lanes[t] = [entry]
                    _heappush(self._times, t)
                else:
                    lane.append(entry)
        else:
            heap = self._heap
            if heap is not None:
                heapq.heappush(heap, entry)
            else:
                self._sched.push(entry)
        self._seq = seq + 1

    # -- watchdog ------------------------------------------------------------
    def set_watchdog(self, callback: Callable[[int], None], deadline: int) -> None:
        """Install the observe-only stall watchdog.

        *callback(now)* runs inside the first dispatch whose event time is
        at or past *deadline* — :meth:`step` and the :meth:`run` loops
        share the firing point, since both funnel through
        :meth:`_dispatch`.  The callback must either raise (aborting the
        run, e.g. with :class:`~repro.errors.SimDeadlockError`) or call
        :meth:`defer_watchdog` to arm the next deadline; returning without
        deferring re-fires it every dispatch.
        """
        self._watchdog = callback
        self._watchdog_after = int(deadline)

    def defer_watchdog(self, deadline: int) -> None:
        """Move the watchdog deadline forward (progress was observed)."""
        self._watchdog_after = int(deadline)

    def clear_watchdog(self) -> None:
        self._watchdog = None

    @property
    def has_watchdog(self) -> bool:
        return self._watchdog is not None

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else None
        return self._sched.peek_time()

    def _dispatch(self, entry: Tuple) -> None:
        """Advance the clock to *entry* and run its payload (one event)."""
        when = entry[0]
        if when < self._now:  # pragma: no cover - queue invariant guard
            raise SchedulingError("event queue corrupted: time went backwards")
        self._now = when
        if self._watchdog is not None and when >= self._watchdog_after:
            self._watchdog(when)
        self._processed += 1
        if len(entry) == 5:
            # Deferred callback (schedule_callback/call_later): no Event
            # was allocated.
            entry[3](entry[4])
            return
        event = entry[3]
        cbs = event.callbacks
        event.callbacks = PROCESSED
        if cbs is not None:
            if cbs.__class__ is list:
                for callback in cbs:
                    callback(event)
            else:
                # Single subscriber stored as a bare callable — the common
                # case; no list was ever allocated for this event.
                cbs(event)
        if not event.ok and not event.defused:
            # A failed event nobody handled: surface the error loudly.
            raise event.value

    def _dispatch_batch(self, sched: Any, batch: List[Tuple]) -> None:
        """Dispatch a FIFO batch sharing one ``(time, priority)`` key.

        If a callback schedules an entry that must fire before the rest of
        the batch (an URGENT call at the current cycle), the scheduler
        raises its ``preempted`` flag and the undispatched remainder is
        handed back via ``reclaim`` — the next pop returns the preempting
        lane first, reproducing heap order exactly.  The remainder is also
        reclaimed if a dispatch raises (watchdog abort, unhandled failed
        event), so the queue stays intact for post-mortem inspection.
        """
        dispatch = self._dispatch
        i = 0
        n = len(batch)
        try:
            while i < n:
                entry = batch[i]
                i += 1
                dispatch(entry)
                if sched.preempted:
                    break
        finally:
            if i < n:
                sched.reclaim(batch, i)

    def step(self) -> None:
        """Process the single earliest event.

        Shares :meth:`_dispatch` with the :meth:`run` loops, so watchdog
        firing and failed-event propagation behave identically whether a
        simulation is driven step-by-step or in bulk.  Raises
        :class:`SimulationError` on an empty queue.
        """
        heap = self._heap
        if heap is not None:
            if not heap:
                raise SimulationError("step() on an empty event queue")
            self._dispatch(heapq.heappop(heap))
            return
        sched = self._sched
        if not len(sched):
            raise SimulationError("step() on an empty event queue")
        self._dispatch(sched.pop())

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulated time.  When *until* is given the clock
        is advanced to exactly *until* even if the last event fired
        earlier, mirroring a wall-clock measurement window.
        ``run(until=env.now)`` is an explicit zero-width window: it
        processes everything pending for the current cycle (events with
        ``time == now``), leaves strictly-later events queued, and returns
        with the clock unchanged.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        if heap is not None:
            # Hot loop: queue/heappop/dispatch bound to locals (a run is
            # millions of iterations; schedule() mutates the same list
            # object in place).
            queue = heap
            pop = heapq.heappop
            dispatch = self._dispatch
            while queue:
                if until is not None and queue[0][0] > until:
                    break
                dispatch(pop(queue))
        elif self._spine is not None:
            # Ladder hot loop: dispatch by advancing a cursor over the
            # sorted spine — an index and an attribute store per event,
            # no pop, no memmove.  The cursor is mirrored in a local;
            # the store *before* each dispatch is load-bearing (callbacks
            # push via `insort(spine, entry, sched.cursor)`).  Retired
            # entries compact away in one del-slice per LADDER_COMPACT
            # events.  Like the batch-draining loops below, this assumes
            # callbacks never re-enter run()/step().
            # The dispatch body is inlined here (verbatim from
            # :meth:`_dispatch`, which stays the single source for
            # step()/run_until_complete()/the batch loops): one Python
            # frame per event is the single largest remaining cost at
            # shallow depths, and this loop is the steady-state path of
            # the shipped default.  Counter and clock stores happen
            # before the payload call, exactly as in _dispatch, so
            # callbacks and watchdogs observe identical state.
            sched = self._sched
            spine = self._spine
            refill = sched.refill
            cursor = sched.cursor
            compact = LADDER_COMPACT
            # A no-window run uses an unreachable sentinel so the window
            # test stays one int compare per event (no None check).
            limit = (1 << 62) if until is None else until
            while True:
                try:
                    # Zero-cost try (3.11+): the exhausted-spine case
                    # is rarer than one per refill chunk, so indexing
                    # and catching beats a len() compare per event.
                    entry = spine[cursor]
                except IndexError:
                    if refill():
                        cursor = 0
                        continue
                    break
                when = entry[0]
                if when > limit:
                    break
                if when < self._now:  # pragma: no cover - invariant guard
                    raise SchedulingError(
                        "event queue corrupted: time went backwards"
                    )
                sched.cursor = cursor + 1
                self._now = when
                if self._watchdog is not None and when >= self._watchdog_after:
                    self._watchdog(when)
                self._processed += 1
                if len(entry) == 5:
                    entry[3](entry[4])
                else:
                    event = entry[3]
                    cbs = event.callbacks
                    event.callbacks = PROCESSED
                    if cbs is not None:
                        if cbs.__class__ is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    if not event.ok and not event.defused:
                        raise event.value
                cursor += 1
                if cursor >= compact:
                    del spine[:cursor]
                    cursor = 0
                    sched.cursor = 0
        else:
            sched = self._sched
            pop_batch = sched.pop_batch
            dispatch_batch = self._dispatch_batch
            if until is None:
                while True:
                    batch = pop_batch()
                    if batch is None:
                        break
                    dispatch_batch(sched, batch)
            else:
                peek = sched.peek_time
                while True:
                    when = peek()
                    if when is None or when > until:
                        break
                    dispatch_batch(sched, pop_batch())
        if until is not None:
            self._now = max(self._now, int(until))
        return self._now

    def run_until_complete(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until *process* terminates; returns its value.

        Raises :class:`SimulationError` if the queue drains (deadlock) or the
        optional *limit* is reached before the process completes.
        """
        if self._heap is not None:
            queue = self._heap
            pop = heapq.heappop
            dispatch = self._dispatch
            while not process.triggered:
                if not queue:
                    raise SimulationError(
                        f"deadlock: event queue drained before {process!r} finished"
                    )
                if limit is not None and queue[0][0] > limit:
                    raise SimulationError(
                        f"simulation limit {limit} reached before {process!r} finished"
                    )
                dispatch(pop(queue))
        elif self._spine is not None:
            sched = self._sched
            spine = self._spine
            refill = sched.refill
            dispatch = self._dispatch
            cursor = sched.cursor
            while not process.triggered:
                if cursor >= len(spine):
                    if not refill():
                        raise SimulationError(
                            f"deadlock: event queue drained before {process!r} finished"
                        )
                    cursor = 0
                entry = spine[cursor]
                if limit is not None and entry[0] > limit:
                    raise SimulationError(
                        f"simulation limit {limit} reached before {process!r} finished"
                    )
                sched.cursor = cursor + 1
                dispatch(entry)
                cursor += 1
                if cursor >= LADDER_COMPACT:
                    del spine[:cursor]
                    cursor = 0
                    sched.cursor = 0
        else:
            sched = self._sched
            pop_batch = sched.pop_batch
            dispatch = self._dispatch
            while not process.triggered:
                when = sched.peek_time()
                if when is None:
                    raise SimulationError(
                        f"deadlock: event queue drained before {process!r} finished"
                    )
                if limit is not None and when > limit:
                    raise SimulationError(
                        f"simulation limit {limit} reached before {process!r} finished"
                    )
                batch = pop_batch()
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        entry = batch[i]
                        i += 1
                        dispatch(entry)
                        # Same stop condition as the heap loop checks
                        # before each pop: the target completing mid-batch
                        # leaves the remainder queued.
                        if sched.preempted or process.triggered:
                            break
                finally:
                    if i < n:
                        sched.reclaim(batch, i)
        if not process.ok:
            raise process.value
        return process.value
