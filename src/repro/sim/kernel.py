"""The discrete-event simulation kernel (:class:`Environment`).

Events are stored in a pluggable *scheduler* (see :mod:`repro.sim.sched`)
keyed by ``(time, priority, sequence)``; :meth:`Environment.step` pops the
earliest event, advances the clock, and runs its callbacks.  The
``sequence`` tiebreak makes runs fully deterministic: two events scheduled
for the same cycle fire in scheduling order.  The default ``heap``
scheduler is the classic binary heap; the ``calendar`` and ``batch``
schedulers trade it for O(1) per-cycle buckets that pay off on deep
pending sets — every scheduler realizes the exact same total order, which
``tests/test_kernel_equivalence.py`` enforces differentially.

Time is an integer cycle count.  All device latencies in this package are
integral, which keeps the queue keys exact (no float comparisons) and runs
reproducible bit-for-bit across platforms.

Hot-path notes (see docs/PERFORMANCE.md): for the default ``heap``
scheduler the dispatch loops in :meth:`Environment.run` and
:meth:`Environment.run_until_complete` inline the body of
:meth:`Environment.step` with the raw heap list and ``heappop`` bound to
locals — a simulation is millions of ``step`` calls, so the attribute
lookups and the extra frame per event are measurable.  Bucket schedulers
instead drain whole ``(time, priority)`` batches per queue operation.
Deferred callbacks (:meth:`Environment.schedule_callback`) ride the queue
as plain 5-tuples instead of allocating a shim :class:`Event` per call;
the ``sequence`` tiebreak guarantees tuple comparison never reaches the
payload slot.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.sched import resolve_scheduler

#: Priority levels: URGENT callbacks run before NORMAL ones in the same cycle.
URGENT = 0
NORMAL = 1


class Environment:
    """Holds the simulation clock and the pending-event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=1_000_000)

    *scheduler* selects the pending-queue strategy: a registry name
    (``"heap"``, ``"calendar"``, ``"batch"`` — see :mod:`repro.sim.sched`)
    or, for tests, a zero-argument factory returning a scheduler instance.
    Every strategy dispatches in identical ``(time, priority, seq)``
    order; only wall-clock speed differs.
    """

    __slots__ = (
        "_now",
        "_sched",
        "_heap",
        "_scheduler_name",
        "_seq",
        "_processed",
        "_active_process",
        "_watchdog",
        "_watchdog_after",
    )

    def __init__(
        self,
        initial_time: int = 0,
        scheduler: Union[str, Callable[[], Any]] = "heap",
    ) -> None:
        self._now: int = int(initial_time)
        if isinstance(scheduler, str):
            self._scheduler_name = scheduler
            self._sched = resolve_scheduler(scheduler)()
        else:
            self._sched = scheduler()
            self._scheduler_name = getattr(
                self._sched, "registry_name", type(self._sched).__name__
            )
        #: Raw heap list when the strategy exposes one (HeapScheduler and
        #: subclasses); enables the inline fast path so the default
        #: configuration executes the exact historical dispatch loop.
        #: Queue entries are ``(time, priority, seq, event)`` for ordinary
        #: events or ``(time, priority, seq, callback, arg)`` for deferred
        #: callbacks (see :meth:`schedule_callback`).  ``seq`` is unique,
        #: so tuple comparisons never reach the payload slots.
        self._heap: Optional[List[Tuple]] = getattr(self._sched, "heap", None)
        self._seq: int = 0
        self._processed: int = 0
        self._active_process: Optional[Process] = None
        # Observe-only watchdog hook: called with the current time by the
        # first dispatch at or past the deadline — the same firing point
        # whether the dispatch came from step(), run(), or a drained
        # batch.  It schedules nothing and never mutates kernel state, so
        # installing one cannot perturb the event sequence — it may only
        # raise to abort a stalled run.
        self._watchdog: Optional[Callable[[int], None]] = None
        self._watchdog_after: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def scheduler_name(self) -> str:
        """Registry name of the active pending-queue strategy."""
        return self._scheduler_name

    @property
    def events_processed(self) -> int:
        """Total queue entries dispatched so far (the wall-clock benchmark's
        events/sec denominator)."""
        return self._processed

    @property
    def events_scheduled(self) -> int:
        """Total queue entries ever enqueued (scheduled ≥ processed; the
        difference is the current queue backlog plus cancelled entries).

        Kernel observability is boundary-only by design: the registry
        reads these counters after the run (obs.collector.finalize_system)
        instead of adding even a None-check to the per-event dispatch loop,
        so metrics-off and metrics-on runs execute identical hot paths.
        """
        return self._seq

    @property
    def queue_length(self) -> int:
        """Pending queue entries right now."""
        return len(self._sched)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing *delay* cycles from now."""
        return Timeout(self, int(delay), value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Wrap *generator* as a :class:`Process` and start it now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Enqueue a triggered *event* for processing ``delay`` cycles ahead."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        entry = (self._now + int(delay), priority, self._seq, event)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        self._seq += 1

    def schedule_callback(self, callback: Callable[[Event], None], event: Event) -> None:
        """Run *callback(event)* for an already-processed event via the queue.

        The deferred call is stored directly in the queue entry — a 5-tuple
        ``(time, priority, seq, callback, event)`` — so no shim
        :class:`Event` is allocated per call.  It is scheduled URGENT at
        the current cycle, so it runs before any NORMAL work pending for
        this cycle (bucket schedulers preempt a partially-drained batch to
        honour this; see :mod:`repro.sim.sched`).
        """
        entry = (self._now, URGENT, self._seq, callback, event)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        self._seq += 1

    def call_later(
        self,
        delay: int,
        callback: Callable[[Any], None],
        arg: Any = None,
        priority: int = NORMAL,
    ) -> None:
        """Enqueue a bare *callback(arg)* ``delay`` cycles ahead.

        The event-free counterpart of :meth:`schedule`: the deferred call
        rides the queue as the same 5-tuple form :meth:`schedule_callback`
        uses, so no :class:`Event` is allocated at all.  Useful for
        periodic housekeeping and kernel micro-benchmarks where the full
        event lifecycle would only add constant overhead.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        entry = (self._now + int(delay), priority, self._seq, callback, arg)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        else:
            self._sched.push(entry)
        self._seq += 1

    # -- watchdog ------------------------------------------------------------
    def set_watchdog(self, callback: Callable[[int], None], deadline: int) -> None:
        """Install the observe-only stall watchdog.

        *callback(now)* runs inside the first dispatch whose event time is
        at or past *deadline* — :meth:`step` and the :meth:`run` loops
        share the firing point, since both funnel through
        :meth:`_dispatch`.  The callback must either raise (aborting the
        run, e.g. with :class:`~repro.errors.SimDeadlockError`) or call
        :meth:`defer_watchdog` to arm the next deadline; returning without
        deferring re-fires it every dispatch.
        """
        self._watchdog = callback
        self._watchdog_after = int(deadline)

    def defer_watchdog(self, deadline: int) -> None:
        """Move the watchdog deadline forward (progress was observed)."""
        self._watchdog_after = int(deadline)

    def clear_watchdog(self) -> None:
        self._watchdog = None

    @property
    def has_watchdog(self) -> bool:
        return self._watchdog is not None

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next event, or None if the queue is empty."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else None
        return self._sched.peek_time()

    def _dispatch(self, entry: Tuple) -> None:
        """Advance the clock to *entry* and run its payload (one event)."""
        when = entry[0]
        if when < self._now:  # pragma: no cover - queue invariant guard
            raise SchedulingError("event queue corrupted: time went backwards")
        self._now = when
        if self._watchdog is not None and when >= self._watchdog_after:
            self._watchdog(when)
        self._processed += 1
        if len(entry) == 5:
            # Deferred callback (schedule_callback/call_later): no Event
            # was allocated.
            entry[3](entry[4])
            return
        event = entry[3]
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event.ok and not event.defused:
            # A failed event nobody handled: surface the error loudly.
            raise event.value

    def _dispatch_batch(self, sched: Any, batch: List[Tuple]) -> None:
        """Dispatch a FIFO batch sharing one ``(time, priority)`` key.

        If a callback schedules an entry that must fire before the rest of
        the batch (an URGENT call at the current cycle), the scheduler
        raises its ``preempted`` flag and the undispatched remainder is
        handed back via ``reclaim`` — the next pop returns the preempting
        lane first, reproducing heap order exactly.  The remainder is also
        reclaimed if a dispatch raises (watchdog abort, unhandled failed
        event), so the queue stays intact for post-mortem inspection.
        """
        dispatch = self._dispatch
        i = 0
        n = len(batch)
        try:
            while i < n:
                entry = batch[i]
                i += 1
                dispatch(entry)
                if sched.preempted:
                    break
        finally:
            if i < n:
                sched.reclaim(batch, i)

    def step(self) -> None:
        """Process the single earliest event.

        Shares :meth:`_dispatch` with the :meth:`run` loops, so watchdog
        firing and failed-event propagation behave identically whether a
        simulation is driven step-by-step or in bulk.  Raises
        :class:`SimulationError` on an empty queue.
        """
        heap = self._heap
        if heap is not None:
            if not heap:
                raise SimulationError("step() on an empty event queue")
            self._dispatch(heapq.heappop(heap))
            return
        sched = self._sched
        if not len(sched):
            raise SimulationError("step() on an empty event queue")
        self._dispatch(sched.pop())

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulated time.  When *until* is given the clock
        is advanced to exactly *until* even if the last event fired
        earlier, mirroring a wall-clock measurement window.
        ``run(until=env.now)`` is an explicit zero-width window: it
        processes everything pending for the current cycle (events with
        ``time == now``), leaves strictly-later events queued, and returns
        with the clock unchanged.
        """
        if until is not None and until < self._now:
            raise SchedulingError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        if heap is not None:
            # Hot loop: queue/heappop/dispatch bound to locals (a run is
            # millions of iterations; schedule() mutates the same list
            # object in place).
            queue = heap
            pop = heapq.heappop
            dispatch = self._dispatch
            while queue:
                if until is not None and queue[0][0] > until:
                    break
                dispatch(pop(queue))
        else:
            sched = self._sched
            pop_batch = sched.pop_batch
            dispatch_batch = self._dispatch_batch
            if until is None:
                while True:
                    batch = pop_batch()
                    if batch is None:
                        break
                    dispatch_batch(sched, batch)
            else:
                peek = sched.peek_time
                while True:
                    when = peek()
                    if when is None or when > until:
                        break
                    dispatch_batch(sched, pop_batch())
        if until is not None:
            self._now = max(self._now, int(until))
        return self._now

    def run_until_complete(self, process: Process, limit: Optional[int] = None) -> Any:
        """Run until *process* terminates; returns its value.

        Raises :class:`SimulationError` if the queue drains (deadlock) or the
        optional *limit* is reached before the process completes.
        """
        if self._heap is not None:
            queue = self._heap
            pop = heapq.heappop
            dispatch = self._dispatch
            while not process.triggered:
                if not queue:
                    raise SimulationError(
                        f"deadlock: event queue drained before {process!r} finished"
                    )
                if limit is not None and queue[0][0] > limit:
                    raise SimulationError(
                        f"simulation limit {limit} reached before {process!r} finished"
                    )
                dispatch(pop(queue))
        else:
            sched = self._sched
            pop_batch = sched.pop_batch
            dispatch = self._dispatch
            while not process.triggered:
                when = sched.peek_time()
                if when is None:
                    raise SimulationError(
                        f"deadlock: event queue drained before {process!r} finished"
                    )
                if limit is not None and when > limit:
                    raise SimulationError(
                        f"simulation limit {limit} reached before {process!r} finished"
                    )
                batch = pop_batch()
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        entry = batch[i]
                        i += 1
                        dispatch(entry)
                        # Same stop condition as the heap loop checks
                        # before each pop: the target completing mid-batch
                        # leaves the remainder queued.
                        if sched.preempted or process.triggered:
                            break
                finally:
                    if i < n:
                        sched.reclaim(batch, i)
        if not process.ok:
            raise process.value
        return process.value
