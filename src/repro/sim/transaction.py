"""Explicit transaction lifecycle records.

Every packet that enters the queue machinery gets a
:class:`TransactionRecord` at its birth — ``vl_push`` for messages,
``vl_fetch`` for consumer requests — and every layer it traverses stamps a
:class:`TxnState` transition onto it with the current tick.  A packet's
journey is thereby a *queryable record* instead of a set of scattered
counters: where it waited, how many stash attempts it took, and how long
each stage held it.

Message lifecycle (the Figure 5 flow)::

    CREATED ──> PUSHED ──> MAPPED ──> STASHED ──> RESPONDED ──> RETIRED
                   │          ▲            (miss) ────┘    │
                   │          │     ROLLED_BACK <──────────┘ (burst
                   │          └──────── │   misprediction; re-enters
                   └──> BUFFERED <──────┘   via BUFFERED or MAPPED)
                        (no target yet; a later request or
                         speculation re-enters at MAPPED)

Request lifecycle::

    CREATED ──> ARRIVED ──> MATCHED | COALESCED | DROPPED

Records are plain bookkeeping — they schedule no simulation events and
draw no randomness, so enabling them never perturbs timing (the figures
stay bit-identical with recording on or off).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple


class TxnState(Enum):
    """Lifecycle states a transaction can pass through."""

    # -- message (vl_push) path -------------------------------------------------
    CREATED = "created"        # library allocated the message (vl_push issued)
    PUSHED = "pushed"          # push packet delivered at the routing device
    MAPPED = "mapped"          # address-mapping pipeline found a target
    BUFFERED = "buffered"      # parked on the SQI's buffering queue
    STASHED = "stashed"        # stash packet sent toward a consumer line
    RESPONDED = "responded"    # hit/miss response processed at the device
    ROLLED_BACK = "rolled-back"  # burst misprediction invalidated the line
    RETIRED = "retired"        # consumer popped the message

    # -- request (vl_fetch) path ------------------------------------------------
    ARRIVED = "arrived"        # fetch packet delivered at the routing device
    MATCHED = "matched"        # request paired with producer data
    COALESCED = "coalesced"    # duplicate of an already-registered request
    DROPPED = "dropped"        # NACKed by a full consBuf


#: Legal lifecycle edges (the Figure 5 flow plus the request path).  The
#: one deliberately asymmetric edge is ``RETIRED -> RESPONDED``: the hit
#: response for the final stash rides the network back to the device and
#: may be stamped after the consumer already popped the line.
LEGAL_TRANSITIONS: Dict[Optional[TxnState], frozenset] = {
    None: frozenset({TxnState.CREATED}),
    TxnState.CREATED: frozenset({TxnState.PUSHED, TxnState.ARRIVED}),
    TxnState.PUSHED: frozenset({TxnState.MAPPED, TxnState.BUFFERED}),
    TxnState.BUFFERED: frozenset({TxnState.MAPPED}),
    TxnState.MAPPED: frozenset({TxnState.STASHED}),
    TxnState.STASHED: frozenset({TxnState.RESPONDED, TxnState.RETIRED}),
    TxnState.RESPONDED: frozenset(
        {TxnState.RETIRED, TxnState.MAPPED, TxnState.BUFFERED, TxnState.ROLLED_BACK}
    ),
    TxnState.ROLLED_BACK: frozenset({TxnState.MAPPED, TxnState.BUFFERED}),
    TxnState.RETIRED: frozenset({TxnState.RESPONDED}),
    TxnState.ARRIVED: frozenset(
        {TxnState.MATCHED, TxnState.COALESCED, TxnState.DROPPED}
    ),
    TxnState.MATCHED: frozenset(),
    TxnState.COALESCED: frozenset(),
    TxnState.DROPPED: frozenset(),
}

#: States that end a message record; anything else open at quiesce leaked.
TERMINAL_MESSAGE_STATES = frozenset({TxnState.RETIRED})

#: States that end a request record.  A request may also legally park at
#: ARRIVED forever: a stale prerequest that never matches producer data
#: stays pending in consBuf (Section 4.2) — benign, not a leak.
TERMINAL_REQUEST_STATES = frozenset(
    {TxnState.MATCHED, TxnState.COALESCED, TxnState.DROPPED}
)


def is_legal_transition(prev: Optional[TxnState], nxt: TxnState) -> bool:
    """Whether *prev* → *nxt* is an edge of the lifecycle state machine."""
    return nxt in LEGAL_TRANSITIONS.get(prev, frozenset())


class TxnStamp(NamedTuple):
    """One timestamped state transition."""

    state: TxnState
    tick: int
    detail: str


class TransactionRecord:
    """The queryable journey of one packet through the system."""

    __slots__ = ("tid", "sqi", "kind", "stamps")

    def __init__(self, tid: int, sqi: int, kind: str = "message") -> None:
        self.tid = tid
        self.sqi = sqi
        self.kind = kind
        self.stamps: List[TxnStamp] = []

    # ------------------------------------------------------------------ record
    def stamp(self, state: TxnState, tick: int, detail: str = "") -> TxnStamp:
        """Append one state transition at *tick*."""
        entry = TxnStamp(state, int(tick), detail)
        self.stamps.append(entry)
        return entry

    # ------------------------------------------------------------------- query
    @property
    def state(self) -> Optional[TxnState]:
        """The most recent state (None before the first stamp)."""
        return self.stamps[-1].state if self.stamps else None

    def ticks(self, state: TxnState) -> List[int]:
        """Every tick at which *state* was entered (retries repeat states)."""
        return [s.tick for s in self.stamps if s.state is state]

    def first(self, state: TxnState) -> Optional[int]:
        for s in self.stamps:
            if s.state is state:
                return s.tick
        return None

    def last(self, state: TxnState) -> Optional[int]:
        for s in reversed(self.stamps):
            if s.state is state:
                return s.tick
        return None

    @property
    def retired(self) -> bool:
        """True once the consumer popped the message.

        Checked against *any* stamp, not just the last: the hit response
        for the final stash rides the network back to the device and may
        stamp RESPONDED after the consumer already popped the line.
        """
        return any(s.state is TxnState.RETIRED for s in self.stamps)

    @property
    def attempts(self) -> int:
        """Stash attempts (>1 means the push missed and retried)."""
        return sum(1 for s in self.stamps if s.state is TxnState.STASHED)

    @property
    def latency(self) -> Optional[int]:
        """End-to-end cycles from creation to retirement (None if open)."""
        start = self.first(TxnState.CREATED)
        end = self.last(TxnState.RETIRED)
        if start is None or end is None:
            return None
        return end - start

    def stage_durations(self) -> Iterator[Tuple[str, int]]:
        """Yield ``(stage_label, cycles)`` for each consecutive stamp pair.

        Labels name the edge, e.g. ``created->pushed``; retries produce
        repeated edges (``responded->mapped`` for a Figure 5 re-entry), so
        aggregating these across transactions gives per-stage latency
        histograms.
        """
        for prev, nxt in zip(self.stamps, self.stamps[1:]):
            yield f"{prev.state.value}->{nxt.state.value}", nxt.tick - prev.tick

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.state.value if self.state else "empty"
        return (
            f"<TransactionRecord {self.kind}#{self.tid} sqi={self.sqi} "
            f"state={state} stamps={len(self.stamps)}>"
        )


class TransactionLog:
    """Allocates transaction records and (optionally) retains them.

    Each *kind* gets its own id sequence so message ids stay the dense
    ``0, 1, 2, …`` sequence the trace figures key on, regardless of how
    many request records interleave with them.

    With ``retain=False`` (the default) records are still created and
    stamped — they live exactly as long as the packet that carries them —
    but the log keeps no reference, so long runs don't accumulate memory.
    """

    __slots__ = ("retain", "_next_id", "_records")

    def __init__(self, retain: bool = False) -> None:
        self.retain = retain
        self._next_id: Dict[str, int] = {}
        self._records: Dict[str, List[TransactionRecord]] = {}

    def open(self, sqi: int, kind: str = "message") -> TransactionRecord:
        """Create a record with the next id of its *kind* sequence."""
        tid = self._next_id.get(kind, 0)
        self._next_id[kind] = tid + 1
        record = TransactionRecord(tid, sqi, kind)
        if self.retain:
            self._records.setdefault(kind, []).append(record)
        return record

    def records(self, kind: str = "message") -> List[TransactionRecord]:
        """Retained records of *kind*, in creation order."""
        return list(self._records.get(kind, ()))

    def count(self, kind: str = "message") -> int:
        """How many records of *kind* were opened (retained or not)."""
        return self._next_id.get(kind, 0)

    def in_flight(self, kind: str = "message") -> List[TransactionRecord]:
        """Retained records that have not reached a terminal state."""
        terminal = (
            TxnState.RETIRED,
            TxnState.MATCHED,
            TxnState.COALESCED,
            TxnState.DROPPED,
        )
        return [
            r
            for r in self._records.get(kind, ())
            if not any(s.state in terminal for s in r.stamps)
        ]
