"""Statistics collection: counters, time-weighted state tracking, summaries.

The evaluation needs three kinds of measurement:

* plain event counters (push attempts, failures, packets) — :class:`Counter`;
* time-in-state accounting for consumer cachelines (empty vs non-empty
  cycles, Figure 9) — :class:`StateTimer`;
* distribution summaries for latencies (Figure 7 analysis) —
  :class:`RunningStats`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment


class Counter:
    """A named bundle of integer event counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class StateTimer:
    """Tracks how long an entity spends in each state.

    Drives the Figure 9 breakdown: each consumer cacheline owns a StateTimer
    toggling between ``"empty"`` and ``"valid"``; at the end of the run the
    accumulated cycles are averaged across lines.
    """

    __slots__ = ("env", "_state", "_since", "_accum")

    def __init__(self, env: "Environment", initial_state: Hashable) -> None:
        self.env = env
        self._state = initial_state
        self._since = env.now
        self._accum: Dict[Hashable, int] = {}

    @property
    def state(self) -> Hashable:
        return self._state

    def transition(self, new_state: Hashable) -> None:
        """Switch to *new_state*, charging elapsed time to the old state."""
        now = self.env.now
        self._accum[self._state] = self._accum.get(self._state, 0) + (now - self._since)
        self._state = new_state
        self._since = now

    def time_in(self, state: Hashable, up_to_now: bool = True) -> int:
        """Total cycles spent in *state* (including the open interval)."""
        total = self._accum.get(state, 0)
        if up_to_now and self._state == state:
            total += self.env.now - self._since
        return total

    def close(self) -> None:
        """Charge the open interval (call at end of measurement)."""
        self.transition(self._state)


class RunningStats:
    """Streaming mean/variance/min/max plus an optional sample reservoir."""

    __slots__ = ("n", "_mean", "_m2", "minimum", "maximum", "_samples")

    def __init__(self, keep_samples: bool = False) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.minimum = x if self.minimum is None else min(self.minimum, x)
        self.maximum = x if self.maximum is None else max(self.maximum, x)
        if self._samples is not None:
            self._samples.append(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self._mean * self.n

    @property
    def samples(self) -> List[float]:
        if self._samples is None:
            raise ValueError("RunningStats was created with keep_samples=False")
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Return the *q*-th percentile (0..100) from the kept samples."""
        data = sorted(self.samples)
        if not data:
            raise ValueError("no samples collected")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        idx = (len(data) - 1) * q / 100.0
        lo, hi = int(math.floor(idx)), int(math.ceil(idx))
        if lo == hi:
            return data[lo]
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the aggregation the paper uses for Figure 8."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean needs strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
