"""The ``repro obs`` engine: run cells with full observability attached.

One :class:`ObsRequest` is a (workload × setting) cell to simulate with a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.collector.MetricsCollector`, a
:class:`~repro.obs.perfetto.PerfettoTraceSink` and a
:class:`~repro.obs.perfetto.JsonlTraceSink` all subscribed before the
first event fires.  :func:`collect_cell` returns plain dicts/lists, so a
cell runs identically in-process or inside a
:class:`~concurrent.futures.ProcessPoolExecutor` worker, and
:func:`run_obs` merges results in **submission order** — the combined
trace and metrics documents are byte-identical for ``--jobs 1`` and
``--jobs N`` (guarded by the golden-trace test).

Determinism inventory: every number in the output derives from simulation
ticks and event counts; there is no wall-clock, no PID, no dict-order
dependence (exports sort keys), and the per-cell Perfetto pid blocks are
assigned from the submission index, not from scheduling.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.eval.parallel import _mp_context, resolve_jobs
from repro.eval.runner import run_workload, setting_by_name
from repro.obs.accuracy import accuracy_from_metrics, stage_latency_summary
from repro.obs.collector import MetricsCollector, finalize_system
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import JsonlTraceSink, PerfettoTraceSink

#: Each cell's Perfetto tracks occupy one block of this many pids, keyed by
#: submission index — disjoint per cell, stable across jobs counts.
PID_BLOCK = 8

#: The fig8 smoke matrix (matches tools/bench.py --quick): small enough for
#: CI and golden fixtures, large enough to exercise both devices.
SMOKE_WORKLOADS = ("ping-pong", "incast")
SMOKE_SETTINGS = ("vl", "tuned")
SMOKE_SCALE = 0.05
SMOKE_SEED = 0xC0FFEE


@dataclass(frozen=True)
class ObsRequest:
    """One fully-observed simulation cell (picklable by value)."""

    workload: str
    setting: str          # a setting_by_name short-name ("vl", "tuned", …)
    scale: float = 1.0
    seed: int = 0xC0FFEE
    pid_base: int = 0     # Perfetto pid block offset (submission index × 8)


def smoke_requests(
    scale: float = SMOKE_SCALE, seed: int = SMOKE_SEED
) -> List[ObsRequest]:
    """The fig8 smoke matrix as observation requests, in matrix order."""
    requests = []
    for workload in SMOKE_WORKLOADS:
        for setting in SMOKE_SETTINGS:
            requests.append(
                ObsRequest(workload, setting, scale=scale, seed=seed)
            )
    return [
        replace(r, pid_base=i * PID_BLOCK) for i, r in enumerate(requests)
    ]


def collect_cell(request: ObsRequest) -> Dict:
    """Run one cell with every sink attached; returns plain data.

    The worker-process entry point *and* the serial path — the same code
    object produces the bytes either way.
    """
    registry = MetricsRegistry()
    sinks: List[object] = []

    def attach(system) -> None:
        sinks.append(MetricsCollector(system.hooks, registry))
        sinks.append(
            PerfettoTraceSink(
                system.hooks,
                pid_base=request.pid_base,
                label=f"{request.workload}/{request.setting}",
            )
        )
        sinks.append(JsonlTraceSink(system.hooks))

    metrics, system = run_workload(
        request.workload,
        setting_by_name(request.setting),
        scale=request.scale,
        seed=request.seed,
        on_system=attach,
        return_system=True,
    )
    finalize_system(system, registry)
    collector, perfetto, jsonl = sinks
    accuracy = accuracy_from_metrics(metrics)
    return {
        "workload": request.workload,
        "setting": request.setting,
        "scale": request.scale,
        "seed": request.seed,
        "exec_cycles": metrics.exec_cycles,
        "metrics": registry.as_dict(),
        "accuracy": accuracy.as_dict(),
        "stage_latency": stage_latency_summary(registry),
        "trace_events": perfetto.events,
        "jsonl": jsonl.lines,
    }


@dataclass(frozen=True)
class ObsResult:
    """Merged observation documents for one request list."""

    cells: List[Dict]

    # ------------------------------------------------------------- documents
    def trace_document(self) -> Dict:
        events: List[Dict] = []
        for cell in self.cells:
            events.extend(cell["trace_events"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def trace_json(self) -> str:
        return json.dumps(
            self.trace_document(), sort_keys=True, separators=(",", ":")
        )

    def metrics_document(self) -> Dict:
        return {
            "cells": [
                {k: cell[k] for k in (
                    "workload", "setting", "scale", "seed", "exec_cycles",
                    "metrics", "accuracy", "stage_latency",
                )}
                for cell in self.cells
            ]
        }

    def metrics_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            self.metrics_document(), sort_keys=True, indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def jsonl(self) -> str:
        lines: List[str] = []
        for cell in self.cells:
            lines.extend(cell["jsonl"])
        return "\n".join(lines) + ("\n" if lines else "")

    # --------------------------------------------------------------- summary
    def summary(self) -> str:
        from repro.eval.report import format_accuracy_table, format_stage_table

        blocks = [format_accuracy_table(
            [cell["accuracy"] for cell in self.cells]
        )]
        for cell in self.cells:
            if cell["stage_latency"]:
                blocks.append(
                    format_stage_table(
                        f"stage latency — {cell['workload']} × {cell['setting']}",
                        cell["stage_latency"],
                    )
                )
        return "\n\n".join(blocks)


def run_obs(
    requests: Sequence[ObsRequest], jobs: Optional[int] = None
) -> ObsResult:
    """Run every cell and merge in submission order (jobs-invariant)."""
    requests = list(requests)
    workers = min(resolve_jobs(jobs), len(requests)) if requests else 1
    if workers <= 1:
        return ObsResult([collect_cell(request) for request in requests])
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_mp_context()
    ) as pool:
        futures = [pool.submit(collect_cell, request) for request in requests]
        return ObsResult([future.result() for future in futures])
