"""The process-wide metrics registry: counters, gauges, histograms, timers.

Every instrument lives in one :class:`MetricsRegistry` keyed by a dotted
metric name (``bus.packets.stash``, ``txn.stage.pushed->mapped``, …; the
full catalogue is docs/OBSERVABILITY.md).  Hot paths hold an *optional*
reference to a registry and guard every call with ``is not None`` — with
observability off the reference is ``None`` and the instrumented code costs
one attribute load per site, which is what keeps the golden metrics
bit-identical and the perf-smoke wall time within the <3% overhead gate.

Design constraints (shared with :mod:`repro.sim.hooks`):

* **Sim-time only** — timers and windowed histograms are stamped with
  simulation ticks, never wall-clock, so every exported document is
  byte-stable across ``--jobs`` and across machines.
* **No timing impact** — recording schedules no simulation events and draws
  no randomness; attaching a registry never changes a run's tick sequence.
* **Deterministic export** — :meth:`MetricsRegistry.as_dict` sorts every
  key, and :meth:`MetricsRegistry.to_json` fixes separators, so equal runs
  serialize to equal bytes.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple


class WindowedHistogram:
    """A fixed-bucket histogram over a sliding sample window.

    Buckets are ``value // bucket_width``; only the most recent *window*
    samples contribute (older samples age out in arrival order), so a
    long run's histogram reflects recent behaviour instead of averaging
    over a whole warm-up.  ``window=0`` keeps everything (cumulative).
    """

    __slots__ = ("bucket_width", "window", "_samples", "_buckets", "count",
                 "total", "_head")

    def __init__(self, bucket_width: int = 16, window: int = 0) -> None:
        if bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.bucket_width = bucket_width
        self.window = window
        #: Ring buffer of windowed samples (None = cumulative mode).
        self._samples: Optional[List[int]] = [] if window else None
        self._head = 0
        self._buckets: Dict[int, int] = {}
        #: Lifetime sample count / sum (never age out; for means and rates).
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        bucket = max(0, value) // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        if self._samples is None:
            return
        if len(self._samples) < self.window:
            self._samples.append(value)
            return
        # Window full: age out the oldest sample's bucket contribution.
        old = self._samples[self._head]
        old_bucket = max(0, old) // self.bucket_width
        remaining = self._buckets[old_bucket] - 1
        if remaining:
            self._buckets[old_bucket] = remaining
        else:
            del self._buckets[old_bucket]
        self._samples[self._head] = value
        self._head = (self._head + 1) % self.window

    # ------------------------------------------------------------------ queries
    @property
    def windowed_count(self) -> int:
        """Samples currently inside the window."""
        if self._samples is None:
            return self.count
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Lifetime mean (windowing never distorts rate reporting)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100) from the windowed buckets.

        Resolution is one bucket: the returned value is the upper edge of
        the bucket holding the q-th windowed sample — exact enough for the
        stage-latency reports and computable without keeping raw samples.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        n = self.windowed_count
        if n == 0:
            return 0.0
        rank = min(n, max(1, int(math.ceil(q / 100.0 * n))))
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                return float((bucket + 1) * self.bucket_width - 1)
        return float((max(self._buckets) + 1) * self.bucket_width - 1)

    def buckets(self) -> Dict[int, int]:
        """Windowed bucket counts keyed by bucket lower edge."""
        return {b * self.bucket_width: n for b, n in sorted(self._buckets.items())}


class SimTimer:
    """Accumulates open/close intervals measured in simulation ticks."""

    __slots__ = ("_started", "count", "total", "max")

    def __init__(self) -> None:
        self._started: Optional[int] = None
        self.count = 0
        self.total = 0
        self.max = 0

    def start(self, now: int) -> None:
        self._started = int(now)

    def stop(self, now: int) -> int:
        """Close the open interval; returns its length in ticks."""
        if self._started is None:
            raise ValueError("SimTimer.stop() without a matching start()")
        elapsed = int(now) - self._started
        self._started = None
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed
        return elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """One namespace of counters, gauges, windowed histograms and timers.

    The registry is plain bookkeeping: incrementing a counter allocates at
    most one dict slot, and export walks sorted keys so two identical runs
    produce identical documents.  Use :data:`NULL_METRICS` (or ``None`` +
    an ``is not None`` guard) where a disabled registry must cost nothing.
    """

    enabled = True

    def __init__(
        self, histogram_bucket_width: int = 16, histogram_window: int = 4096
    ) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, WindowedHistogram] = {}
        self._timers: Dict[str, SimTimer] = {}
        self._bucket_width = histogram_bucket_width
        self._window = histogram_window

    # ---------------------------------------------------------------- counters
    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------ gauges
    def gauge_set(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the high-water mark of *name*."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        return self._gauges.get(name, 0.0)

    # -------------------------------------------------------------- histograms
    def histogram(
        self, name: str, bucket_width: Optional[int] = None
    ) -> WindowedHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = WindowedHistogram(
                bucket_width or self._bucket_width, self._window
            )
            self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------ timers
    def timer(self, name: str) -> SimTimer:
        timer = self._timers.get(name)
        if timer is None:
            timer = SimTimer()
            self._timers[name] = timer
        return timer

    # ------------------------------------------------------------------ export
    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    def as_dict(self) -> Dict:
        """Deterministic snapshot: sorted keys, integers and floats only."""
        histograms = {}
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            histograms[name] = {
                "count": hist.count,
                "mean": round(hist.mean, 6),
                "p50": hist.percentile(50),
                "p90": hist.percentile(90),
                "p99": hist.percentile(99),
                "buckets": {str(k): v for k, v in hist.buckets().items()},
            }
        timers = {
            name: {
                "count": t.count,
                "total": t.total,
                "max": t.max,
                "mean": round(t.mean, 6),
            }
            for name, t in sorted(self._timers.items())
        }
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": histograms,
            "timers": timers,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            self.as_dict(), sort_keys=True, indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )


class NullMetricsRegistry(MetricsRegistry):
    """No-op registry: every recording method is a cheap stub.

    Handed to code that insists on *some* registry object; hot paths
    should prefer a ``None`` reference with an ``is not None`` guard,
    which is cheaper still.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: int) -> None:
        pass


#: Shared no-op instance (stateless, so sharing is safe).
NULL_METRICS = NullMetricsRegistry()
