"""HookBus → MetricsRegistry bridge.

A :class:`MetricsCollector` subscribes to every instrumentation event the
simulator publishes and folds each into the registry's counters and
windowed histograms — transaction stage durations, specBuf hit/miss,
per-algorithm push-delay decisions, cacheline fill/vacate churn, network
occupancy, semantic push/delivery counts.  It is a plain
:class:`~repro.sim.hooks.HookBus` subscriber: attaching one never changes
a run's tick sequence, and with no collector attached the publishers'
``wants()`` guards keep the hot path free.

:func:`finalize_system` complements the streaming collector with the
run-boundary numbers that need no per-event work at all: kernel event
totals, network busy cycles/utilization, and consumer-line occupancy.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.sim.hooks import (
    BusHook,
    DeliveryHook,
    HookBus,
    LineHook,
    LinkHook,
    PushHook,
    RequestHook,
    SpecBufHook,
    SpecDecisionHook,
    TransactionHook,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


class MetricsCollector:
    """Subscribe a registry to every bus event family.

    Metric names form a stable dotted catalogue (docs/OBSERVABILITY.md):

    ``txn.stage.<edge>``            histogram of per-stage cycles
    ``txn.latency``                 end-to-end message latency histogram
    ``txn.retries``                 stash attempts beyond the first
    ``spec.hits`` / ``spec.misses`` specBuf response outcomes
    ``spec.decision.<algo>``        push-delay histogram per algorithm
    ``spec.retry.<algo>``           sticky-slot retry count per algorithm
    ``spec.refused.<algo>``         retries the algorithm refused
    ``bus.packets.<kind>``          accepted network packets per class
    ``net.traversals.<kind>``       per-packet-class NoC link crossings
    ``line.fill``/``line.vacate``/``line.failed-fill``  cacheline churn
    ``push.messages`` / ``delivery.messages``  semantic send/receive
    ``request.<state>``             open-system lifecycle transition counts
    ``request.sojourn``             per-request response-time histogram

    ``net.*`` names only appear on hop-routed topologies (mesh/ring/
    crossbar) — the single-bus fabric publishes no :class:`LinkHook`, so
    bus-model metric exports are unchanged byte for byte.  Likewise
    ``request.*`` names only appear on open-system runs: a closed-batch
    run never activates the request log, so no :class:`RequestHook` is
    ever published there.
    """

    def __init__(self, bus: HookBus, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._subs = [
            bus.subscribe(TransactionHook, self._on_transaction),
            bus.subscribe(SpecBufHook, self._on_specbuf),
            bus.subscribe(SpecDecisionHook, self._on_decision),
            bus.subscribe(BusHook, self._on_bus),
            bus.subscribe(LinkHook, self._on_link),
            bus.subscribe(LineHook, self._on_line),
            bus.subscribe(PushHook, self._on_push),
            bus.subscribe(DeliveryHook, self._on_delivery),
            bus.subscribe(RequestHook, self._on_request),
        ]
        self._bus = bus

    def detach(self) -> None:
        for sub in self._subs:
            self._bus.unsubscribe(sub)
        self._subs = []

    # -------------------------------------------------------------- handlers
    def _on_transaction(self, event: TransactionHook) -> None:
        reg = self.registry
        record = event.record
        if record is None or len(record.stamps) < 2:
            return
        prev, last = record.stamps[-2], record.stamps[-1]
        reg.observe(
            f"txn.stage.{prev.state.value}->{last.state.value}",
            last.tick - prev.tick,
        )
        if record.retired and record.kind == "message":
            latency = record.latency
            if latency is not None:
                reg.observe("txn.latency", latency)
            extra = record.attempts - 1
            if extra > 0:
                reg.inc("txn.retries", extra)

    def _on_specbuf(self, event: SpecBufHook) -> None:
        self.registry.inc("spec.hits" if event.hit else "spec.misses")

    def _on_decision(self, event: SpecDecisionHook) -> None:
        reg = self.registry
        if event.delay < 0:
            reg.inc(f"spec.refused.{event.algorithm}")
            return
        reg.observe(f"spec.decision.{event.algorithm}", event.delay)
        if event.retry:
            reg.inc(f"spec.retry.{event.algorithm}")

    def _on_bus(self, event: BusHook) -> None:
        self.registry.inc(f"bus.packets.{event.kind}")

    def _on_link(self, event: LinkHook) -> None:
        self.registry.inc(f"net.traversals.{event.kind}")

    def _on_line(self, event: LineHook) -> None:
        self.registry.inc(f"line.{event.transition}")

    def _on_push(self, event: PushHook) -> None:
        self.registry.inc("push.messages")

    def _on_delivery(self, event: DeliveryHook) -> None:
        self.registry.inc("delivery.messages")

    def _on_request(self, event: RequestHook) -> None:
        reg = self.registry
        reg.inc(f"request.{event.state}")
        if event.sojourn is not None:
            reg.observe("request.sojourn", event.sojourn)


def finalize_system(system: "System", registry: MetricsRegistry) -> None:
    """Record the run-boundary gauges that cost nothing during the run.

    Called once after the simulation completes; reads counters the kernel,
    network and library maintain anyway, so the metrics-off overhead of
    these numbers is exactly zero.
    """
    env = system.env
    registry.gauge_set("kernel.sim_time", float(env.now))
    registry.gauge_set("kernel.events.dispatched", float(env.events_processed))
    registry.gauge_set("kernel.events.scheduled", float(env.events_scheduled))
    registry.gauge_set("kernel.queue_length", float(env.queue_length))
    registry.gauge_set("bus.busy_cycles", float(system.network.busy_cycles))
    registry.gauge_set(
        "bus.utilization", round(system.network.utilization(), 6)
    )
    for kind, count in sorted(system.network.counters.as_dict().items()):
        registry.gauge_set(f"bus.accepted.{kind}", float(count))
    # Per-link fabric gauges exist only on NoC topologies: the single-bus
    # fabric reports no links, keeping bus-model exports byte-identical.
    links = system.network.links()
    if links:
        registry.gauge_set("net.links", float(len(links)))
        registry.gauge_set(
            "net.wait_cycles", float(system.network.wait_cycles)
        )
        registry.gauge_set(
            "net.utilization", round(system.network.utilization(), 6)
        )
        for row in system.network.link_report():
            name = row["link"]
            registry.gauge_set(f"net.link.{name}.packets", float(row["packets"]))
            registry.gauge_set(
                f"net.link.{name}.busy_cycles", float(row["busy_cycles"])
            )
            registry.gauge_set(
                f"net.link.{name}.wait_cycles", float(row["wait_cycles"])
            )
            registry.gauge_set(
                f"net.link.{name}.utilization", round(row["utilization"], 6)
            )
    # Open-system gauges exist only when a request log was activated: the
    # closed-batch default keeps metric exports byte-identical.
    requests = system.requests
    if requests.active:
        registry.gauge_set("request.opened", float(requests.opened))
        registry.gauge_set("request.completed", float(requests.completed))
        registry.gauge_set("request.in_flight", float(len(requests.in_flight())))
        if requests.completed:
            registry.gauge_set(
                "request.sojourn.mean", round(requests.sojourn_stats.mean, 6)
            )
            registry.gauge_set("request.sojourn.p50", requests.percentile(50))
            registry.gauge_set("request.sojourn.p99", requests.percentile(99))
            registry.gauge_set("request.sojourn.p999", requests.percentile(99.9))
    empty, valid = system.consumer_line_cycles()
    registry.gauge_set("line.avg_empty_cycles", round(empty, 6))
    registry.gauge_set("line.avg_valid_cycles", round(valid, 6))
    registry.gauge_set(
        "library.messages_produced", float(system.messages_produced())
    )
    registry.gauge_set(
        "library.messages_delivered", float(system.messages_delivered())
    )
    for key, value in sorted(system.aggregate_device_stats().as_dict().items()):
        registry.gauge_set(f"device.{key}", float(value))


def attach_collector(
    system: "System", registry: Optional[MetricsRegistry] = None
) -> MetricsCollector:
    """Convenience: wire a collector onto a system's hook bus."""
    return MetricsCollector(system.hooks, registry or MetricsRegistry())
