"""Speculation-accuracy analysis: was pushing early worth it?

The paper's delay predictors trade wasted pushes (a stash that bounces off
a VALID line costs bus occupancy and SRD energy) against missed
opportunities (a consumer left waiting on an on-demand request).  This
module condenses one run's counters into the classic retrieval pair:

* **precision** — of the speculative pushes sent, how many landed
  (``spec_hits / spec_pushes``); 1 − precision is Figure 10a's speculative
  failure rate.
* **recall** — of the messages delivered, how many arrived speculatively
  (``spec_hits / messages_delivered``); the remainder needed a consumer
  request first (on-demand).

``wasted_push_bytes`` prices the misses in bus bytes: every failed stash
carried a full cacheline that was thrown away.  Multi-push bursts add a
second waste channel: a rolled-back claim whose push had already *landed*
must be invalidated with a real coherence traversal, so
``rollback_invalidation_bytes`` charges one extra cacheline per
invalidation on top of the failed-stash bytes (rolled-back misses are
already inside ``spec_failures``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.units import CACHELINE_BYTES
from repro.eval.metrics import RunMetrics
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpeculationAccuracy:
    """Push precision/recall and waste for one workload × setting run."""

    workload: str
    setting: str
    spec_pushes: int
    spec_hits: int
    messages_delivered: int
    wasted_push_bytes: int
    #: Multi-push burst counters; all zero on single-push runs.
    spec_rollbacks: int = 0
    rollback_invalidations: int = 0

    @property
    def precision(self) -> float:
        return self.spec_hits / self.spec_pushes if self.spec_pushes else 0.0

    @property
    def recall(self) -> float:
        if not self.messages_delivered:
            return 0.0
        return min(1.0, self.spec_hits / self.messages_delivered)

    @property
    def rollback_invalidation_bytes(self) -> int:
        """Extra bus bytes spent invalidating landed-then-rolled-back lines."""
        return self.rollback_invalidations * CACHELINE_BYTES

    def as_dict(self) -> Dict:
        out = {
            "workload": self.workload,
            "setting": self.setting,
            "spec_pushes": self.spec_pushes,
            "spec_hits": self.spec_hits,
            "messages_delivered": self.messages_delivered,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "wasted_push_bytes": self.wasted_push_bytes,
        }
        # Burst keys appear only when bursts actually rolled back, so
        # single-push reports (and their goldens) stay byte-identical.
        if self.spec_rollbacks or self.rollback_invalidations:
            out["spec_rollbacks"] = self.spec_rollbacks
            out["rollback_invalidations"] = self.rollback_invalidations
            out["rollback_invalidation_bytes"] = self.rollback_invalidation_bytes
        return out


def accuracy_from_metrics(metrics: RunMetrics) -> SpeculationAccuracy:
    """Derive the accuracy report from a finished run's counters."""
    hits = metrics.spec_pushes - metrics.spec_failures
    rollbacks = int(metrics.extra.get("spec_rollbacks", 0))
    invalidations = int(metrics.extra.get("rollback_invalidations", 0))
    return SpeculationAccuracy(
        workload=metrics.workload,
        setting=metrics.setting,
        spec_pushes=metrics.spec_pushes,
        spec_hits=hits,
        messages_delivered=metrics.messages_delivered,
        wasted_push_bytes=(metrics.spec_failures + invalidations)
        * CACHELINE_BYTES,
        spec_rollbacks=rollbacks,
        rollback_invalidations=invalidations,
    )


def stage_latency_summary(
    registry: MetricsRegistry, percentiles: Optional[List[float]] = None
) -> Dict[str, Dict[str, float]]:
    """Percentile table of every ``txn.stage.*`` histogram in *registry*.

    Keys are the lifecycle edge labels (``pushed->mapped``, …); values map
    ``count``/``mean``/``p<q>`` to cycles.  Deterministic: edges sorted,
    values derived from sim-time buckets only.
    """
    percentiles = percentiles or [50.0, 90.0, 99.0]
    summary: Dict[str, Dict[str, float]] = {}
    for name in registry.histogram_names():
        if not name.startswith("txn.stage."):
            continue
        hist = registry.histogram(name)
        edge = name[len("txn.stage."):]
        row: Dict[str, float] = {
            "count": float(hist.count),
            "mean": round(hist.mean, 6),
        }
        for q in percentiles:
            row[f"p{q:g}"] = hist.percentile(q)
        summary[edge] = row
    return summary
