"""Chrome/Perfetto ``trace_event`` export from the instrumentation bus.

:class:`PerfettoTraceSink` subscribes to the :class:`~repro.sim.hooks.HookBus`
and streams every instrumentation event into the Trace Event JSON format
(the ``{"traceEvents": [...]}`` document ``ui.perfetto.dev`` and
``chrome://tracing`` load directly).  Track model:

* **pid 1 — transactions**: one thread per SQI.  Every lifecycle edge of a
  :class:`~repro.sim.transaction.TransactionRecord` becomes a complete
  (``ph: "X"``) slice named after the edge (``pushed->mapped``, …) whose
  duration is the stage latency.  Flow events (``s``/``t``/``f``) with
  ``id = transaction id`` tie the semantic send (PushHook), every stash
  attempt (STASHED stamp) and the delivery (DeliveryHook) of one message
  into a single arrow chain — the request→push→delivery journey.
* **pid 2 — network**: a counter track of cumulative busy cycles plus an
  instant per accepted packet, one thread per packet class.
* **pid 3 — specBuf**: one thread per entry index; instants for hit/miss
  responses and per-algorithm delay decisions.
* **pid 4 — cachelines**: one thread per endpoint; instants for
  fill/vacate/failed-fill transitions.
* **pid 5 — interconnect**: one thread per directed NoC link
  (:mod:`repro.net`); a busy-cycles counter plus an instant per link
  traversal.  Hop-routed topologies only — single-bus runs publish no
  :class:`~repro.sim.hooks.LinkHook`, so their documents are unchanged.
* **pid 6 — requests**: one thread per open-system session; an instant
  per lifecycle state plus a flow chain (``s`` at arrival, ``t`` at
  first-pop, ``f`` at completion) with ``id = 1_000_000 + request id`` —
  offset past any realistic transaction id so the per-request arrows
  never collide with the per-message arrows.  Open-system runs only:
  closed-batch runs publish no :class:`~repro.sim.hooks.RequestHook`.

Timestamps are **simulation ticks** (exported as microseconds, the
format's native unit) — never wall-clock — so two identical runs export
byte-identical documents regardless of ``--jobs``, machine, or load.

:class:`JsonlTraceSink` is the compact fallback: one JSON object per bus
event, newline-delimited, for ad-hoc ``jq``/pandas processing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.sim.hooks import (
    BusHook,
    DeliveryHook,
    HookBus,
    LineHook,
    LinkHook,
    PushHook,
    RequestHook,
    SpecBufHook,
    SpecDecisionHook,
    TraceHook,
    TransactionHook,
)
from repro.sim.transaction import TxnState

#: Process ids of the fixed tracks (metadata names emitted on first use).
PID_TRANSACTIONS = 1
PID_NETWORK = 2
PID_SPECBUF = 3
PID_LINES = 4
PID_NET = 5
PID_REQUESTS = 6

#: Flow-id offset for request arrows, keeping them disjoint from the
#: per-message arrows keyed by transaction id.
REQUEST_FLOW_BASE = 1_000_000

_PROCESS_NAMES = {
    PID_TRANSACTIONS: "transactions",
    PID_NETWORK: "network",
    PID_SPECBUF: "specbuf",
    PID_LINES: "cachelines",
    PID_NET: "interconnect",
    PID_REQUESTS: "requests",
}


class PerfettoTraceSink:
    """Stream HookBus events into Chrome trace_event JSON."""

    def __init__(
        self, bus: HookBus, pid_base: int = 0, label: str = ""
    ) -> None:
        #: ``pid_base`` offsets every pid, letting a multi-run document
        #: give each simulation its own process group (see obs.runner);
        #: ``label`` suffixes the process names so the cells stay tellable
        #: apart in the Perfetto UI.
        self.pid_base = pid_base
        self.label = label
        self.events: List[dict] = []
        self._named_processes: set = set()
        self._named_threads: Dict[Tuple[int, int], str] = {}
        self._subs = [
            bus.subscribe(TransactionHook, self._on_transaction),
            bus.subscribe(PushHook, self._on_push),
            bus.subscribe(DeliveryHook, self._on_delivery),
            bus.subscribe(SpecBufHook, self._on_specbuf),
            bus.subscribe(SpecDecisionHook, self._on_decision),
            bus.subscribe(BusHook, self._on_bus),
            bus.subscribe(LineHook, self._on_line),
            bus.subscribe(LinkHook, self._on_link),
            bus.subscribe(RequestHook, self._on_request),
        ]
        self._bus = bus
        #: Dense per-link thread ids, assigned in first-traversal order
        #: (the event stream is deterministic, so the mapping is too).
        self._link_tids: Dict[str, int] = {}
        #: Dense per-session thread ids, assigned in first-event order.
        self._session_tids: Dict[str, int] = {}

    def detach(self) -> None:
        for sub in self._subs:
            self._bus.unsubscribe(sub)
        self._subs = []

    # ----------------------------------------------------------- track naming
    def _track(self, pid: int, tid: int, thread_name: str) -> Tuple[int, int]:
        """Emit process/thread metadata the first time a track appears."""
        pid += self.pid_base
        if pid not in self._named_processes:
            self._named_processes.add(pid)
            name = _PROCESS_NAMES[pid - self.pid_base]
            if self.label:
                name = f"{name} [{self.label}]"
            self.events.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": name},
                }
            )
        if thread_name and (pid, tid) not in self._named_threads:
            self._named_threads[(pid, tid)] = thread_name
            self.events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        return pid, tid

    # --------------------------------------------------------------- handlers
    def _on_transaction(self, event: TransactionHook) -> None:
        record = event.record
        if record is None or len(record.stamps) < 2:
            return
        prev, last = record.stamps[-2], record.stamps[-1]
        pid, tid = self._track(
            PID_TRANSACTIONS, record.sqi, f"sqi {record.sqi}"
        )
        self.events.append(
            {
                "ph": "X",
                "name": f"{prev.state.value}->{last.state.value}",
                "cat": record.kind,
                "ts": prev.tick,
                "dur": last.tick - prev.tick,
                "pid": pid,
                "tid": tid,
                "args": {"tid": record.tid, "detail": last.detail},
            }
        )
        if last.state is TxnState.STASHED and record.kind == "message":
            # Flow step: this stash attempt is one hop of the message's
            # send→delivery arrow chain.
            self.events.append(
                {
                    "ph": "t", "name": "message", "cat": "flow",
                    "id": record.tid, "ts": last.tick, "pid": pid, "tid": tid,
                }
            )

    def _on_push(self, event: PushHook) -> None:
        pid, tid = self._track(PID_TRANSACTIONS, event.sqi, f"sqi {event.sqi}")
        self.events.append(
            {
                "ph": "s", "name": "message", "cat": "flow",
                "id": event.transaction_id, "ts": event.tick,
                "pid": pid, "tid": tid,
                "args": {"producer": event.producer_id, "seq": event.seq},
            }
        )

    def _on_delivery(self, event: DeliveryHook) -> None:
        pid, tid = self._track(PID_TRANSACTIONS, event.sqi, f"sqi {event.sqi}")
        self.events.append(
            {
                "ph": "f", "bp": "e", "name": "message", "cat": "flow",
                "id": event.transaction_id, "ts": event.tick,
                "pid": pid, "tid": tid,
                "args": {
                    "endpoint": event.endpoint_id,
                    "producer": event.producer_id,
                    "seq": event.seq,
                },
            }
        )

    def _on_specbuf(self, event: SpecBufHook) -> None:
        pid, tid = self._track(
            PID_SPECBUF, event.entry_index, f"entry {event.entry_index}"
        )
        self.events.append(
            {
                "ph": "i", "s": "t",
                "name": "hit" if event.hit else "miss",
                "cat": "specbuf", "ts": event.tick, "pid": pid, "tid": tid,
                "args": {"sqi": event.sqi},
            }
        )

    def _on_decision(self, event: SpecDecisionHook) -> None:
        pid, tid = self._track(
            PID_SPECBUF, event.entry_index, f"entry {event.entry_index}"
        )
        self.events.append(
            {
                "ph": "i", "s": "t",
                "name": f"decision:{event.algorithm}",
                "cat": "specbuf", "ts": event.tick, "pid": pid, "tid": tid,
                "args": {
                    "delay": event.delay,
                    "retry": event.retry,
                    "sqi": event.sqi,
                },
            }
        )

    def _on_bus(self, event: BusHook) -> None:
        pid, _ = self._track(PID_NETWORK, 0, "")
        self.events.append(
            {
                "ph": "C", "name": "busy_cycles", "ts": event.tick,
                "pid": pid, "tid": 0, "args": {"busy": event.busy_cycles},
            }
        )
        self.events.append(
            {
                "ph": "i", "s": "p", "name": event.kind, "cat": "network",
                "ts": event.tick, "pid": pid, "tid": 0,
            }
        )

    def _on_link(self, event: LinkHook) -> None:
        tid = self._link_tids.setdefault(event.link, len(self._link_tids))
        pid, tid = self._track(PID_NET, tid, event.link)
        self.events.append(
            {
                "ph": "C", "name": f"{event.link}.busy", "ts": event.tick,
                "pid": pid, "tid": tid, "args": {"busy": event.busy_cycles},
            }
        )
        self.events.append(
            {
                "ph": "i", "s": "t", "name": event.kind, "cat": "net",
                "ts": event.tick, "pid": pid, "tid": tid,
                "args": {"src": event.src, "dst": event.dst,
                         "wait": event.wait_cycles},
            }
        )

    def _on_line(self, event: LineHook) -> None:
        pid, tid = self._track(
            PID_LINES, event.endpoint_id, f"endpoint {event.endpoint_id}"
        )
        entry = {
            "ph": "i", "s": "t", "name": event.transition, "cat": "cacheline",
            "ts": event.tick, "pid": pid, "tid": tid,
            "args": {"index": event.index},
        }
        if event.transaction_id is not None:
            entry["args"]["tid"] = event.transaction_id
        self.events.append(entry)

    def _on_request(self, event: RequestHook) -> None:
        tid = self._session_tids.setdefault(
            event.session, len(self._session_tids)
        )
        pid, tid = self._track(PID_REQUESTS, tid, event.session)
        args = {"rid": event.rid, "seq": event.seq}
        if event.sojourn is not None:
            args["sojourn"] = event.sojourn
        self.events.append(
            {
                "ph": "i", "s": "t", "name": event.state, "cat": "request",
                "ts": event.tick, "pid": pid, "tid": tid, "args": args,
            }
        )
        # Per-request flow arrows: arrival starts the chain, first-pop is
        # the mid-hop, completion terminates it.
        flow_ph = {"arrived": "s", "first-pop": "t", "completed": "f"}.get(
            event.state
        )
        if flow_ph is None:
            return
        flow = {
            "ph": flow_ph, "name": "request", "cat": "reqflow",
            "id": REQUEST_FLOW_BASE + event.rid, "ts": event.tick,
            "pid": pid, "tid": tid,
        }
        if flow_ph == "f":
            flow["bp"] = "e"
        self.events.append(flow)

    # ----------------------------------------------------------------- export
    def document(self) -> dict:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic serialization: event order is stream order (itself
        deterministic), keys inside each event are sorted."""
        return json.dumps(
            self.document(), sort_keys=True, indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )


class JsonlTraceSink:
    """Compact newline-delimited JSON fallback: one object per bus event."""

    def __init__(self, bus: HookBus) -> None:
        self.lines: List[str] = []
        self._subs = [
            bus.subscribe(TransactionHook, self._on_transaction),
            bus.subscribe(TraceHook, self._on_trace),
            bus.subscribe(PushHook, self._on_simple("push")),
            bus.subscribe(DeliveryHook, self._on_simple("delivery")),
            bus.subscribe(SpecBufHook, self._on_specbuf),
            bus.subscribe(SpecDecisionHook, self._on_decision),
            bus.subscribe(BusHook, self._on_bus),
            bus.subscribe(LineHook, self._on_line),
            bus.subscribe(LinkHook, self._on_link),
            bus.subscribe(RequestHook, self._on_request),
        ]
        self._bus = bus

    def detach(self) -> None:
        for sub in self._subs:
            self._bus.unsubscribe(sub)
        self._subs = []

    def _emit(self, obj: dict) -> None:
        self.lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))

    def _on_transaction(self, event: TransactionHook) -> None:
        record = event.record
        self._emit(
            {
                "ev": "txn", "t": event.tick, "state": event.state.value,
                "sqi": event.sqi, "tid": record.tid if record else None,
                "kind": record.kind if record else None,
                "detail": event.detail,
            }
        )

    def _on_trace(self, event: TraceHook) -> None:
        self._emit(
            {
                "ev": "trace", "t": event.tick, "kind": event.kind.value,
                "tid": event.transaction_id, "sqi": event.sqi,
                "detail": event.detail,
            }
        )

    def _on_simple(self, label: str):
        def handler(event) -> None:
            self._emit(
                {
                    "ev": label, "t": event.tick, "sqi": event.sqi,
                    "producer": event.producer_id, "seq": event.seq,
                    "tid": event.transaction_id,
                }
            )

        return handler

    def _on_specbuf(self, event: SpecBufHook) -> None:
        self._emit(
            {
                "ev": "specbuf", "t": event.tick, "sqi": event.sqi,
                "entry": event.entry_index, "hit": event.hit,
            }
        )

    def _on_decision(self, event: SpecDecisionHook) -> None:
        self._emit(
            {
                "ev": "decision", "t": event.tick, "sqi": event.sqi,
                "entry": event.entry_index, "algo": event.algorithm,
                "delay": event.delay, "retry": event.retry,
            }
        )

    def _on_bus(self, event: BusHook) -> None:
        self._emit(
            {
                "ev": "bus", "t": event.tick, "kind": event.kind,
                "busy": event.busy_cycles,
            }
        )

    def _on_line(self, event: LineHook) -> None:
        self._emit(
            {
                "ev": "line", "t": event.tick, "endpoint": event.endpoint_id,
                "index": event.index, "transition": event.transition,
                "tid": event.transaction_id,
            }
        )

    def _on_link(self, event: LinkHook) -> None:
        self._emit(
            {
                "ev": "link", "t": event.tick, "link": event.link,
                "kind": event.kind, "src": event.src, "dst": event.dst,
                "busy": event.busy_cycles, "wait": event.wait_cycles,
            }
        )

    def _on_request(self, event: RequestHook) -> None:
        self._emit(
            {
                "ev": "request", "t": event.tick, "rid": event.rid,
                "session": event.session, "seq": event.seq,
                "state": event.state, "sojourn": event.sojourn,
            }
        )

    def to_jsonl(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")
