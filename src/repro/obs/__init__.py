"""Observability: metrics registry, Perfetto trace export, accuracy reports.

The package is strictly *observe-only*: every component here is a
:class:`~repro.sim.hooks.HookBus` subscriber or a post-run reader, records
simulation ticks (never wall-clock), and schedules no events — attaching
the full stack cannot change a run's results, and leaving it off costs the
hot paths nothing (the publishers' ``wants()`` guards stay False).

Entry points:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, windowed
  histograms, sim-time timers; :data:`~repro.obs.metrics.NULL_METRICS`
  no-op stub when disabled.
* :class:`~repro.obs.collector.MetricsCollector` — folds every bus event
  into a registry (metric catalogue in docs/OBSERVABILITY.md).
* :class:`~repro.obs.perfetto.PerfettoTraceSink` /
  :class:`~repro.obs.perfetto.JsonlTraceSink` — Chrome/Perfetto
  ``trace_event`` JSON and compact JSONL.
* :func:`~repro.obs.runner.run_obs` — the ``repro obs`` engine: fully
  observed cells, ``--jobs`` fan-out, byte-stable merged documents.
"""

from repro.obs.accuracy import (
    SpeculationAccuracy,
    accuracy_from_metrics,
    stage_latency_summary,
)
from repro.obs.collector import MetricsCollector, attach_collector, finalize_system
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    SimTimer,
    WindowedHistogram,
)
from repro.obs.perfetto import JsonlTraceSink, PerfettoTraceSink
from repro.obs.runner import ObsRequest, ObsResult, collect_cell, run_obs, smoke_requests

__all__ = [
    "NULL_METRICS",
    "JsonlTraceSink",
    "MetricsCollector",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "ObsRequest",
    "ObsResult",
    "PerfettoTraceSink",
    "SimTimer",
    "SpeculationAccuracy",
    "WindowedHistogram",
    "accuracy_from_metrics",
    "attach_collector",
    "collect_cell",
    "finalize_system",
    "run_obs",
    "smoke_requests",
    "stage_latency_summary",
]
