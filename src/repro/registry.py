"""Component registry: name → routing device / delay algorithm.

Every layer that used to keep its own name→constructor map — ``System``,
:mod:`repro.eval.runner`, :mod:`repro.eval.batch`, the CLI — resolves
through this one registry instead, so a new backend plugs in with a single
decorated class and **zero core edits**::

    from repro.registry import register_device
    from repro.vlink.vlrd import VirtualLinkRoutingDevice

    @register_device("ideal", description="zero-latency mapping pipeline")
    class IdealRoutingDevice(VirtualLinkRoutingDevice):
        kind = "IDEAL"
        def _stage_latency(self) -> int:
            return 0

    System(device="ideal")                  # just works
    python -m repro run FIR --setting ...   # CLI picks it up too

Algorithms register the same way via :func:`register_algorithm`; the
shipped devices (``vl``, ``spamer``) and algorithms (``0delay``, ``adapt``,
``tuned``, …) self-register on import, pulled in lazily by
:func:`_ensure_builtins` so importing this module stays cheap and cycle
free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError

_BUILTIN_MODULES = (
    "repro.vlink.vlrd",
    "repro.spamer.srd",
    "repro.spamer.delay",
    "repro.spamer.learned",
    "repro.spamer.multipush",
)

_builtins_loaded = False

#: Monotonic registration-change counter.  Bumped by every (un)registration
#: of a device or algorithm; derived caches (e.g. the runner's settings
#: list) key on it to invalidate exactly when the registry changes.
_generation = 0


def registry_generation() -> int:
    """The current registration-change counter (cache-invalidation key)."""
    _ensure_builtins()
    return _generation


def _bump_generation() -> None:
    global _generation
    _generation += 1


def _ensure_builtins() -> None:
    """Import the shipped components so their decorators have run."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


# ------------------------------------------------------------------- devices
@dataclass(frozen=True)
class DeviceSpec:
    """How to construct one registered routing-device flavor."""

    name: str
    factory: Callable[..., Any]
    #: Device takes a delay-prediction algorithm (positional, after the
    #: network) — the SPAMeR shape.  Devices without it reject one.
    accepts_algorithm: bool = False
    #: Algorithm name used when the caller names the device but no algorithm.
    default_algorithm: Optional[str] = None
    #: Device takes a ``security=`` policy keyword (Section 3.6 controls).
    accepts_security: bool = False
    description: str = ""

    def build(
        self,
        env,
        config,
        network,
        *,
        algorithm=None,
        trace=None,
        hooks=None,
        security=None,
    ):
        """Instantiate the device with the protocol it was registered for."""
        if self.accepts_algorithm:
            if algorithm is None:
                raise ConfigError(
                    f"device {self.name!r} needs a delay algorithm"
                )
            kwargs: Dict[str, Any] = {"trace": trace, "hooks": hooks}
            if self.accepts_security:
                kwargs["security"] = security
            return self.factory(env, config, network, algorithm, **kwargs)
        if algorithm is not None:
            raise ConfigError(
                f"a delay algorithm only applies to devices that speculate; "
                f"device {self.name!r} does not take one"
            )
        return self.factory(env, config, network, trace=trace, hooks=hooks)


_DEVICES: Dict[str, DeviceSpec] = {}


def register_device(
    name: str,
    *,
    accepts_algorithm: bool = False,
    default_algorithm: Optional[str] = None,
    accepts_security: bool = False,
    description: str = "",
) -> Callable:
    """Class decorator: make a routing device constructible by *name*.

    The decorated class must accept ``(env, config, network, trace=, hooks=)``
    — plus a positional ``algorithm`` after the network when registered with
    ``accepts_algorithm=True``, and a ``security=`` keyword with
    ``accepts_security=True``.
    """

    def decorator(cls):
        if name in _DEVICES:
            raise ConfigError(f"device {name!r} is already registered")
        _DEVICES[name] = DeviceSpec(
            name=name,
            factory=cls,
            accepts_algorithm=accepts_algorithm,
            default_algorithm=default_algorithm,
            accepts_security=accepts_security,
            description=description or (cls.__doc__ or "").strip().split("\n")[0],
        )
        cls.registry_name = name
        _bump_generation()
        return cls

    return decorator


def resolve_device(name: str) -> DeviceSpec:
    """Look a device up by name; unknown names list what is available."""
    _ensure_builtins()
    if name not in _DEVICES:
        raise ConfigError(
            f"unknown device {name!r}; registered devices: {device_names()}"
        )
    return _DEVICES[name]


def device_names() -> List[str]:
    """Registered device names, sorted."""
    _ensure_builtins()
    return sorted(_DEVICES)


def unregister_device(name: str) -> None:
    """Remove a registration (test isolation helper)."""
    if _DEVICES.pop(name, None) is not None:
        _bump_generation()


# ---------------------------------------------------------------- algorithms
@dataclass(frozen=True)
class AlgorithmSpec:
    """How to construct one registered delay-prediction algorithm."""

    name: str
    factory: Callable[..., Any]
    #: Needs constructor arguments (e.g. ``fixed`` needs its delay), so it
    #: cannot be offered as a zero-configuration CLI/batch setting.
    requires_params: bool = False
    #: Offer this algorithm in the zero-configuration setting lists.  Off
    #: for ablation controls like ``never`` that only make sense embedded
    #: in a purpose-built experiment (a speculating device that never
    #: pushes deadlocks fetch-skipping consumers on real workloads).
    offer_as_setting: bool = True
    description: str = ""


_ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    requires_params: bool = False,
    offer_as_setting: bool = True,
    description: str = "",
) -> Callable:
    """Class/factory decorator: make a delay algorithm buildable by *name*."""

    def decorator(factory):
        if name in _ALGORITHMS:
            raise ConfigError(f"algorithm {name!r} is already registered")
        _ALGORITHMS[name] = AlgorithmSpec(
            name=name,
            factory=factory,
            requires_params=requires_params,
            offer_as_setting=offer_as_setting,
            description=description
            or (factory.__doc__ or "").strip().split("\n")[0],
        )
        _bump_generation()
        return factory

    return decorator


def resolve_algorithm(name: str, **kwargs):
    """Instantiate a delay algorithm by name (kwargs go to its constructor)."""
    _ensure_builtins()
    if name not in _ALGORITHMS:
        raise ConfigError(
            f"unknown delay algorithm {name!r}; registered algorithms: "
            f"{algorithm_names()}"
        )
    return _ALGORITHMS[name].factory(**kwargs)


def algorithm_names(include_parameterized: bool = True) -> List[str]:
    """Registered algorithm names, sorted.

    ``include_parameterized=False`` drops algorithms that cannot be built
    without arguments and ablation-only controls registered with
    ``offer_as_setting=False`` (the CLI/batch setting lists use this).
    """
    _ensure_builtins()
    return sorted(
        name
        for name, spec in _ALGORITHMS.items()
        if include_parameterized
        or (not spec.requires_params and spec.offer_as_setting)
    )


def unregister_algorithm(name: str) -> None:
    """Remove a registration (test isolation helper)."""
    if _ALGORITHMS.pop(name, None) is not None:
        _bump_generation()
