"""A Michael–Scott-style software queue over the coherent memory substrate.

This is the Figure 1a motivation baseline: a classic shared-memory bounded
queue whose head/tail indices and slot flags live in coherent cachelines.
Every operation bounces lines between producer and consumer caches through
MOESI upgrades and invalidations — the coherence-traffic scaling problem
hardware queues remove.

The implementation is a bounded MPMC ring (the Michael–Scott linked queue's
allocation behaviour is awkward without a heap model; a ring with per-slot
sequence numbers — Vyukov-style — preserves the same lock-free CAS pattern
and coherence behaviour, and is what high-performance software actually
deploys).  All state lives in the simulated memory; loads, stores and CAS
operations are issued through :class:`CoherentMemorySystem`, so the model
executes the real algorithm, not an abstraction of it.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ConfigError
from repro.mem.coherence import CoherentMemorySystem
from repro.units import CACHELINE_BYTES


class SoftwareQueue:
    """Bounded lock-free MPMC ring on the coherent substrate.

    Layout (all offsets line-aligned to make the coherence behaviour
    faithful: head and tail on separate lines, one slot per line):

    * ``base + 0``              — head index (consumer-side, hot line)
    * ``base + 64``             — tail index (producer-side, hot line)
    * ``base + 128 + i*64``     — slot *i*: sequence word; the payload is
      tracked at ``addr + 8``.
    """

    def __init__(
        self,
        memory: CoherentMemorySystem,
        base_addr: int,
        capacity: int,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"queue capacity must be >= 1, got {capacity}")
        if base_addr % CACHELINE_BYTES != 0:
            raise ConfigError(f"queue base {base_addr:#x} not line-aligned")
        self.memory = memory
        self.capacity = capacity
        self.head_addr = base_addr
        self.tail_addr = base_addr + CACHELINE_BYTES
        self.slots_base = base_addr + 2 * CACHELINE_BYTES
        # Initialise slot sequence numbers: slot i expects ticket i.
        for i in range(capacity):
            memory.poke_value(self._seq_addr(i), i)
        self.enqueues = 0
        self.dequeues = 0

    def _seq_addr(self, index: int) -> int:
        return self.slots_base + index * CACHELINE_BYTES

    def _payload_addr(self, index: int) -> int:
        return self._seq_addr(index) + 8

    @property
    def footprint_bytes(self) -> int:
        """Bytes of coherent memory the queue occupies."""
        return (2 + self.capacity) * CACHELINE_BYTES

    # ------------------------------------------------------------------ enqueue
    def enqueue(self, core: int, value: int) -> Generator:
        """Lock-free enqueue (``yield from``); spins while the ring is full."""
        mem = self.memory
        while True:
            ticket = yield from mem.load(core, self.tail_addr)
            slot = ticket % self.capacity
            seq = yield from mem.load(core, self._seq_addr(slot))
            if seq == ticket:
                # Slot free for this ticket: claim the tail via CAS.
                won = yield from mem.cas(core, self.tail_addr, ticket, ticket + 1)
                if won:
                    yield from mem.store(core, self._payload_addr(slot), value)
                    # Publish: consumers wait for seq == ticket + 1.
                    yield from mem.store(core, self._seq_addr(slot), ticket + 1)
                    self.enqueues += 1
                    return True
            elif seq < ticket:
                # Ring full: the consumer has not recycled this slot yet.
                yield self.memory.env.timeout(16)
            # Otherwise another producer advanced the tail; retry.

    # ------------------------------------------------------------------ dequeue
    def dequeue(self, core: int) -> Generator:
        """Lock-free dequeue (``yield from``); spins while the ring is empty."""
        mem = self.memory
        while True:
            ticket = yield from mem.load(core, self.head_addr)
            slot = ticket % self.capacity
            seq = yield from mem.load(core, self._seq_addr(slot))
            if seq == ticket + 1:
                won = yield from mem.cas(core, self.head_addr, ticket, ticket + 1)
                if won:
                    value = yield from mem.load(core, self._payload_addr(slot))
                    # Recycle the slot for the producer of lap + 1.
                    yield from mem.store(
                        core, self._seq_addr(slot), ticket + self.capacity
                    )
                    self.dequeues += 1
                    return value
            elif seq <= ticket:
                # Empty: wait for a producer to publish.
                yield self.memory.env.timeout(16)

    def try_dequeue(self, core: int) -> Generator:
        """Single-attempt dequeue; returns None when the queue looks empty."""
        mem = self.memory
        ticket = yield from mem.load(core, self.head_addr)
        slot = ticket % self.capacity
        seq = yield from mem.load(core, self._seq_addr(slot))
        if seq == ticket + 1:
            won = yield from mem.cas(core, self.head_addr, ticket, ticket + 1)
            if won:
                value = yield from mem.load(core, self._payload_addr(slot))
                yield from mem.store(core, self._seq_addr(slot), ticket + self.capacity)
                self.dequeues += 1
                return value
        return None
