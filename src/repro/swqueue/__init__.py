"""Software message-queue baseline over the MOESI substrate (Figure 1a)."""

from repro.swqueue.coherent import (
    LatencyResult,
    motivation_experiment,
    run_hardware_pingpong,
    run_software_pingpong,
)
from repro.swqueue.msqueue import SoftwareQueue

__all__ = [
    "LatencyResult",
    "SoftwareQueue",
    "motivation_experiment",
    "run_hardware_pingpong",
    "run_software_pingpong",
]
