"""Figure 1 motivation experiment: software queue vs Virtual-Link vs SPAMeR.

Runs the same ping-pong exchange over (a) the coherence-based software
queue (Figure 1a), (b) the Virtual-Link hardware queue (Figure 1b) and
(c) SPAMeR (Figure 1c), and reports the cross-core message latency each
mechanism achieves — the ``Lc > Lv > Ls`` ordering the paper's Figure 1
illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.mem.coherence import CoherentMemorySystem
from repro.sim.kernel import Environment
from repro.swqueue.msqueue import SoftwareQueue
from repro.system import System


@dataclass(frozen=True)
class LatencyResult:
    """Round-trip derived per-message latency for one mechanism."""

    mechanism: str
    messages: int
    total_cycles: int
    coherence_packets: int

    @property
    def cycles_per_message(self) -> float:
        return self.total_cycles / self.messages if self.messages else 0.0


def run_software_pingpong(
    messages: int = 500,
    config: Optional[SystemConfig] = None,
    capacity: int = 8,
) -> LatencyResult:
    """Ping-pong over two software queues on the MOESI substrate."""
    cfg = config or DEFAULT_CONFIG
    env = Environment()
    memory = CoherentMemorySystem(env, cfg)
    q_ab = SoftwareQueue(memory, base_addr=0x10000, capacity=capacity)
    q_ba = SoftwareQueue(memory, base_addr=0x20000, capacity=capacity)

    def side_a():
        for i in range(messages):
            yield from q_ab.enqueue(0, i)
            value = yield from q_ba.dequeue(0)
            assert value == i, f"software queue corrupted: {value} != {i}"

    def side_b():
        for _ in range(messages):
            value = yield from q_ab.dequeue(1)
            yield from q_ba.enqueue(1, value)

    pa = env.process(side_a(), name="sw-a")
    pb = env.process(side_b(), name="sw-b")
    env.run_until_complete(env.all_of([pa, pb]))
    memory.check_coherence_invariant()
    return LatencyResult(
        mechanism="software (MOESI)",
        messages=2 * messages,
        total_cycles=env.now,
        coherence_packets=memory.network.total_packets,
    )


def run_hardware_pingpong(
    messages: int = 500,
    device: str = "vl",
    config: Optional[SystemConfig] = None,
) -> LatencyResult:
    """The same ping-pong over the hardware queue (VL or SPAMeR)."""
    system = System(config=config, device=device,
                    algorithm="0delay" if device == "spamer" else None)
    lib = system.library
    q_ab, q_ba = lib.create_queue(), lib.create_queue()
    prod_a = lib.open_producer(q_ab, 0)
    cons_b = lib.open_consumer(q_ab, 1)
    prod_b = lib.open_producer(q_ba, 1)
    cons_a = lib.open_consumer(q_ba, 0)

    def side_a(ctx):
        for i in range(messages):
            yield from ctx.push(prod_a, i)
            msg = yield from ctx.pop(cons_a)
            assert msg.payload == i

    def side_b(ctx):
        for _ in range(messages):
            msg = yield from ctx.pop(cons_b)
            yield from ctx.push(prod_b, msg.payload)

    system.spawn(0, side_a, "hw-a")
    system.spawn(1, side_b, "hw-b")
    system.run_to_completion()
    return LatencyResult(
        mechanism="Virtual-Link" if device == "vl" else "SPAMeR",
        messages=2 * messages,
        total_cycles=system.env.now,
        coherence_packets=system.network.total_packets,
    )


def motivation_experiment(
    messages: int = 500, config: Optional[SystemConfig] = None
) -> Dict[str, LatencyResult]:
    """Figure 1: per-message latency of the three mechanisms."""
    return {
        "software": run_software_pingpong(messages, config=config),
        "virtual-link": run_hardware_pingpong(messages, device="vl", config=config),
        "spamer": run_hardware_pingpong(messages, device="spamer", config=config),
    }
