"""Topology-aware interconnect models (see docs/MODEL.md, "Network model").

Public surface:

* :class:`~repro.net.topology.Topology` / :class:`~repro.net.topology.Link`
  — the abstraction: node placement, hop-by-hop routing, per-link
  contention and backpressure accounting.
* :func:`~repro.net.topology.register_topology` /
  :func:`~repro.net.topology.build_topology` /
  :func:`~repro.net.topology.topology_names` — the registry (same idiom
  as devices/algorithms in :mod:`repro.registry`).
* Shipped fabrics: ``single-bus`` (default; bit-identical to the
  pre-topology model), ``mesh`` (XY routing), ``ring`` (shortest arc),
  ``crossbar`` (per-endpoint ports).
"""

from repro.net.topology import (
    Link,
    Topology,
    build_topology,
    derive_mesh_dims,
    register_topology,
    resolve_topology,
    topology_names,
    unregister_topology,
)

__all__ = [
    "Link",
    "Topology",
    "build_topology",
    "derive_mesh_dims",
    "register_topology",
    "resolve_topology",
    "topology_names",
    "unregister_topology",
]
