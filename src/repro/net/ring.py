"""Bidirectional ring NoC.

One node per core, joined into a cycle by two directed links per adjacent
pair (clockwise ``ring.cw[i]``: i → i+1, counter-clockwise ``ring.ccw[i]``:
i → i−1, indices mod n).  Packets take the shorter arc; an exact tie goes
clockwise, keeping routing deterministic.  Mean distance grows linearly
with core count — the ring is the topology where NoC distance hurts
soonest, which makes it the stress case for speculative push at scale.
SRD shards sit at evenly-spaced nodes.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.topology import Link, Topology, register_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


@register_topology("ring", description="bidirectional ring, shortest-arc routing")
class RingTopology(Topology):
    """n-node cycle; shortest direction, clockwise on ties."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        super().__init__(env, config, hooks=hooks)
        self.n = config.num_cores
        self._cw: List[Link] = []
        self._ccw: List[Link] = []
        if self.n > 1:
            for i in range(self.n):
                self._cw.append(self._add_link(f"ring.cw[{i}]"))
            for i in range(self.n):
                self._ccw.append(self._add_link(f"ring.ccw[{i}]"))

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        return self.n

    def core_node(self, core_id: int) -> int:
        return core_id

    def srd_node(self, srd_index: int) -> int:
        srds = max(1, self.config.effective_srds)
        return (srd_index * self.n) // srds

    # ----------------------------------------------------------------- routing
    def _compute_route(self, src: int, dst: int) -> List[Link]:
        if src == dst or self.n < 2:
            return []
        forward = (dst - src) % self.n
        backward = (src - dst) % self.n
        links: List[Link] = []
        if forward <= backward:  # ties go clockwise
            node = src
            for _ in range(forward):
                links.append(self._cw[node])
                node = (node + 1) % self.n
        else:
            node = src
            for _ in range(backward):
                links.append(self._ccw[node])
                node = (node - 1) % self.n
        return links

    def hops(self, src: int, dst: int) -> int:
        if src == dst or self.n < 2:
            return 0
        forward = (dst - src) % self.n
        return min(forward, self.n - forward)
