"""The historical shared-bus model, expressed as a topology.

This is *exactly* the arithmetic :class:`~repro.mem.bus.CoherenceNetwork`
used before the topology layer existed: ``bus_channels`` parallel FIFO
servers, each packet picking the earliest-free channel, serializing for
``bus_occupancy`` cycles and propagating for ``bus_latency``.  Distance is
invisible — every (src, dst) pair costs the same — which is the Table 1
16-core configuration's model and the default, so golden metrics and trace
fixtures stay bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.topology import Topology, register_topology
from repro.sim.event import Event
from repro.sim.resources import FifoServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


@register_topology("single-bus", description="shared bus; distance-free (default)")
class SingleBusTopology(Topology):
    """One logical node: every agent hangs off the same shared medium."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        super().__init__(env, config, hooks=hooks)
        self.channels = [
            FifoServer(env, config.bus_occupancy, name=f"coherence-network[{i}]")
            for i in range(config.bus_channels)
        ]
        self.latency = config.bus_latency

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        return 1

    def core_node(self, core_id: int) -> int:
        return 0

    def srd_node(self, srd_index: int) -> int:
        return 0

    # ----------------------------------------------------------------- routing
    def _compute_route(self, src: int, dst: int) -> List:
        return []  # no per-link fabric; transit is overridden below

    def hops(self, src: int, dst: int) -> int:
        return 1

    def response_latency(self, src: int, dst: int) -> int:
        return self.latency

    # ------------------------------------------------------------------ transit
    def transit(self, kind: str, src: int, dst: int) -> Event:
        # Verbatim the pre-topology CoherenceNetwork body: earliest-free
        # channel, occupancy then propagation.  Event creation count and
        # order are part of the bit-identity contract.
        channel = min(self.channels, key=lambda s: max(s._free_at, self.env.now))
        return channel.serve(extra_delay=self.latency)

    # ------------------------------------------------------------------ metrics
    def links(self) -> List:
        # Channels are not spatial links; per-link reporting stays empty so
        # obs gauges/tracks only appear for real NoC topologies.
        return []

    @property
    def busy_cycles(self) -> int:
        return sum(channel.busy_cycles for channel in self.channels)

    @property
    def wait_cycles(self) -> int:
        return 0

    def utilization(self, elapsed: int = 0) -> float:
        window = elapsed or self.env.now
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (window * len(self.channels)))
