"""2-D mesh NoC with dimension-order (XY) routing.

Cores tile a ``rows × cols`` grid (node ``r * cols + c``); each pair of
adjacent routers is joined by two directed links (one per direction), so
east- and west-bound traffic never contend with each other.  Packets route
X-first (along the row to the destination column) then Y (along the
column), which is deadlock-free and deterministic.  SRD shards are placed
at evenly-spaced interior nodes so the mean core→SRD distance stays flat
as shard count grows.

Geometry comes from ``SystemConfig.mesh_dims`` or, when unset, the
most-square factorization of the core count (16 → 4×4, 32 → 4×8,
64 → 8×8; see :func:`repro.net.topology.derive_mesh_dims`).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.topology import Link, Topology, derive_mesh_dims, register_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


@register_topology("mesh", description="2-D mesh, XY dimension-order routing")
class MeshTopology(Topology):
    """rows × cols grid of routers, one core per node, XY routing."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        super().__init__(env, config, hooks=hooks)
        self.rows, self.cols = config.mesh_dims or derive_mesh_dims(config.num_cores)
        # Directed links keyed (src_node, dst_node), created in row-major
        # scan order so links() enumeration is deterministic.
        self._link_for = {}
        for r in range(self.rows):
            for c in range(self.cols):
                node = r * self.cols + c
                if c + 1 < self.cols:
                    east = node + 1
                    self._connect(node, east, f"mesh.e[{r},{c}]")
                    self._connect(east, node, f"mesh.w[{r},{c + 1}]")
                if r + 1 < self.rows:
                    south = node + self.cols
                    self._connect(node, south, f"mesh.s[{r},{c}]")
                    self._connect(south, node, f"mesh.n[{r + 1},{c}]")

    def _connect(self, src: int, dst: int, name: str) -> None:
        self._link_for[(src, dst)] = self._add_link(name)

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def core_node(self, core_id: int) -> int:
        return core_id

    def srd_node(self, srd_index: int) -> int:
        # Evenly spaced along the row-major scan, offset to interior
        # positions: shard s of k sits at the ((2s+1)/2k)-quantile node.
        srds = max(1, self.config.effective_srds)
        return ((2 * srd_index + 1) * self.num_nodes) // (2 * srds)

    # ----------------------------------------------------------------- routing
    def _compute_route(self, src: int, dst: int) -> List[Link]:
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        links: List[Link] = []
        node = src
        # X first: walk the row to the destination column...
        while sc != dc:
            step = 1 if dc > sc else -1
            nxt = node + step
            links.append(self._link_for[(node, nxt)])
            node, sc = nxt, sc + step
        # ...then Y: walk the column to the destination row.
        while sr != dr:
            step = 1 if dr > sr else -1
            nxt = node + step * self.cols
            links.append(self._link_for[(node, nxt)])
            node, sr = nxt, sr + step
        return links

    def hops(self, src: int, dst: int) -> int:
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        return abs(sr - dr) + abs(sc - dc)
