"""Interconnect topology abstraction: placement, routing, per-link contention.

The paper evaluates SPAMeR on 16 cores sharing one hierarchical coherence
network, which :mod:`repro.mem.bus` collapses into a FIFO server.  That
model has no notion of *distance*: a stash to the adjacent tile and a stash
across the die cost the same.  This module opens that axis.  A
:class:`Topology` places cores and routing devices (SRDs) on nodes, routes
each packet hop-by-hop through directed :class:`Link` s — every hop pays
serialization (``bus_occupancy``) on a *contended* per-link server plus
propagation (``link_latency``) — and reports per-link utilization and
backpressure.

Topologies are registry-driven like devices and algorithms
(:mod:`repro.registry`): a new fabric is one decorated class::

    from repro.net.topology import Topology, register_topology

    @register_topology("torus")
    class TorusTopology(Topology):
        ...

    SystemConfig(topology="torus")          # just works

``single-bus`` (:mod:`repro.net.singlebus`) reproduces the historical
bus arithmetic exactly and stays the default, so every golden metric and
trace fixture is bit-identical to the pre-topology model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConfigError
from repro.sim.event import Event
from repro.sim.resources import FifoServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment

_BUILTIN_MODULES = (
    "repro.net.singlebus",
    "repro.net.mesh",
    "repro.net.ring",
    "repro.net.crossbar",
    "repro.net.torus",
)

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the shipped topologies so their decorators have run."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


class Link:
    """One directed interconnect link: a contended server plus a wire.

    A packet *traverses* the link by serializing onto it (the shared
    :class:`~repro.sim.resources.FifoServer`, ``bus_occupancy`` cycles per
    packet, back-to-back packets queue) and then propagating for
    ``latency`` cycles.  ``wait_cycles`` accumulates the backpressure a
    traversal experienced before its serialization could start — the
    per-link congestion signal the scaling study reports.
    """

    __slots__ = ("env", "name", "server", "latency", "wait_cycles")

    def __init__(
        self, env: "Environment", name: str, occupancy: int, latency: int
    ) -> None:
        self.env = env
        self.name = name
        self.server = FifoServer(env, occupancy, name=name)
        self.latency = int(latency)
        self.wait_cycles = 0

    def traverse(self) -> Event:
        """Occupy the link for one packet; event fires at the far end."""
        wait = self.server._free_at - self.env.now
        if wait > 0:
            self.wait_cycles += wait
        return self.server.serve(extra_delay=self.latency)

    @property
    def busy_cycles(self) -> int:
        return self.server.busy_cycles

    @property
    def packets(self) -> int:
        return self.server.packets_served

    def utilization(self, elapsed: Optional[int] = None) -> float:
        return self.server.utilization(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} busy={self.busy_cycles} wait={self.wait_cycles}>"


class Topology:
    """Base class: node placement, hop-by-hop routing, link accounting.

    Subclasses define the node set and the route; the base class owns the
    store-and-forward traversal (each hop's serialization is reserved only
    when the packet *arrives* at that hop, so contention composes along
    the path) and the :class:`~repro.sim.hooks.LinkHook` instrumentation.
    """

    #: Registry name (set by :func:`register_topology`).
    name = "abstract"

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.hooks = hooks
        self._links: List[Link] = []
        self._route_cache: Dict[Tuple[int, int], Tuple[Link, ...]] = {}

    # -------------------------------------------------------------- link setup
    def _add_link(self, name: str) -> Link:
        link = Link(
            self.env, name, self.config.bus_occupancy, self.config.link_latency
        )
        self._links.append(link)
        return link

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        raise NotImplementedError

    def core_node(self, core_id: int) -> int:
        """The node a core's cache controller sits on."""
        raise NotImplementedError

    def srd_node(self, srd_index: int) -> int:
        """The node a routing-device shard sits on."""
        raise NotImplementedError

    # ----------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> Sequence[Link]:
        """The directed links a packet crosses from *src* to *dst*.

        Routes are static (deterministic oblivious routing), so they are
        memoized; subclasses implement :meth:`_compute_route`.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = tuple(self._compute_route(src, dst))
            self._route_cache[key] = cached
        return cached

    def _compute_route(self, src: int, dst: int) -> Sequence[Link]:
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def response_latency(self, src: int, dst: int) -> int:
        """Response-channel delay (latency only, no occupancy): responses
        ride dedicated wires but still cover the same distance."""
        return max(1, self.hops(src, dst)) * self.config.link_latency

    # ------------------------------------------------------------------ transit
    def transit(self, kind: str, src: int, dst: int) -> Event:
        """Move one packet from *src* to *dst*; event fires at delivery.

        Store-and-forward: the packet serializes onto link *i+1* only once
        it has fully arrived over link *i*, so a congested middle hop
        delays exactly the packets routed through it.
        """
        links = self.route(src, dst)
        if not links:
            # Same-node delivery: no fabric crossed, but the line still
            # serializes through the local port.
            return self.env.timeout(self.config.bus_occupancy)
        if len(links) == 1:
            return self._traverse(links[0], kind, src, dst)
        done = Event(self.env, name=f"net-delivery[{kind}]")

        def advance(index: int) -> None:
            hop = self._traverse(links[index], kind, src, dst)
            if index + 1 == len(links):
                hop.subscribe(lambda _ev: done.succeed())
            else:
                hop.subscribe(lambda _ev: advance(index + 1))

        advance(0)
        return done

    def _traverse(self, link: Link, kind: str, src: int, dst: int) -> Event:
        event = link.traverse()
        hooks = self.hooks
        if hooks is not None:
            from repro.sim.hooks import LinkHook

            if hooks.wants(LinkHook):
                hooks.publish(
                    LinkHook(
                        tick=self.env.now,
                        link=link.name,
                        kind=kind,
                        src=src,
                        dst=dst,
                        busy_cycles=link.busy_cycles,
                        wait_cycles=link.wait_cycles,
                    )
                )
        return event

    # ------------------------------------------------------------------ metrics
    def links(self) -> List[Link]:
        """Every directed link, in construction order (deterministic)."""
        return list(self._links)

    @property
    def busy_cycles(self) -> int:
        return sum(link.busy_cycles for link in self._links)

    @property
    def wait_cycles(self) -> int:
        """Total backpressure cycles packets spent queued at links."""
        return sum(link.wait_cycles for link in self._links)

    def utilization(self, elapsed: int = 0) -> float:
        """Mean busy fraction across all links over *elapsed* cycles."""
        window = elapsed or self.env.now
        if window <= 0 or not self._links:
            return 0.0
        return min(1.0, self.busy_cycles / (window * len(self._links)))

    def link_report(self, elapsed: int = 0) -> List[Dict]:
        """Per-link utilization/backpressure rows, construction order."""
        window = elapsed or self.env.now
        return [
            {
                "link": link.name,
                "packets": link.packets,
                "busy_cycles": link.busy_cycles,
                "wait_cycles": link.wait_cycles,
                "utilization": link.utilization(window) if window > 0 else 0.0,
            }
            for link in self._links
        ]


# -------------------------------------------------------------------- registry
_TOPOLOGIES: Dict[str, type] = {}


def register_topology(name: str, *, description: str = ""):
    """Class decorator: make a topology constructible by *name*."""

    def decorator(cls):
        if name in _TOPOLOGIES:
            raise ConfigError(f"topology {name!r} is already registered")
        cls.name = name
        cls.description = description or (cls.__doc__ or "").strip().split("\n")[0]
        _TOPOLOGIES[name] = cls
        return cls

    return decorator


def resolve_topology(name: str) -> type:
    """Look a topology up by name; unknown names list what is available."""
    _ensure_builtins()
    if name not in _TOPOLOGIES:
        raise ConfigError(
            f"unknown topology {name!r}; registered topologies: {topology_names()}"
        )
    return _TOPOLOGIES[name]


def topology_names() -> List[str]:
    """Registered topology names, sorted."""
    _ensure_builtins()
    return sorted(_TOPOLOGIES)


def unregister_topology(name: str) -> None:
    """Remove a registration (test isolation helper)."""
    _TOPOLOGIES.pop(name, None)


def build_topology(
    name: str,
    env: "Environment",
    config: "SystemConfig",
    hooks: Optional["HookBus"] = None,
) -> Topology:
    """Instantiate the named topology for one system."""
    return resolve_topology(name)(env, config, hooks=hooks)


def derive_mesh_dims(num_cores: int) -> Tuple[int, int]:
    """The default mesh geometry: the most-square factorization of the
    core count (rows ≤ cols).  16 → 4×4, 32 → 4×8, 64 → 8×8; a prime
    count degenerates to 1×n (effectively a line)."""
    n = max(1, num_cores)
    rows = int(n ** 0.5)
    while rows > 1 and n % rows:
        rows -= 1
    return rows, n // rows
