"""2-D torus NoC: a mesh plus wraparound links, dimension-order routing.

Same grid as :mod:`repro.net.mesh`, but each row and column closes into a
ring: the last router in a dimension links back to the first.  Routing is
still dimension-ordered (X then Y) but walks each dimension in whichever
direction is shorter around its ring, halving the worst-case hop count —
the diameter drops from ``(rows-1) + (cols-1)`` to
``rows//2 + cols//2``.  Ties (exactly half way around an even ring) break
toward the positive direction (east/south) so routes stay deterministic.

Wraparound links are only created when a dimension has more than two
routers — on a 2-wide dimension the "wrap" edge would duplicate the
existing neighbor link, and on a 1-wide dimension it would be a self-loop.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.topology import Link, Topology, derive_mesh_dims, register_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


@register_topology("torus", description="2-D torus, shortest-way XY routing")
class TorusTopology(Topology):
    """rows × cols grid with wraparound rows/columns, one core per node."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        super().__init__(env, config, hooks=hooks)
        self.rows, self.cols = config.mesh_dims or derive_mesh_dims(config.num_cores)
        # Directed links keyed (src_node, dst_node), created in row-major
        # scan order so links() enumeration is deterministic.
        self._link_for = {}
        for r in range(self.rows):
            for c in range(self.cols):
                node = r * self.cols + c
                if c + 1 < self.cols:
                    east = node + 1
                    self._connect(node, east, f"torus.e[{r},{c}]")
                    self._connect(east, node, f"torus.w[{r},{c + 1}]")
                if r + 1 < self.rows:
                    south = node + self.cols
                    self._connect(node, south, f"torus.s[{r},{c}]")
                    self._connect(south, node, f"torus.n[{r + 1},{c}]")
        # Wraparound edges, one pair per ring with > 2 routers.
        if self.cols > 2:
            for r in range(self.rows):
                first = r * self.cols
                last = first + self.cols - 1
                self._connect(last, first, f"torus.we[{r}]")
                self._connect(first, last, f"torus.ww[{r}]")
        if self.rows > 2:
            for c in range(self.cols):
                first = c
                last = (self.rows - 1) * self.cols + c
                self._connect(last, first, f"torus.ws[{c}]")
                self._connect(first, last, f"torus.wn[{c}]")

    def _connect(self, src: int, dst: int, name: str) -> None:
        self._link_for[(src, dst)] = self._add_link(name)

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def core_node(self, core_id: int) -> int:
        return core_id

    def srd_node(self, srd_index: int) -> int:
        # Same quantile placement as the mesh; on a torus every node is
        # "interior", but keeping the placement identical isolates the
        # wraparound links as the only mesh/torus difference.
        srds = max(1, self.config.effective_srds)
        return ((2 * srd_index + 1) * self.num_nodes) // (2 * srds)

    # ----------------------------------------------------------------- routing
    def _ring_step(self, pos: int, target: int, size: int) -> int:
        """Signed unit step the shorter way around a ring of *size*.

        The positive (east/south) direction wins exact ties so routes are
        deterministic on even rings.
        """
        forward = (target - pos) % size
        backward = (pos - target) % size
        return 1 if forward <= backward else -1

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        links: List[Link] = []
        # X first: walk the row ring the shorter way to the destination
        # column...
        while sc != dc:
            step = self._ring_step(sc, dc, self.cols)
            nc = (sc + step) % self.cols
            links.append(self._link_for[(sr * self.cols + sc, sr * self.cols + nc)])
            sc = nc
        # ...then Y: walk the column ring to the destination row.
        while sr != dr:
            step = self._ring_step(sr, dr, self.rows)
            nr = (sr + step) % self.rows
            links.append(self._link_for[(sr * self.cols + sc, nr * self.cols + sc)])
            sr = nr
        return links

    def _ring_distance(self, a: int, b: int, size: int) -> int:
        delta = abs(a - b)
        return min(delta, size - delta)

    def hops(self, src: int, dst: int) -> int:
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        return self._ring_distance(sr, dr, self.rows) + self._ring_distance(
            sc, dc, self.cols
        )
