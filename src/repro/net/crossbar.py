"""Full crossbar NoC.

Every agent — ``num_cores`` cores plus ``effective_srds`` SRD shards —
gets a private ingress link into the switch and a private egress link out
of it; any packet crosses exactly two links.  There is no path contention
(disjoint src/dst pairs never share a link) but there *is* endpoint
contention: two packets bound for the same destination serialize on its
egress link, and one node's burst serializes on its ingress.  This is the
idealized NoC — distance-flat like the single bus, but with per-endpoint
rather than global serialization — and it brackets mesh/ring from above
in the scaling study.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.topology import Link, Topology, register_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SystemConfig
    from repro.sim.hooks import HookBus
    from repro.sim.kernel import Environment


@register_topology("crossbar", description="full crossbar, per-endpoint ports")
class CrossbarTopology(Topology):
    """Cores on nodes 0..n-1, SRD shards on nodes n..n+k-1, 2-hop routes."""

    def __init__(
        self,
        env: "Environment",
        config: "SystemConfig",
        hooks: Optional["HookBus"] = None,
    ) -> None:
        super().__init__(env, config, hooks=hooks)
        self._num_cores = config.num_cores
        self._num_srds = max(1, config.effective_srds)
        total = self._num_cores + self._num_srds
        self._ingress: List[Link] = [
            self._add_link(f"xbar.in[{self._node_label(i)}]") for i in range(total)
        ]
        self._egress: List[Link] = [
            self._add_link(f"xbar.out[{self._node_label(i)}]") for i in range(total)
        ]

    def _node_label(self, node: int) -> str:
        if node < self._num_cores:
            return f"core{node}"
        return f"srd{node - self._num_cores}"

    # --------------------------------------------------------------- placement
    @property
    def num_nodes(self) -> int:
        return self._num_cores + self._num_srds

    def core_node(self, core_id: int) -> int:
        return core_id

    def srd_node(self, srd_index: int) -> int:
        return self._num_cores + srd_index

    # ----------------------------------------------------------------- routing
    def _compute_route(self, src: int, dst: int) -> List[Link]:
        if src == dst:
            return []
        return [self._ingress[src], self._egress[dst]]
