"""Regression pin for the sticky-slot retry fix (per-producer FIFO).

A missed speculative push keeps its claim: ``on_fly`` stays set, the
specBuf offset does not rotate, and the retry re-targets the *same* line
(:meth:`~repro.spamer.policy.SpecBufSpeculation.on_response` /
:meth:`~repro.spamer.policy.SpecBufSpeculation.retry`).  That stickiness is
what preserves per-producer FIFO delivery across mis-speculations: if a
miss released the slot, a younger packet could be pushed into it and
delivered first.

The positive half runs seeded incast/firewall matrices with the live
invariant checker attached and real misses forced (``spec_failures > 0``),
asserting per-producer FIFO survives every missed-push retry.  The
negative half shows the stickiness is load-bearing from two directions:
re-applying the pre-fix policy as a mutation, and refusing retries so the
packet takes the release→requeue path instead — both must trip the
checker, so the tests fail if the fix regresses *and* if the checker
stops being able to see it.
"""

import pytest

from repro.errors import VerificationError
from repro.eval.runner import Setting, run_workload, setting_by_name
from repro.spamer.delay import ZeroDelay
from repro.spamer.policy import SpecBufSpeculation

SCALE = 0.05
SEED = 0xC0FFEE
MATRIX = [("incast", "0delay"), ("incast", "tuned"),
          ("firewall", "0delay"), ("firewall", "tuned")]


@pytest.mark.parametrize("workload,setting", MATRIX)
def test_fifo_survives_missed_push_retries(workload, setting):
    """Sticky retries actually happen and FIFO order holds throughout."""
    metrics = run_workload(
        workload, setting_by_name(setting), scale=SCALE, seed=SEED, verify=True
    )
    assert metrics.spec_failures > 0  # the miss path was really exercised
    assert metrics.messages_delivered == metrics.messages_produced


class RefuseEveryOtherRetry(ZeroDelay):
    """0delay, but refuses every second decision on a just-missed entry.

    A ``None`` from :meth:`send_tick` inside :meth:`SpecBufSpeculation.retry`
    releases the claim and sends the packet back through the mapping
    pipeline — the release→requeue escape hatch.  Refusing
    deterministically (no wall clock, no RNG) keeps the run
    seeded-reproducible.
    """

    name = "0delay-refuse"

    def __init__(self) -> None:
        self._decisions = 0

    def send_tick(self, entry, now):
        if entry.failed:
            self._decisions += 1
            if self._decisions % 2:
                return None
        return now


@pytest.mark.parametrize("workload", ["incast", "firewall"])
def test_refused_retries_lose_fifo(workload):
    """The sticky retry is load-bearing: an algorithm that refuses retries
    sends missed packets down the release→requeue path, where a younger
    packet can claim the freed slot and overtake — the checker must see
    the same out-of-order deliveries the pre-fix mutation causes.  (This
    is why every stock algorithm always accepts a retry.)"""
    setting = Setting("SPAMeR(refuse)", "spamer", RefuseEveryOtherRetry)
    with pytest.raises(VerificationError, match="out-of-order"):
        run_workload(workload, setting, scale=SCALE, seed=SEED, verify=True)


def _apply_prefix_mutation(monkeypatch):
    """Re-introduce the pre-fix behaviour: a miss releases the slot
    immediately and the retry hook gives up, so the packet re-enters the
    pipeline while a younger packet can claim its slot."""

    def on_response(self, entry, hit, now):
        spec_entry = self.specbuf.entry(entry.spec_entry_index)
        self.algorithm.on_response(spec_entry, hit, now)
        spec_entry.on_fly = False
        if hit:
            spec_entry.advance_offset()
        entry.spec_entry_index = None

    monkeypatch.setattr(SpecBufSpeculation, "on_response", on_response)
    monkeypatch.setattr(
        SpecBufSpeculation, "retry", lambda self, entry, now: None
    )


@pytest.mark.parametrize("workload", ["incast", "firewall"])
def test_prefix_mutation_breaks_fifo(monkeypatch, workload):
    """Mutation kill: without the sticky slot the checker must trip."""
    _apply_prefix_mutation(monkeypatch)
    with pytest.raises(VerificationError, match="out-of-order"):
        run_workload(workload, setting_by_name("0delay"), scale=SCALE,
                     seed=SEED, verify=True)
