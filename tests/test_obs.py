"""Tests for the observability layer: registry, collector, trace sinks,
accuracy reports, and the obs runner/CLI."""

import json

import pytest

from repro.config import SystemConfig
from repro.eval.runner import run_workload, setting_by_name
from repro.obs.accuracy import (
    SpeculationAccuracy,
    accuracy_from_metrics,
    stage_latency_summary,
)
from repro.obs.collector import MetricsCollector, attach_collector, finalize_system
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    SimTimer,
    WindowedHistogram,
)
from repro.obs.perfetto import (
    JsonlTraceSink,
    PID_NETWORK,
    PID_SPECBUF,
    PID_TRANSACTIONS,
    PerfettoTraceSink,
)
from repro.obs.runner import (
    ObsRequest,
    PID_BLOCK,
    collect_cell,
    run_obs,
    smoke_requests,
)
from repro.system import System
from repro.units import CACHELINE_BYTES

from tests.conftest import build_pingpong


# --------------------------------------------------------- WindowedHistogram
def test_histogram_validation():
    with pytest.raises(ValueError):
        WindowedHistogram(bucket_width=0)
    with pytest.raises(ValueError):
        WindowedHistogram(window=-1)


def test_histogram_cumulative_mode():
    hist = WindowedHistogram(bucket_width=10, window=0)
    for v in (0, 5, 15, 25, 25):
        hist.observe(v)
    assert hist.count == 5 and hist.windowed_count == 5
    assert hist.total == 70 and hist.mean == pytest.approx(14.0)
    assert hist.buckets() == {0: 2, 10: 1, 20: 2}
    # Percentile resolves to the upper edge of the holding bucket.
    assert hist.percentile(50) == 19.0
    assert hist.percentile(100) == 29.0
    assert hist.percentile(0) == 9.0


def test_histogram_window_ages_out_old_samples():
    hist = WindowedHistogram(bucket_width=10, window=3)
    for v in (100, 100, 100, 5, 5, 5):
        hist.observe(v)
    # Windowed view only sees the three 5s; lifetime stats see all six.
    assert hist.buckets() == {0: 3}
    assert hist.windowed_count == 3
    assert hist.count == 6
    assert hist.total == 315
    assert hist.percentile(99) == 9.0


def test_histogram_percentile_range_check():
    with pytest.raises(ValueError):
        WindowedHistogram().percentile(101)
    assert WindowedHistogram().percentile(50) == 0.0  # empty -> 0


def test_histogram_negative_values_clamp_to_bucket_zero():
    hist = WindowedHistogram(bucket_width=10)
    hist.observe(-5)
    assert hist.buckets() == {0: 1}
    assert hist.total == -5  # lifetime sum keeps the true value


# ------------------------------------------------------------------ SimTimer
def test_sim_timer_accumulates_intervals():
    t = SimTimer()
    t.start(100)
    assert t.stop(150) == 50
    t.start(200)
    t.stop(300)
    assert (t.count, t.total, t.max) == (2, 150, 100)
    assert t.mean == pytest.approx(75.0)


def test_sim_timer_stop_without_start_raises():
    with pytest.raises(ValueError):
        SimTimer().stop(10)
    assert SimTimer().mean == 0.0


# ------------------------------------------------------------ MetricsRegistry
def test_registry_counters_and_gauges():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    assert reg.counter("a") == 5 and reg.counter("missing") == 0
    reg.gauge_set("g", 1.5)
    reg.gauge_max("hw", 3.0)
    reg.gauge_max("hw", 2.0)  # lower value never lowers the high-water mark
    assert reg.gauge("g") == 1.5 and reg.gauge("hw") == 3.0
    assert reg.gauge("missing") == 0.0


def test_registry_histograms_and_timers():
    reg = MetricsRegistry(histogram_bucket_width=8)
    reg.observe("lat", 10)
    reg.observe("lat", 20)
    assert reg.histogram("lat").count == 2
    assert reg.histogram_names() == ["lat"]
    timer = reg.timer("t")
    timer.start(0)
    timer.stop(7)
    assert reg.timer("t") is timer  # memoized per name


def test_registry_export_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.gauge_set("g", 2.0)
        reg.observe("h", 33)
        t = reg.timer("t")
        t.start(0)
        t.stop(5)
        return reg

    a, b = build(), build()
    assert a.to_json() == b.to_json()
    doc = a.as_dict()
    assert set(doc) == {"counters", "gauges", "histograms", "timers"}
    assert list(doc["counters"]) == ["a", "z"]  # sorted
    assert doc["histograms"]["h"]["count"] == 1
    assert doc["timers"]["t"]["total"] == 5
    # indent variant parses back to the same document
    assert json.loads(a.to_json(indent=2)) == json.loads(a.to_json())


def test_null_registry_records_nothing():
    reg = NullMetricsRegistry()
    reg.inc("a")
    reg.gauge_set("g", 1.0)
    reg.gauge_max("g", 2.0)
    reg.observe("h", 5)
    assert reg.counter("a") == 0 and reg.gauge("g") == 0.0
    assert reg.as_dict()["histograms"] == {}
    assert reg.enabled is False and NULL_METRICS.enabled is False
    assert MetricsRegistry.enabled is True


# ----------------------------------------------------------- MetricsCollector
def run_observed(device="spamer", algorithm="tuned", rounds=30):
    system = System(
        config=SystemConfig(num_cores=4), device=device, algorithm=algorithm
    )
    registry = MetricsRegistry()
    collector = attach_collector(system, registry)
    build_pingpong(system, rounds=rounds)
    system.run_to_completion()
    finalize_system(system, registry)
    return system, registry, collector


def test_collector_counts_semantic_events():
    system, reg, _ = run_observed()
    assert reg.counter("push.messages") == system.messages_produced() == 30
    assert reg.counter("delivery.messages") == system.messages_delivered() == 30
    hits, misses = reg.counter("spec.hits"), reg.counter("spec.misses")
    stats = system.aggregate_device_stats().as_dict()
    assert hits + misses == stats.get("spec_pushes", 0)
    assert reg.histogram("txn.latency").count == 30


def test_collector_records_decisions_per_algorithm():
    _, reg, _ = run_observed(algorithm="tuned")
    decisions = reg.histogram("spec.decision.tuned")
    assert decisions.count > 0
    # every decision delay is >= 0 (refusals go to spec.refused.*)
    assert min(decisions.buckets()) >= 0


def test_collector_observes_stage_edges():
    _, reg, _ = run_observed()
    edges = [n for n in reg.histogram_names() if n.startswith("txn.stage.")]
    assert any("created->pushed" in e for e in edges)
    assert any("->retired" in e for e in edges)


def test_finalize_records_run_boundary_gauges():
    system, reg, _ = run_observed()
    assert reg.gauge("kernel.sim_time") == float(system.env.now)
    assert reg.gauge("kernel.events.dispatched") == float(
        system.env.events_processed
    )
    assert (
        reg.gauge("kernel.events.scheduled")
        >= reg.gauge("kernel.events.dispatched") > 0
    )
    assert reg.gauge("library.messages_delivered") == 30.0
    assert reg.gauge("bus.busy_cycles") > 0
    assert 0.0 <= reg.gauge("bus.utilization") <= 1.0


def test_collector_never_perturbs_timing():
    """Attaching the full observability stack must not move a single tick."""
    bare = System(config=SystemConfig(num_cores=4), device="spamer",
                  algorithm="tuned")
    build_pingpong(bare, rounds=30)
    bare_end = bare.run_to_completion()
    observed, *_ = run_observed()
    assert observed.env.now == bare_end
    assert observed.env.events_processed == bare.env.events_processed


def test_collector_detach_stops_counting():
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned")
    registry = MetricsRegistry()
    collector = MetricsCollector(system.hooks, registry)
    collector.detach()
    build_pingpong(system, rounds=5)
    system.run_to_completion()
    assert registry.counter("push.messages") == 0
    assert not system.hooks.errors


def test_system_owned_registry_finalizes_on_completion():
    registry = MetricsRegistry()
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned", metrics=registry)
    build_pingpong(system, rounds=5)
    system.run_to_completion()
    assert registry.counter("push.messages") == 5
    assert registry.gauge("kernel.sim_time") == float(system.env.now)


def test_system_skips_collector_for_null_registry():
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned", metrics=NULL_METRICS)
    build_pingpong(system, rounds=5)
    system.run_to_completion()  # must not crash, must not subscribe
    from repro.sim.hooks import PushHook

    assert not system.hooks.wants(PushHook)
    assert NULL_METRICS.counter("push.messages") == 0


# ----------------------------------------------------------- PerfettoTraceSink
def run_traced(pid_base=0, label=""):
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned", trace=True)
    sink = PerfettoTraceSink(system.hooks, pid_base=pid_base, label=label)
    build_pingpong(system, rounds=20)
    system.run_to_completion()
    return system, sink


def test_perfetto_track_metadata():
    _, sink = run_traced(label="cell")
    meta = [e for e in sink.events if e["ph"] == "M"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in meta if e["name"] == "process_name"
    }
    assert process_names[PID_TRANSACTIONS] == "transactions [cell]"
    assert PID_NETWORK in process_names and PID_SPECBUF in process_names
    thread_names = [e for e in meta if e["name"] == "thread_name"]
    names = {e["args"]["name"] for e in thread_names}
    assert any(n.startswith("sqi ") for n in names)
    assert any(n.startswith("entry ") for n in names)
    # metadata is emitted once per track, not per event
    assert len(meta) == len(
        {(e["name"], e["pid"], e["tid"]) for e in meta}
    )


def test_perfetto_slices_have_nonnegative_durations():
    _, sink = run_traced()
    slices = [e for e in sink.events if e["ph"] == "X"]
    assert slices
    assert all(s["dur"] >= 0 for s in slices)
    assert all("->" in s["name"] for s in slices)


def test_perfetto_flow_events_reconcile_with_transaction_records():
    """Acceptance criterion: every retained message lifecycle maps 1:1 onto
    a flow chain — one ``s`` (push), one ``t`` per stash attempt, one ``f``
    (delivery) — all carrying the transaction id."""
    system, sink = run_traced()
    records = system.transactions.records("message")
    assert records and all(r.retired for r in records)
    starts = [e for e in sink.events if e["ph"] == "s"]
    steps = [e for e in sink.events if e["ph"] == "t"]
    ends = [e for e in sink.events if e["ph"] == "f"]
    assert {e["id"] for e in starts} == {r.tid for r in records}
    assert {e["id"] for e in ends} == {r.tid for r in records}
    assert len(starts) == len(ends) == len(records)
    assert len(steps) == sum(r.attempts for r in records)
    assert all(e["bp"] == "e" for e in ends)
    # per-transaction: the chain is time-ordered push -> ... -> delivery
    by_id = {e["id"]: e for e in starts}
    for end in ends:
        assert by_id[end["id"]]["ts"] <= end["ts"]


def test_perfetto_pid_base_offsets_every_event():
    _, sink = run_traced(pid_base=PID_BLOCK)
    assert sink.events
    assert all(e["pid"] > PID_BLOCK for e in sink.events)


def test_perfetto_document_and_json_are_deterministic():
    _, sink_a = run_traced()
    _, sink_b = run_traced()
    assert sink_a.to_json() == sink_b.to_json()
    doc = sink_a.document()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert json.loads(sink_a.to_json(indent=1)) == doc


def test_perfetto_detach_stops_streaming():
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned")
    sink = PerfettoTraceSink(system.hooks)
    sink.detach()
    build_pingpong(system, rounds=5)
    system.run_to_completion()
    assert sink.events == []


# --------------------------------------------------------------- JsonlTraceSink
def test_jsonl_sink_emits_parseable_lines():
    system = System(config=SystemConfig(num_cores=4), device="spamer",
                    algorithm="tuned", trace=True)
    sink = JsonlTraceSink(system.hooks)
    build_pingpong(system, rounds=10)
    system.run_to_completion()
    text = sink.to_jsonl()
    assert text.endswith("\n")
    events = [json.loads(line) for line in text.splitlines()]
    kinds = {e["ev"] for e in events}
    assert {"txn", "push", "delivery", "bus", "decision"} <= kinds
    assert all("t" in e for e in events)
    assert JsonlTraceSink(system.hooks).to_jsonl() == ""


# -------------------------------------------------------------------- accuracy
def test_speculation_accuracy_edge_cases():
    empty = SpeculationAccuracy("w", "s", 0, 0, 0, 0)
    assert empty.precision == 0.0 and empty.recall == 0.0
    clamped = SpeculationAccuracy("w", "s", 10, 8, 4, 0)
    assert clamped.recall == 1.0  # more hits than deliveries clamps
    half = SpeculationAccuracy("w", "s", 10, 5, 10, 320)
    assert half.precision == 0.5 and half.recall == 0.5
    doc = half.as_dict()
    assert doc["precision"] == 0.5 and doc["wasted_push_bytes"] == 320


def test_accuracy_from_run_metrics():
    metrics = run_workload("ping-pong", setting_by_name("tuned"), scale=0.05)
    acc = accuracy_from_metrics(metrics)
    assert acc.spec_pushes == metrics.spec_pushes
    assert acc.spec_hits == metrics.spec_pushes - metrics.spec_failures
    assert acc.wasted_push_bytes == metrics.spec_failures * CACHELINE_BYTES
    assert 0.0 <= acc.precision <= 1.0 and 0.0 <= acc.recall <= 1.0


def test_run_metrics_accuracy_properties_stay_out_of_asdict():
    import dataclasses

    metrics = run_workload("ping-pong", setting_by_name("tuned"), scale=0.05)
    assert metrics.spec_hits == metrics.spec_pushes - metrics.spec_failures
    assert metrics.push_precision == pytest.approx(
        metrics.spec_hits / metrics.spec_pushes
    )
    assert metrics.wasted_push_bytes == metrics.spec_failures * CACHELINE_BYTES
    doc = dataclasses.asdict(metrics)
    # derived values are properties, so the golden asdict stays unchanged
    for key in ("spec_hits", "push_precision", "push_recall",
                "wasted_push_bytes"):
        assert key not in doc


def test_stage_latency_summary_strips_prefix():
    reg = MetricsRegistry()
    reg.observe("txn.stage.created->pushed", 10)
    reg.observe("txn.latency", 99)  # not a stage edge
    summary = stage_latency_summary(reg)
    assert list(summary) == ["created->pushed"]
    row = summary["created->pushed"]
    assert row["count"] == 1.0 and {"p50", "p90", "p99"} <= set(row)
    assert stage_latency_summary(reg, percentiles=[75.0])[
        "created->pushed"
    ].get("p75") is not None


# ------------------------------------------------------------------ obs runner
def test_smoke_requests_assign_disjoint_pid_blocks():
    requests = smoke_requests()
    assert len(requests) == 4
    assert [r.pid_base for r in requests] == [0, 8, 16, 24]
    assert PID_BLOCK == 8


def test_collect_cell_returns_complete_documents():
    cell = collect_cell(ObsRequest("ping-pong", "tuned", scale=0.05))
    assert cell["workload"] == "ping-pong" and cell["setting"] == "tuned"
    assert cell["exec_cycles"] > 0
    assert cell["trace_events"] and cell["jsonl"]
    assert cell["accuracy"]["spec_pushes"] > 0
    assert cell["metrics"]["counters"]["push.messages"] > 0
    assert cell["stage_latency"]


def test_collect_cell_vl_has_no_speculation():
    cell = collect_cell(ObsRequest("ping-pong", "vl", scale=0.05))
    assert cell["accuracy"]["spec_pushes"] == 0
    assert cell["accuracy"]["precision"] == 0.0
    counters = cell["metrics"]["counters"]
    assert not any(k.startswith("spec.decision") for k in counters)


def test_run_obs_summary_mentions_each_cell():
    result = run_obs(smoke_requests(scale=0.02), jobs=1)
    text = result.summary()
    assert "speculation accuracy" in text
    assert "ping-pong" in text and "incast" in text
    assert "stage latency" in text


# ------------------------------------------------------------------------ CLI
def test_cli_obs_single_cell_summary(capsys):
    from repro.cli import main

    assert main(["obs", "ping-pong", "--setting", "tuned",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "speculation accuracy" in out
    assert "ping-pong" in out


def test_cli_obs_writes_artifacts(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    jsonl = tmp_path / "events.jsonl"
    assert main(["obs", "smoke", "--scale", "0.02", "--jobs", "1",
                 "--trace", str(trace), "--metrics", str(metrics),
                 "--jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "ui.perfetto.dev" in out
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"]
    cells = json.loads(metrics.read_text())["cells"]
    assert [c["workload"] for c in cells] == [
        "ping-pong", "ping-pong", "incast", "incast"
    ]
    assert all(json.loads(line) for line in jsonl.read_text().splitlines())
