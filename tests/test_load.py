"""Tests for the open-system load sweep (repro.eval.load + CLI)."""

import json

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.load import (
    DEFAULT_RHOS,
    LoadResult,
    arrival_spec_for,
    load_config,
    load_experiment,
)

# One tiny single-cell matrix reused by most tests: fast, still covers
# calibration + a full four-point rho axis.
TINY = dict(workload="incast", arrival="poisson", settings=("vl",),
            topologies=("single-bus",), scale=0.05)


# ----------------------------------------------------------------- helpers
def test_load_config_reuses_matching_base():
    base = SystemConfig(topology="mesh")
    assert load_config("mesh", base=base) is base
    derived = load_config("torus", base=base)
    assert derived.topology == "torus"
    assert load_config("single-bus").topology == "single-bus"


def test_arrival_spec_for_maps_rates():
    spec = arrival_spec_for("poisson", 0.004)
    assert spec.name == "poisson" and dict(spec.params) == {"rate": 0.004}
    spec = arrival_spec_for("bursty", 0.004)
    assert dict(spec.params) == {"rate": 0.004}
    spec = arrival_spec_for("ramp", 0.004)
    assert dict(spec.params) == {"rate_lo": 0.002, "rate_hi": 0.008}
    spec = arrival_spec_for("poisson", 0.004, churn=0.5)
    assert dict(spec.params)["churn"] == 0.5
    assert all(spec.build() for spec in [spec])  # every spec instantiates


def test_arrival_spec_for_rejects_closed_and_unknown():
    with pytest.raises(ConfigError, match="no\\s+rate to sweep"):
        arrival_spec_for("closed", 0.004)
    with pytest.raises(ConfigError, match="registered"):
        arrival_spec_for("pareto", 0.004)


# -------------------------------------------------------------- experiment
def test_tiny_sweep_covers_four_load_points():
    result = load_experiment(rhos=DEFAULT_RHOS, jobs=1, **TINY)
    assert len(result.calibration) == 1
    cell = result.calibration[0]
    assert cell["service_rate"] > 0 and cell["requests"] > 0
    assert len(result.rows) == len(DEFAULT_RHOS) == 4
    for row in result.rows:
        assert row["requests"] > 0
        assert row["p50"] <= row["p99"] <= row["p999"]
        assert row["throughput"] > 0
    # offered rate scales linearly with rho against one calibration
    rates = [row["rate"] for row in result.rows]
    assert rates == sorted(rates)
    # past saturation the tail is strictly worse than at light load
    assert result.rows[-1]["p99"] > result.rows[0]["p99"]


def test_sweep_is_byte_identical_across_jobs():
    serial = load_experiment(rhos=(0.5, 1.1), jobs=1, **TINY)
    parallel = load_experiment(rhos=(0.5, 1.1), jobs=2, **TINY)
    assert serial.to_json() == parallel.to_json()
    assert serial.render() == parallel.render()


def test_render_and_json_round_trip():
    result = load_experiment(rhos=(0.5,), jobs=1, **TINY)
    text = result.render()
    assert "Load sweep: incast under poisson arrivals" in text
    assert "p999" in text
    doc = json.loads(result.to_json())
    assert doc["workload"] == "incast" and doc["arrival"] == "poisson"
    assert doc["rows"] == result.rows


def test_closed_only_workload_rejected():
    with pytest.raises(ConfigError, match="closed-only"):
        load_experiment(workload="halo", arrival="poisson", jobs=1)


def test_closed_arrival_rejected():
    with pytest.raises(ConfigError, match="open arrival"):
        load_experiment(workload="incast", arrival="closed",
                        rhos=(0.5,), jobs=1)


def test_empty_result_renders_headers_only():
    assert "p999" in LoadResult(workload="w", arrival="a").render()


# --------------------------------------------------------------------- CLI
def test_cli_load_prints_table(capsys):
    rc = main(["load", "--workload", "incast", "--arrival", "poisson",
               "--topology", "single-bus", "--settings", "vl",
               "--rhos", "0.5", "--scale", "0.05", "--jobs", "1"])
    assert rc in (0, None)
    out = capsys.readouterr().out
    assert "Load sweep: incast under poisson arrivals" in out
    assert "0.5" in out


def test_cli_load_writes_json_report(tmp_path, capsys):
    out_file = tmp_path / "load.json"
    main(["load", "--workload", "incast", "--settings", "vl",
          "--rhos", "0.5", "--scale", "0.05", "--jobs", "1",
          "--out", str(out_file)])
    doc = json.loads(out_file.read_text())
    assert doc["rows"] and doc["calibration"]
    assert "wrote JSON report" in capsys.readouterr().out
