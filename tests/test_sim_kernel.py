"""Unit tests for the simulation kernel (Environment)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError, SimulationError
from repro.sim.kernel import Environment, NORMAL, URGENT


def test_clock_starts_at_initial_time():
    assert Environment().now == 0
    assert Environment(initial_time=100).now == 100


def test_step_on_empty_queue_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_run_returns_final_time(env):
    env.timeout(25)
    assert env.run() == 25


def test_run_until_advances_clock_even_past_last_event(env):
    env.timeout(5)
    assert env.run(until=50) == 50


def test_run_until_does_not_process_later_events(env):
    fired = []
    env.timeout(5).subscribe(lambda e: fired.append(5))
    env.timeout(80).subscribe(lambda e: fired.append(80))
    env.run(until=10)
    assert fired == [5]
    env.run()
    assert fired == [5, 80]


def test_run_until_in_the_past_rejected(env):
    env.timeout(5)
    env.run()
    with pytest.raises(SchedulingError):
        env.run(until=1)


def test_negative_schedule_rejected(env):
    ev = env.event()
    ev._ok, ev._value = True, None
    with pytest.raises(SchedulingError):
        env.schedule(ev, delay=-5)


def test_same_cycle_fifo_order(env):
    """Events scheduled for the same cycle fire in scheduling order."""
    order = []
    for i in range(10):
        env.timeout(7).subscribe(lambda e, i=i: order.append(i))
    env.run()
    assert order == list(range(10))


def test_urgent_priority_preempts_normal(env):
    order = []
    normal = env.event()
    normal._ok, normal._value = True, None
    normal.subscribe(lambda e: order.append("normal"))
    env.schedule(normal, delay=5, priority=NORMAL)
    urgent = env.event()
    urgent._ok, urgent._value = True, None
    urgent.subscribe(lambda e: order.append("urgent"))
    env.schedule(urgent, delay=5, priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_run_until_complete_returns_process_value(env):
    def work():
        yield env.timeout(10)
        return "result"

    proc = env.process(work())
    assert env.run_until_complete(proc) == "result"
    assert env.now == 10


def test_run_until_complete_detects_deadlock(env):
    def work():
        yield env.event()  # never triggered

    proc = env.process(work())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_complete(proc)


def test_run_until_complete_respects_limit(env):
    def ticker():
        while True:
            yield env.timeout(10)

    def work():
        yield env.timeout(10 ** 9)

    env.process(ticker())
    proc = env.process(work())
    with pytest.raises(SimulationError, match="limit"):
        env.run_until_complete(proc, limit=1000)


def test_run_until_complete_reraises_process_error(env):
    def work():
        yield env.timeout(1)
        raise ValueError("inside process")

    proc = env.process(work())
    with pytest.raises(ValueError, match="inside process"):
        env.run_until_complete(proc)


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_time_order(delays):
    """Property: firing order is sorted by time, stable within a cycle."""
    env = Environment()
    fired = []
    for idx, d in enumerate(delays):
        env.timeout(d).subscribe(lambda e, idx=idx, d=d: fired.append((d, idx)))
    env.run()
    assert fired == sorted(fired)


@given(delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_determinism_across_runs(delays):
    """Property: two identical schedules produce identical traces."""

    def trace():
        env = Environment()
        out = []
        for idx, d in enumerate(delays):
            env.timeout(d).subscribe(lambda e, idx=idx: out.append((env.now, idx)))
        env.run()
        return out

    assert trace() == trace()


def test_peek_reports_next_event_time(env):
    assert env.peek() is None
    env.timeout(42)
    assert env.peek() == 42


# -- step()-vs-run() watchdog symmetry ---------------------------------------
# step() is public but historically only the inlined run() loops were
# exercised by the stall-watchdog tests; both funnel through _dispatch, and
# these tests pin that shared firing point directly.


def test_step_fires_watchdog_at_deadline(env):
    fires = []

    def watchdog(now):
        fires.append(now)
        env.defer_watchdog(now + 100)

    for delay in (5, 10, 20):
        env.timeout(delay)
    env.set_watchdog(watchdog, deadline=10)
    env.step()
    assert fires == []  # t=5 is before the deadline
    env.step()
    assert fires == [10]  # first dispatch at/past the deadline
    env.step()
    assert fires == [10]  # deferred past t=20


def test_step_watchdog_raise_aborts_and_preserves_queue(env):
    def watchdog(now):
        raise SimulationError(f"stalled at {now}")

    for delay in (5, 10, 20):
        env.timeout(delay)
    env.set_watchdog(watchdog, deadline=10)
    env.step()
    with pytest.raises(SimulationError, match="stalled at 10"):
        env.step()
    # The failed dispatch consumed its entry; the rest is intact and the
    # run can resume after the watchdog is cleared.
    env.clear_watchdog()
    assert env.queue_length == 1
    assert env.run() == 20


def test_step_refires_watchdog_without_defer(env):
    fires = []
    for delay in (5, 6, 7):
        env.timeout(delay)
    env.set_watchdog(fires.append, deadline=0)
    for _ in range(3):
        env.step()
    assert fires == [5, 6, 7]


def test_step_empty_queue_raises_with_watchdog_armed(env):
    env.set_watchdog(lambda now: None, deadline=0)
    with pytest.raises(SimulationError, match="empty event queue"):
        env.step()


# -- run(until=now): the zero-width window -----------------------------------


def test_run_until_now_processes_current_cycle_only(env):
    fired = []
    env.timeout(0).subscribe(lambda e: fired.append(0))
    env.timeout(3).subscribe(lambda e: fired.append(3))
    assert env.run(until=env.now) == 0
    assert fired == [0]
    assert env.queue_length == 1
    env.run()
    assert fired == [0, 3]


def test_run_until_now_includes_work_spawned_at_now(env):
    fired = []

    def chain(event):
        fired.append("first")
        env.timeout(0).subscribe(lambda e: fired.append("second"))

    env.timeout(0).subscribe(chain)
    env.run(until=env.now)
    # Zero-delay work scheduled *during* the window still lands inside it.
    assert fired == ["first", "second"]
    assert env.now == 0


def test_run_until_now_on_empty_queue_is_a_noop(env):
    env.run(until=25)
    assert env.run(until=env.now) == 25
    assert env.events_processed == 0
