"""Tests for the Section 4.5 area/power arithmetic (eval/areapower.py)."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.areapower import (
    SRD_BUFFER_AREA_MM2,
    SRD_TOTAL_AREA_MM2,
    VL_DYNAMIC_POWER_MW,
    VL_LEAKAGE_POWER_MW,
    estimate_power,
    estimate_srd_area,
    estimate_vlrd_area,
    paper_power_bounds,
)


def test_default_geometry_reproduces_paper_buffer_area():
    """Calibration anchor: 64-entry geometry -> 0.156 mm² of buffers,
    0.170 mm² overall (Section 4.5)."""
    est = estimate_srd_area()
    assert est.buffer_total_mm2 == pytest.approx(SRD_BUFFER_AREA_MM2)
    assert est.total_mm2 == pytest.approx(SRD_TOTAL_AREA_MM2)
    assert set(est.buffers_mm2) == {"prodBuf", "consBuf", "linkTab", "specBuf"}


def test_srd_within_15_percent_of_vlrd():
    srd = estimate_srd_area()
    vlrd = estimate_vlrd_area()
    assert "specBuf" not in vlrd.buffers_mm2
    assert vlrd.total_mm2 < srd.total_mm2
    assert srd.total_mm2 / vlrd.total_mm2 <= 1.15


def test_srd_under_one_percent_of_soc():
    assert estimate_srd_area().share_of_soc(num_cores=16) < 0.01


def test_area_scales_with_buffer_geometry():
    small = estimate_srd_area(SystemConfig(specbuf_entries=32))
    large = estimate_srd_area(SystemConfig(specbuf_entries=128))
    assert large.buffers_mm2["specBuf"] == pytest.approx(
        4 * small.buffers_mm2["specBuf"]
    )
    # control logic is geometry-independent
    assert large.control_mm2 == small.control_mm2


def test_tuned_latches_add_specbuf_area():
    base = estimate_srd_area()
    tuned = estimate_srd_area(include_tuned_latches=True)
    assert tuned.buffers_mm2["specBuf"] > base.buffers_mm2["specBuf"]
    for name in ("prodBuf", "consBuf", "linkTab"):
        assert tuned.buffers_mm2[name] == base.buffers_mm2[name]


def test_power_baseline_matches_vl():
    p = estimate_power(1.0)
    assert p.dynamic_mw == pytest.approx(VL_DYNAMIC_POWER_MW)
    assert p.leakage_mw == pytest.approx(VL_LEAKAGE_POWER_MW)
    assert p.total_mw == pytest.approx(VL_DYNAMIC_POWER_MW + VL_LEAKAGE_POWER_MW)


def test_power_rejects_negative_ratio():
    with pytest.raises(ConfigError):
        estimate_power(-0.5)


def test_paper_power_bounds():
    """Tuned worst case: 9.33 * 5.03 + 0.82 ≈ 47.75 mW, ~0.23% of a 21 W SoC."""
    bounds = paper_power_bounds()
    assert set(bounds) == {"VL(baseline)", "SPAMeR(adapt)", "SPAMeR(tuned)"}
    tuned = bounds["SPAMeR(tuned)"]
    assert tuned.total_mw == pytest.approx(47.75, abs=0.05)
    assert tuned.share_of_soc() == pytest.approx(0.00227, abs=0.0002)
    assert bounds["SPAMeR(adapt)"].total_mw < tuned.total_mw
