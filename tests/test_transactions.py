"""The explicit transaction lifecycle threaded through the stack."""

from repro import System
from repro.sim.transaction import TransactionLog, TransactionRecord, TxnState


def _ping_pong(system, messages=8):
    q = system.library.create_queue()
    prod = system.library.open_producer(q, core_id=0)
    cons = system.library.open_consumer(q, core_id=1)

    def producer(ctx):
        for i in range(messages):
            yield from ctx.push(prod, i)
            yield from ctx.compute(50)

    def consumer(ctx):
        for _ in range(messages):
            yield from ctx.pop(cons)
            yield from ctx.compute(30)

    system.spawn(0, producer, "producer")
    system.spawn(1, consumer, "consumer")
    system.run_to_completion()


# ------------------------------------------------------------- unit level
def test_record_stamps_and_queries():
    record = TransactionRecord(0, sqi=1)
    record.stamp(TxnState.CREATED, 10)
    record.stamp(TxnState.PUSHED, 25)
    record.stamp(TxnState.STASHED, 30, "on-demand")
    record.stamp(TxnState.RESPONDED, 60, "miss")
    record.stamp(TxnState.STASHED, 70, "on-demand")
    record.stamp(TxnState.RESPONDED, 100, "hit")
    record.stamp(TxnState.RETIRED, 120)
    assert record.state is TxnState.RETIRED and record.retired
    assert record.attempts == 2
    assert record.first(TxnState.STASHED) == 30
    assert record.last(TxnState.STASHED) == 70
    assert record.ticks(TxnState.RESPONDED) == [60, 100]
    assert record.latency == 110
    edges = dict(record.stage_durations())
    assert edges["created->pushed"] == 15
    assert edges["responded->retired"] == 20


def test_log_keeps_dense_per_kind_id_sequences():
    log = TransactionLog()
    tids = [log.open(1).tid for _ in range(3)]
    rids = [log.open(1, kind="request").tid for _ in range(2)]
    assert tids == [0, 1, 2]
    assert rids == [0, 1]          # requests do not perturb message ids
    assert log.count() == 3 and log.count("request") == 2


def test_log_retention_is_opt_in():
    log = TransactionLog(retain=False)
    log.open(1)
    assert log.records() == [] and log.count() == 1
    retained = TransactionLog(retain=True)
    record = retained.open(1)
    assert retained.records() == [record]


# ----------------------------------------------------------- system level
def test_message_lifecycle_through_a_real_run():
    system = System(device="spamer", trace=True)
    _ping_pong(system)
    records = system.transactions.records()
    assert len(records) == 8
    for record in records:
        assert record.retired
        assert record.first(TxnState.CREATED) is not None
        assert record.first(TxnState.PUSHED) is not None
        assert record.first(TxnState.MAPPED) is not None
        assert record.attempts >= 1
        assert record.latency is not None and record.latency > 0
        # Ticks are monotonically non-decreasing along the journey.
        ticks = [stamp.tick for stamp in record.stamps]
        assert ticks == sorted(ticks)
    # Message ids stay the dense 0..n-1 sequence the trace figures key on.
    assert [r.tid for r in records] == list(range(8))
    assert system.transactions.in_flight() == []


def test_request_lifecycle_on_baseline_device():
    system = System(device="vl", trace=True)
    _ping_pong(system)
    requests = system.transactions.records("request")
    assert requests, "legacy pops must issue vl_fetch requests"
    terminal = {TxnState.MATCHED, TxnState.COALESCED, TxnState.DROPPED}
    assert any(r.state in terminal for r in requests)


def test_untraced_system_does_not_retain_records():
    system = System(device="spamer")
    _ping_pong(system)
    assert system.transactions.records() == []
    assert system.transactions.count() == 8  # ids were still allocated


def test_recording_does_not_perturb_timing():
    plain = System(device="spamer", seed=7)
    _ping_pong(plain)
    traced = System(device="spamer", trace=True, seed=7)
    _ping_pong(traced)
    assert plain.env.now == traced.env.now
    assert plain.device.stats.as_dict() == traced.device.stats.as_dict()
