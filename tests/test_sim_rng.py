"""Unit and property tests for deterministic randomness and bithash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngPool, bithash


def test_same_seed_same_stream():
    a = RngPool(42).stream("x").integers(0, 1000, 10)
    b = RngPool(42).stream("x").integers(0, 1000, 10)
    assert list(a) == list(b)


def test_different_names_are_independent():
    pool = RngPool(42)
    a = list(pool.stream("a").integers(0, 1000, 10))
    b = list(pool.stream("b").integers(0, 1000, 10))
    assert a != b


def test_stream_is_cached():
    pool = RngPool(7)
    assert pool.stream("x") is pool.stream("x")


def test_adding_streams_does_not_perturb_existing():
    pool1 = RngPool(9)
    s1 = pool1.stream("thread-0")
    first_draw_alone = s1.integers(0, 10**9)

    pool2 = RngPool(9)
    pool2.stream("thread-1")  # created first this time
    s2 = pool2.stream("thread-0")
    assert s2.integers(0, 10**9) == first_draw_alone


@given(
    base=st.integers(min_value=1, max_value=100_000),
    fraction=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=100, deadline=None)
def test_jitter_stays_in_bounds(base, fraction):
    pool = RngPool(1)
    value = pool.jitter("j", base, fraction)
    assert value >= 1
    assert base * (1 - fraction) - 1 <= value <= base * (1 + fraction) + 1


def test_jitter_zero_fraction_is_exact():
    assert RngPool(1).jitter("j", 500, 0.0) == 500


def test_jitter_negative_fraction_rejected():
    with pytest.raises(ValueError):
        RngPool(1).jitter("j", 100, -0.1)


@given(
    value=st.integers(min_value=0, max_value=2**31),
    tsc=st.integers(min_value=0, max_value=2**40),
    bits=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=200, deadline=None)
def test_bithash_range(value, tsc, bits):
    """Property: shift amount is in [1, 2**bits) so delay strictly shrinks."""
    shift = bithash(value, tsc, bits=bits)
    assert 1 <= shift < max(2, 1 << bits)


def test_bithash_is_deterministic():
    assert bithash(1000, 12345) == bithash(1000, 12345)


def test_bithash_varies_with_tsc():
    values = {bithash(1 << 12, t) for t in range(64)}
    assert len(values) > 1  # the obfuscation actually varies
