"""Unit tests for the coherence-network model."""

import pytest

from repro.config import SystemConfig
from repro.mem.bus import CoherenceNetwork, PacketKind


@pytest.fixture
def network(env):
    cfg = SystemConfig(bus_latency=36, bus_occupancy=3)
    return CoherenceNetwork(env, cfg)


def test_single_packet_latency(env, network):
    done = []
    network.transit(PacketKind.REQUEST).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [3 + 36]  # occupancy + propagation


def test_packets_serialize_on_occupancy(env, network):
    done = []
    for _ in range(3):
        network.transit(PacketKind.STASH).subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [39, 42, 45]  # 3-cycle serialization spacing


def test_packet_counters(env, network):
    network.transit(PacketKind.REQUEST)
    network.transit(PacketKind.PUSH_DATA)
    network.transit(PacketKind.PUSH_DATA)
    env.run()
    assert network.packets(PacketKind.REQUEST) == 1
    assert network.packets(PacketKind.PUSH_DATA) == 2
    assert network.total_packets == 3


def test_response_has_latency_but_no_occupancy(env, network):
    done = []
    network.response().subscribe(lambda e: done.append(env.now))
    env.run()
    assert done == [36]
    assert network.busy_cycles == 0  # responses ride the response channel


def test_utilization_is_busy_over_elapsed(env, network):
    for _ in range(10):
        network.transit(PacketKind.STASH)
    env.run()            # ends at 30 occupancy + 36 latency = 66
    env.timeout(234)
    env.run()            # now == 300
    assert network.busy_cycles == 30
    assert network.utilization(300) == pytest.approx(0.1)
    assert network.utilization() == pytest.approx(30 / 300)


def test_utilization_clamped_to_one(env, network):
    for _ in range(100):
        network.transit(PacketKind.STASH)
    assert network.utilization(1) == 1.0
