"""CLI coverage for the figure/experiment subcommands (tiny scales)."""

import pytest

from repro.cli import build_parser, main

TINY = ["--scale", "0.05"]


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_fig8_command(capsys):
    out = run_cli(capsys, "fig8", *TINY)
    assert "geomean" in out and "SPAMeR(tuned)" in out


def test_fig9_command(capsys):
    out = run_cli(capsys, "fig9", *TINY)
    assert "empty" in out


def test_fig10_commands(capsys):
    out = run_cli(capsys, "fig10a", *TINY)
    assert "failure" in out
    out = run_cli(capsys, "fig10b", *TINY)
    assert "utilization" in out


def test_fig7_command_prints_rows(capsys):
    out = run_cli(capsys, "fig7", *TINY)
    assert "req-bound" in out or "on-demand" in out
    assert "potential-saving" in out


def test_fig7_csv_export(tmp_path, capsys):
    target = tmp_path / "trace.csv"
    run_cli(capsys, "fig7", *TINY, "--csv", str(target))
    content = target.read_text()
    assert content.startswith("transaction_id,")
    assert len(content.splitlines()) > 2


def test_fig11_command(capsys):
    out = run_cli(capsys, "fig11", "ping-pong", "--scale", "0.04")
    assert "Figure 11 panel: ping-pong" in out
    assert "VL (baseline)" in out


def test_inline_command(capsys):
    out = run_cli(capsys, "inline", *TINY)
    assert "geomean" in out


def test_motivation_command(capsys):
    out = run_cli(capsys, "motivation")
    assert "Virtual-Link" in out and "SPAMeR" in out


def test_autotune_command(capsys):
    out = run_cli(capsys, "autotune", "ping-pong", "--scale", "0.04",
                  "--budget", "3")
    assert "best parameters" in out


def test_replicate_command(capsys):
    out = run_cli(capsys, "replicate", "--scale", "0.04", "--seeds", "2")
    assert "95% CI" in out and "n=2" in out


def test_run_with_learned_setting(capsys):
    out = run_cli(capsys, "run", "ping-pong", "--setting", "perceptron",
                  "--scale", "0.05")
    assert "SPAMeR(perceptron)" in out


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_help_lists_commands(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    for cmd in ("table1", "fig8", "autotune", "batch", "replicate"):
        assert cmd in out
