"""Unit and property tests for the MOESI coherence substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.mem.cache import MoesiState
from repro.mem.coherence import CoherentMemorySystem
from repro.sim.kernel import Environment


@pytest.fixture
def mem(env):
    return CoherentMemorySystem(env, SystemConfig(num_cores=4))


def run_op(env, gen):
    """Drive a yield-from memory operation to completion."""
    proc = env.process(gen)
    return env.run_until_complete(proc)


def test_load_returns_stored_value(env, mem):
    run_op(env, mem.store(0, 0x1000, 42))
    assert run_op(env, mem.load(0, 0x1000)) == 42


def test_cold_load_goes_to_dram(env, mem):
    run_op(env, mem.load(0, 0x1000))
    assert mem.dram.reads == 1
    assert mem.counters.get("dram_fills") == 1


def test_second_load_hits_l1(env, mem):
    run_op(env, mem.load(0, 0x1000))
    t0 = env.now
    run_op(env, mem.load(0, 0x1000))
    assert env.now - t0 == mem.config.l1d.hit_latency
    assert mem.counters.get("load_hits") == 1


def test_remote_dirty_line_supplied_cache_to_cache(env, mem):
    run_op(env, mem.store(0, 0x2000, 7))
    assert mem.l1[0].state_of(0x2000) is MoesiState.MODIFIED
    value = run_op(env, mem.load(1, 0x2000))
    assert value == 7
    assert mem.counters.get("c2c_transfers") == 1
    # Supplier degrades to OWNED, requester takes SHARED.
    assert mem.l1[0].state_of(0x2000) is MoesiState.OWNED
    assert mem.l1[1].state_of(0x2000) is MoesiState.SHARED


def test_store_invalidates_sharers(env, mem):
    run_op(env, mem.load(0, 0x3000))
    run_op(env, mem.load(1, 0x3000))
    run_op(env, mem.store(1, 0x3000, 9))
    assert mem.l1[0].state_of(0x3000) is MoesiState.INVALID
    assert mem.l1[1].state_of(0x3000) is MoesiState.MODIFIED
    assert mem.counters.get("upgrades") == 1


def test_exclusive_fill_when_no_sharers(env, mem):
    run_op(env, mem.load(0, 0x4000))
    assert mem.l1[0].state_of(0x4000) is MoesiState.EXCLUSIVE


def test_shared_fill_when_other_sharer(env, mem):
    run_op(env, mem.load(0, 0x5000))
    run_op(env, mem.load(1, 0x5000))
    assert mem.l1[1].state_of(0x5000) is MoesiState.SHARED


def test_silent_upgrade_exclusive_to_modified(env, mem):
    run_op(env, mem.load(0, 0x6000))  # E
    bus_before = mem.network.total_packets
    run_op(env, mem.store(0, 0x6000, 1))
    assert mem.network.total_packets == bus_before  # silent E->M
    assert mem.l1[0].state_of(0x6000) is MoesiState.MODIFIED


def test_cas_success_and_failure(env, mem):
    run_op(env, mem.store(0, 0x7000, 5))
    assert run_op(env, mem.cas(1, 0x7000, 5, 6)) is True
    assert run_op(env, mem.cas(0, 0x7000, 5, 7)) is False
    assert mem.peek_value(0x7000) == 6


def test_fetch_add_returns_previous(env, mem):
    assert run_op(env, mem.fetch_add(0, 0x8000, 3)) == 0
    assert run_op(env, mem.fetch_add(1, 0x8000, 3)) == 3
    assert mem.peek_value(0x8000) == 6


def test_ping_pong_lines_bounce(env, mem):
    """Alternating writers force repeated invalidations (Figure 1a cost)."""
    for i in range(6):
        run_op(env, mem.store(i % 2, 0x9000, i))
    # Each ownership change after the first is an upgrade or RdX.
    assert mem.counters.get("store_misses") + mem.counters.get("upgrades") >= 5
    mem.check_coherence_invariant()


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["load", "store", "cas", "fadd"]),
            st.integers(min_value=0, max_value=3),       # core
            st.integers(min_value=0, max_value=7),       # line index
            st.integers(min_value=0, max_value=100),     # value
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_coherence_matches_reference_model(ops):
    """Property: sequential op streams match a plain dict memory model and
    never violate the single-writer/multiple-reader invariant."""
    env = Environment()
    mem = CoherentMemorySystem(env, SystemConfig(num_cores=4))
    reference = {}
    for op, core, line, value in ops:
        addr = 0x10000 + line * 64
        if op == "load":
            got = run_op(env, mem.load(core, addr))
            assert got == reference.get(addr, 0)
        elif op == "store":
            run_op(env, mem.store(core, addr, value))
            reference[addr] = value
        elif op == "cas":
            expected = reference.get(addr, 0)
            assert run_op(env, mem.cas(core, addr, expected, value)) is True
            reference[addr] = value
        else:
            got = run_op(env, mem.fetch_add(core, addr, value))
            assert got == reference.get(addr, 0)
            reference[addr] = got + value
        mem.check_coherence_invariant()
