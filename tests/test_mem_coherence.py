"""Unit and property tests for the MOESI coherence substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.mem.cache import MoesiState
from repro.mem.coherence import CoherentMemorySystem
from repro.sim.kernel import Environment


@pytest.fixture
def mem(env):
    return CoherentMemorySystem(env, SystemConfig(num_cores=4))


def run_op(env, gen):
    """Drive a yield-from memory operation to completion."""
    proc = env.process(gen)
    return env.run_until_complete(proc)


def test_load_returns_stored_value(env, mem):
    run_op(env, mem.store(0, 0x1000, 42))
    assert run_op(env, mem.load(0, 0x1000)) == 42


def test_cold_load_goes_to_dram(env, mem):
    run_op(env, mem.load(0, 0x1000))
    assert mem.dram.reads == 1
    assert mem.counters.get("dram_fills") == 1


def test_second_load_hits_l1(env, mem):
    run_op(env, mem.load(0, 0x1000))
    t0 = env.now
    run_op(env, mem.load(0, 0x1000))
    assert env.now - t0 == mem.config.l1d.hit_latency
    assert mem.counters.get("load_hits") == 1


def test_remote_dirty_line_supplied_cache_to_cache(env, mem):
    run_op(env, mem.store(0, 0x2000, 7))
    assert mem.l1[0].state_of(0x2000) is MoesiState.MODIFIED
    value = run_op(env, mem.load(1, 0x2000))
    assert value == 7
    assert mem.counters.get("c2c_transfers") == 1
    # Supplier degrades to OWNED, requester takes SHARED.
    assert mem.l1[0].state_of(0x2000) is MoesiState.OWNED
    assert mem.l1[1].state_of(0x2000) is MoesiState.SHARED


def test_store_invalidates_sharers(env, mem):
    run_op(env, mem.load(0, 0x3000))
    run_op(env, mem.load(1, 0x3000))
    run_op(env, mem.store(1, 0x3000, 9))
    assert mem.l1[0].state_of(0x3000) is MoesiState.INVALID
    assert mem.l1[1].state_of(0x3000) is MoesiState.MODIFIED
    assert mem.counters.get("upgrades") == 1


def test_exclusive_fill_when_no_sharers(env, mem):
    run_op(env, mem.load(0, 0x4000))
    assert mem.l1[0].state_of(0x4000) is MoesiState.EXCLUSIVE


def test_shared_fill_when_other_sharer(env, mem):
    run_op(env, mem.load(0, 0x5000))
    run_op(env, mem.load(1, 0x5000))
    assert mem.l1[1].state_of(0x5000) is MoesiState.SHARED


def test_silent_upgrade_exclusive_to_modified(env, mem):
    run_op(env, mem.load(0, 0x6000))  # E
    bus_before = mem.network.total_packets
    run_op(env, mem.store(0, 0x6000, 1))
    assert mem.network.total_packets == bus_before  # silent E->M
    assert mem.l1[0].state_of(0x6000) is MoesiState.MODIFIED


def test_cas_success_and_failure(env, mem):
    run_op(env, mem.store(0, 0x7000, 5))
    assert run_op(env, mem.cas(1, 0x7000, 5, 6)) is True
    assert run_op(env, mem.cas(0, 0x7000, 5, 7)) is False
    assert mem.peek_value(0x7000) == 6


def test_fetch_add_returns_previous(env, mem):
    assert run_op(env, mem.fetch_add(0, 0x8000, 3)) == 0
    assert run_op(env, mem.fetch_add(1, 0x8000, 3)) == 3
    assert mem.peek_value(0x8000) == 6


def test_ping_pong_lines_bounce(env, mem):
    """Alternating writers force repeated invalidations (Figure 1a cost)."""
    for i in range(6):
        run_op(env, mem.store(i % 2, 0x9000, i))
    # Each ownership change after the first is an upgrade or RdX.
    assert mem.counters.get("store_misses") + mem.counters.get("upgrades") >= 5
    mem.check_coherence_invariant()


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["load", "store", "cas", "fadd"]),
            st.integers(min_value=0, max_value=3),       # core
            st.integers(min_value=0, max_value=7),       # line index
            st.integers(min_value=0, max_value=100),     # value
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_coherence_matches_reference_model(ops):
    """Property: sequential op streams match a plain dict memory model and
    never violate the single-writer/multiple-reader invariant."""
    env = Environment()
    mem = CoherentMemorySystem(env, SystemConfig(num_cores=4))
    reference = {}
    for op, core, line, value in ops:
        addr = 0x10000 + line * 64
        if op == "load":
            got = run_op(env, mem.load(core, addr))
            assert got == reference.get(addr, 0)
        elif op == "store":
            run_op(env, mem.store(core, addr, value))
            reference[addr] = value
        elif op == "cas":
            expected = reference.get(addr, 0)
            assert run_op(env, mem.cas(core, addr, expected, value)) is True
            reference[addr] = value
        else:
            got = run_op(env, mem.fetch_add(core, addr, value))
            assert got == reference.get(addr, 0)
            reference[addr] = got + value
        mem.check_coherence_invariant()


# --------------------------------------------------------- coverage top-ups
def test_peek_and_poke_bypass_simulated_time(env, mem):
    mem.poke_value(0x9000, 123)
    assert mem.peek_value(0x9000) == 123
    assert mem.peek_value(0x9999) == 0  # unwritten reads as zero
    assert env.now == 0  # no cycles consumed


def test_store_miss_supplied_cache_to_cache(env, mem):
    run_op(env, mem.store(0, 0x4000, 5))  # dirty in core 0
    run_op(env, mem.store(1, 0x4000, 6))  # BusRdX, remote M supplies
    assert mem.counters.get("c2c_transfers") == 1
    assert mem.counters.get("store_misses") == 2  # cold miss + BusRdX
    assert mem.l1[0].state_of(0x4000) is MoesiState.INVALID
    assert mem.l1[1].state_of(0x4000) is MoesiState.MODIFIED


def test_dirty_victim_writes_back_to_l2(env, mem):
    # Fill one L1 set past associativity with MODIFIED lines: stride =
    # num_sets * line_bytes keeps every address in the same set.
    geometry = mem.config.l1d
    stride = geometry.num_sets * geometry.line_bytes
    for i in range(geometry.associativity + 1):
        run_op(env, mem.store(0, 0x100000 + i * stride, i))
    assert mem.counters.get("writebacks") >= 1
    # The victim's line is now in L2, so re-loading it hits there.
    run_op(env, mem.load(0, 0x100000))
    assert mem.counters.get("l2_hits") >= 1


def test_load_after_remote_clean_copy_degrades_exclusive(env, mem):
    run_op(env, mem.load(0, 0x5000))  # EXCLUSIVE in core 0
    run_op(env, mem.load(1, 0x5000))  # supplier degrades E -> S
    assert mem.l1[0].state_of(0x5000) is MoesiState.SHARED
    assert mem.l1[1].state_of(0x5000) is MoesiState.SHARED


def test_invariant_rejects_multiple_writable_copies(env, mem):
    from repro.errors import ProtocolError

    run_op(env, mem.store(0, 0x6000, 1))
    mem.l1[1].install(0x6000, MoesiState.MODIFIED)  # corrupt on purpose
    with pytest.raises(ProtocolError, match="multiple writable"):
        mem.check_coherence_invariant()


def test_invariant_rejects_writable_plus_sharer(env, mem):
    from repro.errors import ProtocolError

    run_op(env, mem.store(0, 0x6100, 1))
    mem.l1[1].install(0x6100, MoesiState.SHARED)
    with pytest.raises(ProtocolError, match="coexists"):
        mem.check_coherence_invariant()


def test_invariant_rejects_multiple_owners(env, mem):
    from repro.errors import ProtocolError

    mem.l1[0].install(0x6200, MoesiState.OWNED)
    mem.l1[1].install(0x6200, MoesiState.OWNED)
    with pytest.raises(ProtocolError, match="multiple owners"):
        mem.check_coherence_invariant()


def test_coherence_over_mesh_network(env):
    # The NoC path: coherence requests travel core -> hub (SRD shard 0's
    # node) and c2c transfers pay core-to-core distance.
    from repro.mem.bus import CoherenceNetwork

    config = SystemConfig(num_cores=16, topology="mesh")
    net = CoherentMemorySystem(env, config,
                               network=CoherenceNetwork(env, config))
    run_op(env, net.store(0, 0x7000, 9))
    far = run_op(env, net.load(15, 0x7000))  # c2c across the die
    assert far == 9
    assert net.counters.get("c2c_transfers") == 1
    assert net.network.wait_cycles >= 0
    assert net.network.links()  # real per-link fabric underneath
    net.check_coherence_invariant()
