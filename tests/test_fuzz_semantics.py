"""Property-based semantic fuzzing (Hypothesis).

Randomized producer/consumer programs — arbitrary small topologies, message
counts and compute delays — must satisfy every live invariant *and* match
the functional queue model, on every device flavor.  Hypothesis shrinks a
failing case to a minimal :class:`~repro.verify.fuzz.ProgramSpec`, which
replays deterministically via ``run_fuzz_case``.

The module skips cleanly when Hypothesis is not installed (it is an
optional dev dependency; the simulator itself never imports it).
"""

from __future__ import annotations

import pytest

from repro.verify.fuzz import (
    HAVE_HYPOTHESIS,
    FuzzWorkload,
    LinkSpec,
    ProgramSpec,
    run_fuzz_case,
    run_fuzz_differential,
)

if not HAVE_HYPOTHESIS:  # pragma: no cover - environment dependent
    pytest.skip("hypothesis is not installed", allow_module_level=True)

from hypothesis import HealthCheck, given, settings

from repro.verify.fuzz import program_specs
from repro.eval.runner import setting_by_name

FUZZ_PROFILE = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,  # fixed example sequence: deterministic in CI
    suppress_health_check=[HealthCheck.too_slow],
)


@given(spec=program_specs())
@FUZZ_PROFILE
def test_fuzzed_programs_hold_all_invariants_under_tuned(spec):
    """Checker + watchdog + oracle must stay clean on arbitrary programs."""
    result = run_fuzz_case(spec, setting_by_name("tuned"))
    assert result.ok, result.mismatches() or result.violations


@given(spec=program_specs())
@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
def test_fuzzed_programs_agree_across_devices(spec):
    """VL and SPAMeR(0delay) deliver identical canonical streams."""
    mismatches = run_fuzz_differential(
        spec, [setting_by_name("vl"), setting_by_name("0delay")]
    )
    assert not mismatches, "\n".join(mismatches)


# ------------------------------------------------------------- regressions
#: Hand-picked specs that exercise the paths fuzzing has caught bugs in:
#: wrap-around pressure (messages >> lines, retried speculative fills) and
#: M:N sharding with contending producers.
REGRESSION_SPECS = [
    ProgramSpec(links=(LinkSpec(1, 1, 10),), producer_compute=0,
                consumer_compute=400),
    ProgramSpec(links=(LinkSpec(2, 2, 8),), producer_compute=0,
                consumer_compute=100),
    ProgramSpec(links=(LinkSpec(1, 2, 6), LinkSpec(2, 1, 6)),
                producer_compute=50, consumer_compute=50),
]


@pytest.mark.parametrize("spec", REGRESSION_SPECS, ids=lambda s: s.label())
@pytest.mark.parametrize("name", ["vl", "0delay", "tuned"])
def test_regression_specs_stay_clean(spec, name):
    result = run_fuzz_case(spec, setting_by_name(name))
    assert result.ok, result.mismatches() or result.violations
    assert result.stream.total_delivered() == sum(
        link.total_messages for link in spec.links
    )


def test_fuzz_workload_validates_conservation():
    """FuzzWorkload's own produced/consumed bookkeeping is exercised."""
    spec = ProgramSpec(links=(LinkSpec(1, 1, 3),))
    workload = FuzzWorkload(spec)
    assert workload.num_threads() == 2
    assert spec.label().startswith("fuzz[")
