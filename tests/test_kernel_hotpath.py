"""Hot-path regression tests: `__slots__` coverage, polymorphic callbacks,
``call_later`` edge cases, and the ladder scheduler's tier mechanics.

The allocation-free dispatch work (PERFORMANCE.md §5) rests on three
properties that nothing else in the suite pins directly:

* every per-event / per-component class in ``sim/`` carries ``__slots__``
  (an instance ``__dict__`` would be the kernel's largest allocation);
* the ``Event.callbacks`` slot is polymorphic (None | callable | list |
  PROCESSED) and all four states behave identically to the old
  always-a-list protocol;
* the ladder's spill/refill machinery preserves exact dispatch order
  around its spine-capacity boundary.
"""

from __future__ import annotations

import inspect

import pytest

import repro.sim.event
import repro.sim.hooks
import repro.sim.process
import repro.sim.request
import repro.sim.resources
import repro.sim.rng
import repro.sim.stats
import repro.sim.trace
import repro.sim.transaction
from repro.errors import SchedulingError
from repro.sim.event import Event, PROCESSED
from repro.sim.kernel import Environment, NORMAL, URGENT
from repro.sim.sched import (
    LADDER_REFILL_TARGET,
    LADDER_SPINE_CAP,
    LadderScheduler,
)


# ------------------------------------------------------------ __slots__ audit
#: Modules whose classes must all be slotted (allocated per event, per
#: message hop, or per component — see each module's docstring).
_AUDITED_MODULES = [
    repro.sim.event,
    repro.sim.process,
    repro.sim.resources,
    repro.sim.hooks,
    repro.sim.stats,
    repro.sim.trace,
    repro.sim.request,
    repro.sim.transaction,
    repro.sim.rng,
]


def _audited_classes():
    for module in _AUDITED_MODULES:
        for name, cls in inspect.getmembers(module, inspect.isclass):
            if cls.__module__ != module.__name__:
                continue  # re-exported import, audited in its own module
            if issubclass(cls, (Exception, tuple)) or hasattr(cls, "_member_map_"):
                continue  # enums and NamedTuples manage their own layout
            yield pytest.param(cls, id=f"{module.__name__}.{name}")


@pytest.mark.parametrize("cls", list(_audited_classes()))
def test_sim_classes_define_slots(cls):
    """No class in the audited modules may reintroduce a per-instance dict.

    ``__slots__`` only suppresses the dict if every class in the MRO
    (below ``object``) defines it, so the assertion checks the layout
    outcome — ``__dict__`` must be absent from instances — not just the
    attribute's presence on one class.
    """
    for klass in cls.__mro__[:-1]:
        assert "__slots__" in klass.__dict__, (
            f"{klass.__qualname__} (in {cls.__qualname__}'s MRO) lacks "
            f"__slots__ — instances of {cls.__qualname__} would carry a dict"
        )


# --------------------------------------------------- polymorphic callbacks slot
def test_event_with_no_subscribers_dispatches(env):
    ev = env.event()
    ev.succeed("payload")
    env.run()
    assert ev.processed and ev.callbacks is PROCESSED


def test_single_subscriber_needs_no_list(env):
    got = []
    ev = env.event()
    ev.subscribe(lambda e: got.append(e.value))
    assert callable(ev.callbacks) and not isinstance(ev.callbacks, list)
    ev.succeed(41)
    env.run()
    assert got == [41]


def test_second_subscriber_promotes_to_list(env):
    got = []
    ev = env.event()
    ev.subscribe(lambda e: got.append("a"))
    ev.subscribe(lambda e: got.append("b"))
    ev.subscribe(lambda e: got.append("c"))
    assert isinstance(ev.callbacks, list) and len(ev.callbacks) == 3
    ev.succeed()
    env.run()
    assert got == ["a", "b", "c"]


def test_late_subscribe_after_processed_still_delivers(env):
    ev = env.event()
    ev.succeed("v")
    env.run()
    got = []
    ev.subscribe(lambda e: got.append(e.value))
    assert got == []  # delivery goes through the queue, not inline
    env.run()
    assert got == ["v"]


def test_subscribe_during_dispatch_of_same_event(env):
    """A callback adding another subscriber to its own (now PROCESSED)
    event must schedule it, not mutate the retired slot."""
    got = []

    def first(e):
        got.append("first")
        e.subscribe(lambda e2: got.append("second"))

    ev = env.event()
    ev.subscribe(first)
    ev.succeed()
    env.run()
    assert got == ["first", "second"]


# ----------------------------------------------------------- call_later edges
def test_call_later_negative_delay_rejected(env):
    with pytest.raises(SchedulingError, match="past"):
        env.call_later(-1, lambda arg: None)


def test_call_later_zero_delay_urgent_beats_normal(env):
    """Two zero-delay calls for the current cycle: the URGENT one runs
    first even though it was scheduled second (priority before seq)."""
    order = []
    env.call_later(0, lambda arg: order.append("normal"), priority=NORMAL)
    env.call_later(0, lambda arg: order.append("urgent"), priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_call_later_zero_delay_runs_in_current_cycle(env):
    """run(until=now) is a zero-width window: a zero-delay call fires
    inside it and the clock does not move."""
    fired = []
    env.timeout(3)
    env.run()
    env.call_later(0, lambda arg: fired.append(env.now))
    env.timeout(1)  # strictly later; must survive the window
    env.run(until=env.now)
    assert fired == [3] and env.now == 3 and env.queue_length == 1


def test_call_later_urgent_preempts_partially_drained_batch(env):
    """A NORMAL callback scheduling an URGENT call for the *same* cycle:
    the URGENT call must run before the rest of the NORMAL batch (the
    bucket schedulers' preempt-and-reclaim path; the heap and ladder get
    it from plain entry ordering)."""
    order = []

    def first(arg):
        order.append("n1")
        env.call_later(0, lambda a: order.append("urgent"), priority=URGENT)

    env.call_later(5, first, priority=NORMAL)
    env.call_later(5, lambda a: order.append("n2"), priority=NORMAL)
    env.call_later(5, lambda a: order.append("n3"), priority=NORMAL)
    env.run()
    assert order == ["n1", "urgent", "n2", "n3"]


def test_call_later_reclaim_interleaves_repeatedly(env):
    """Repeated mid-batch preemption: every NORMAL callback spawns an
    URGENT one, forcing a reclaim per dispatch.  Order must match the
    heap's exactly (the fixture parametrizes over all schedulers, so this
    is the differential assertion in miniature)."""
    order = []

    def make_normal(i):
        def cb(arg):
            order.append(("n", i))
            env.call_later(0, lambda a, i=i: order.append(("u", i)),
                           priority=URGENT)
        return cb

    for i in range(4):
        env.call_later(2, make_normal(i), priority=NORMAL)
    env.run()
    assert order == [
        ("n", 0), ("u", 0), ("n", 1), ("u", 1),
        ("n", 2), ("u", 2), ("n", 3), ("u", 3),
    ]


def test_call_later_passes_argument(env):
    got = []
    env.call_later(4, got.append, arg={"k": 1})
    env.run()
    assert got == [{"k": 1}] and env.now == 4


# ------------------------------------------------------------- ladder internals
def test_ladder_spill_cuts_on_time_boundary():
    sched = LadderScheduler()
    seq = 0
    for t in range(2 * LADDER_SPINE_CAP):
        sched.push((t, NORMAL, seq, None))
        seq += 1
    assert sched.boundary < 2 * LADDER_SPINE_CAP  # a spill happened
    spine_times = [e[0] for e in sched.spine]
    assert spine_times == sorted(spine_times)
    assert all(t < sched.boundary for t in spine_times)
    # Lanes hold exactly the complement, all at/past the boundary.
    assert len(sched) == 2 * LADDER_SPINE_CAP


def test_ladder_single_cycle_burst_never_spills():
    """All entries in one cycle: no time boundary exists to cut on, so
    the spine legitimately exceeds the cap rather than splitting a cycle."""
    sched = LadderScheduler()
    n = LADDER_SPINE_CAP + 50
    for seq in range(n):
        sched.push((7, NORMAL, seq, None))
    assert len(sched.spine) == n
    assert [e[2] for e in sched.spine] == list(range(n))


def test_ladder_refill_restores_order_and_boundary():
    sched = LadderScheduler()
    seq = 0
    for t in range(1000):
        sched.push((t, NORMAL, seq, None))
        seq += 1
    popped = [sched.pop() for _ in range(1000)]
    assert popped == sorted(popped)
    assert len(sched) == 0
    with pytest.raises(IndexError):
        sched.pop()


def test_ladder_refill_moves_whole_cycles():
    """A cycle denser than the refill target still moves as one unit —
    splitting it would strand same-cycle entries behind the boundary."""
    sched = LadderScheduler()
    dense = LADDER_REFILL_TARGET * 3
    seq = 0
    # Force the lanes into existence with a spread first.
    for t in range(LADDER_SPINE_CAP + 10):
        sched.push((t, NORMAL, seq, None))
        seq += 1
    burst_t = sched.boundary + 1
    for _ in range(dense):
        sched.push((burst_t, NORMAL, seq, None))
        seq += 1
    out = []
    while len(sched):
        out.append(sched.pop())
    assert out == sorted(out)
    assert len(out) == LADDER_SPINE_CAP + 10 + dense


def test_ladder_urgent_insorts_ahead():
    env = Environment(scheduler="ladder")
    order = []
    env.call_later(3, lambda a: order.append("n"), priority=NORMAL)
    env.call_later(3, lambda a: order.append("u"), priority=URGENT)
    env.call_later(3, lambda a: order.append("custom-early"), priority=-1)
    env.call_later(3, lambda a: order.append("custom-late"), priority=9)
    env.run()
    assert order == ["custom-early", "u", "n", "custom-late"]


def test_ladder_deep_pending_dispatch_matches_heap():
    """5k entries across a wide time range — deep enough to exercise
    spill, lane accumulation, and many refills — must dispatch in the
    heap's exact order."""

    def run_one(name):
        env = Environment(scheduler=name)
        out = []
        for i in range(5000):
            env.call_later((i * 131) % 997, out.append, arg=i)
        env.run()
        return out, env.now, env.events_processed

    assert run_one("ladder") == run_one("heap")
