"""Acceptance tests for the registry architecture.

1. A third routing-device flavor is added *in this file alone* — one
   ``@register_device`` class, zero edits to ``system.py``, ``runner.py``
   or ``cli.py`` — and is immediately buildable, runnable and visible to
   the CLI.
2. The refactor is bit-identical: ``SPAMeR(tuned)`` metrics for a pinned
   workload/seed pair match the values captured on the pre-refactor tree.
"""

import dataclasses

import pytest

from repro import System
from repro.registry import device_names, register_device, unregister_device
from repro.vlink.vlrd import VirtualLinkRoutingDevice


@pytest.fixture
def ideal_device():
    """Register a zero-latency device for the duration of one test."""

    @register_device("ideal", description="zero-latency mapping pipeline")
    class IdealRoutingDevice(VirtualLinkRoutingDevice):
        kind = "IDEAL"

        def _stage_latency(self) -> int:
            return 0

    try:
        yield IdealRoutingDevice
    finally:
        unregister_device("ideal")


def _run_ping_pong(system, messages=16):
    q = system.library.create_queue()
    prod = system.library.open_producer(q, core_id=0)
    cons = system.library.open_consumer(q, core_id=1)

    def producer(ctx):
        for i in range(messages):
            yield from ctx.push(prod, i)
            yield from ctx.compute(50)

    def consumer(ctx):
        for _ in range(messages):
            yield from ctx.pop(cons)
            yield from ctx.compute(30)

    system.spawn(0, producer, "producer")
    system.spawn(1, consumer, "consumer")
    return system.run_to_completion()


def test_third_device_builds_with_no_core_edits(ideal_device):
    assert "ideal" in device_names()
    system = System(device="ideal")
    assert isinstance(system.device, ideal_device)
    assert system.device.registry_name == "ideal"
    assert not system.supports_speculation


def test_third_device_runs_a_workload(ideal_device):
    ideal = System(device="ideal")
    baseline = System(device="vl")
    ideal_cycles = _run_ping_pong(ideal)
    baseline_cycles = _run_ping_pong(baseline)
    assert ideal.messages_delivered() == 16
    # Zero pipeline latency must not be slower than the 3-stage baseline.
    assert ideal_cycles <= baseline_cycles


def test_third_device_reaches_runner_and_cli(ideal_device):
    from repro.cli import build_parser
    from repro.eval.runner import available_setting_names, setting_by_name

    assert "ideal" in available_setting_names()
    setting = setting_by_name("ideal")
    assert setting.device == "ideal" and setting.algorithm is None
    # The CLI's --setting choices are registry-driven.
    args = build_parser().parse_args(["run", "ping-pong", "--setting", "ideal"])
    assert args.setting == "ideal"


#: Metrics of run_workload("ping-pong", SPAMeR(tuned), scale=0.1,
#: seed=0xC0FFEE) captured on the pre-refactor tree.  The registry /
#: pipeline / transaction / hook refactor must not move a single tick.
PRE_REFACTOR_GOLDEN = {
    "workload": "ping-pong",
    "setting": "SPAMeR(tuned)",
    "exec_cycles": 45122,
    "messages_delivered": 160,
    "messages_produced": 160,
    "push_attempts": 160,
    "push_failures": 0,
    "ondemand_pushes": 0,
    "ondemand_failures": 0,
    "spec_pushes": 160,
    "spec_failures": 0,
    "bus_busy_cycles": 960,
    "bus_packets": 320,
    "request_packets": 0,
    "avg_line_empty": 43479.25,
    "avg_line_valid": 1642.75,
    "latency_mean": 122.19999999999997,
    "latency_p50": 121.5,
    "latency_p99": 130.0,
    "extra": {"buffered": 0, "requests_dropped": 0, "spec_selected": 160},
}


def test_refactor_is_bit_identical_to_pre_refactor_metrics():
    from repro.eval.runner import run_workload, standard_settings

    tuned = standard_settings()[3]
    assert tuned.label == "SPAMeR(tuned)"
    metrics = run_workload("ping-pong", tuned, scale=0.1, seed=0xC0FFEE)
    assert dataclasses.asdict(metrics) == PRE_REFACTOR_GOLDEN
