"""Integration tests: paper-shape assertions across the full stack.

These are the "does the reproduction reproduce" tests — they assert the
qualitative claims of Section 4.3/4.4 at reduced scale:

* speedup ordering across benchmarks (FIR largest; ping-pong/sweep ≈ 1);
* failure-rate ordering (0-delay ≫ adaptive; adaptive < 50 %; VL ≈ 0);
* bus-utilization relationships (0-delay highest among SPAMeR settings);
* Figure 9: SPAMeR cuts consumer-line empty cycles where it wins.
"""

import pytest

from repro.eval import comparison_experiment, standard_settings

SCALE = 0.12

VL, ZERO, ADAPT, TUNED = [s.label for s in standard_settings()]


@pytest.fixture(scope="module")
def grid():
    """One shared comparison grid for all shape assertions."""
    return comparison_experiment(scale=SCALE)


def test_every_cell_conserves_messages(grid):
    for w, per_setting in grid.metrics.items():
        for label, m in per_setting.items():
            assert m.messages_delivered == m.messages_produced > 0, (w, label)


def test_fir_has_largest_speedup(grid):
    sp = grid.speedups()
    fir = sp["FIR"][ZERO]
    assert fir == max(sp[w][ZERO] for w in sp)
    assert fir > 1.5


def test_pingpong_and_sweep_gain_little(grid):
    """Producer-critical-path benchmarks: ≈ no gain (Section 4.3)."""
    sp = grid.speedups()
    for w in ("ping-pong", "sweep"):
        for s in (ZERO, ADAPT, TUNED):
            assert sp[w][s] < 1.2, (w, s, sp[w][s])


def test_speedup_benchmarks_beat_baseline(grid):
    sp = grid.speedups()
    for w in ("halo", "incast", "pipeline", "firewall", "FIR"):
        assert sp[w][ZERO] > 1.1, (w, sp[w][ZERO])


def test_geomean_in_paper_band(grid):
    """Paper: 1.45/1.25/1.33x.  The substrate differs; assert the band."""
    gm = grid.geomean_speedups()
    for s in (ZERO, ADAPT, TUNED):
        assert 1.15 <= gm[s] <= 1.6, (s, gm[s])


def test_zero_delay_failure_rates_high_where_backlogged(grid):
    fr = grid.failure_rates()
    high = [w for w in fr if fr[w][ZERO] > 0.4]
    assert len(high) >= 3  # "super high failure rates on most benchmarks"
    # ... but not on ping-pong and sweep (Section 4.3).
    assert fr["ping-pong"][ZERO] < 0.05
    assert fr["sweep"][ZERO] < 0.05


def test_adaptive_keeps_failures_under_half(grid):
    """'The adaptive delay algorithm manages to lower the failure rate
    under 50% on all the benchmarks.'"""
    fr = grid.failure_rates()
    for w in fr:
        assert fr[w][ADAPT] < 0.5, (w, fr[w][ADAPT])


def test_vl_failure_rate_near_zero(grid):
    fr = grid.failure_rates()
    for w in fr:
        assert fr[w][VL] < 0.05, (w, fr[w][VL])


def test_zero_delay_costs_most_bandwidth_where_it_fails(grid):
    bu = grid.bus_utilizations()
    fr = grid.failure_rates()
    for w in bu:
        if fr[w][ZERO] > 0.4:
            assert bu[w][ZERO] >= bu[w][ADAPT], w


def test_spamer_sends_fewer_packets_than_vl(grid):
    """'SPAMeR changes the two-way traffic (request and data push) in VL to
    one-way' — with failure rate under 50% it sends equal or fewer packets
    (Section 4.3).  (Utilization can still read higher because the run is
    shorter.)"""
    fr = grid.failure_rates()
    for w, per_setting in grid.metrics.items():
        if fr[w][ADAPT] < 0.5:
            assert per_setting[ADAPT].bus_packets <= per_setting[VL].bus_packets, w


def test_spamer_cuts_empty_cycles_where_it_wins(grid):
    """Figure 9: the win comes from removing consumer-line empty time."""
    sp = grid.speedups()
    br = grid.breakdown()
    for w in ("incast", "FIR", "firewall"):
        if sp[w][ZERO] > 1.2:
            vl_empty, _ = br[w][VL]
            sp_empty, _ = br[w][ZERO]
            assert sp_empty < vl_empty, w


def test_breakdown_sums_to_execution_time(grid):
    br = grid.breakdown()
    for w, per_setting in grid.metrics.items():
        for label, m in per_setting.items():
            empty, nonempty = br[w][label]
            assert empty + nonempty == pytest.approx(m.exec_cycles, abs=1)


def test_spec_pushes_only_on_spamer(grid):
    for w, per_setting in grid.metrics.items():
        assert per_setting[VL].spec_pushes == 0
        for label in (ZERO, ADAPT, TUNED):
            assert per_setting[label].spec_pushes > 0, (w, label)
