"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment


def test_process_requires_generator(env):
    def not_a_generator():
        return 5

    with pytest.raises(SimulationError, match="generator"):
        env.process(not_a_generator())  # returns int, not generator


def test_process_receives_event_values(env):
    got = []

    def work():
        value = yield env.timeout(5, value="five")
        got.append(value)

    env.process(work())
    env.run()
    assert got == ["five"]


def test_process_is_joinable(env):
    def child():
        yield env.timeout(10)
        return 99

    def parent():
        result = yield env.process(child())
        return result + 1

    proc = env.process(parent())
    assert env.run_until_complete(proc) == 100


def test_exception_thrown_into_process(env):
    caught = []

    def work():
        ev = env.event()
        env.timeout(1).subscribe(lambda _e: ev.fail(ValueError("delivered")))
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(work())
    env.run()
    assert caught == ["delivered"]


def test_uncaught_process_exception_fails_process(env):
    def work():
        yield env.timeout(1)
        raise RuntimeError("oops")

    proc = env.process(work())
    proc.defuse()
    env.run()
    assert proc.triggered
    assert not proc.ok
    assert isinstance(proc.value, RuntimeError)


def test_yielding_non_event_fails_with_helpful_error(env):
    def work():
        yield 42

    proc = env.process(work())
    proc.defuse()
    env.run()
    assert not proc.ok
    assert "yield" in str(proc.value)


def test_yielding_foreign_event_rejected(env):
    other = Environment()

    def work():
        yield other.timeout(1)

    proc = env.process(work())
    proc.defuse()
    env.run()
    assert not proc.ok
    assert "different Environment" in str(proc.value)


def test_process_is_alive_until_generator_returns(env):
    def work():
        yield env.timeout(10)

    proc = env.process(work())
    assert proc.is_alive
    env.run(until=5)
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_target_reports_waited_event(env):
    timeout_holder = []

    def work():
        t = env.timeout(50)
        timeout_holder.append(t)
        yield t

    proc = env.process(work())
    env.run(until=1)
    assert proc.target is timeout_holder[0]


def test_two_processes_interleave(env):
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((env.now, name))

    env.process(ticker("a", 10))
    env.process(ticker("b", 15))
    env.run()
    # At t=30 both tick; b's timeout was scheduled earlier (t=15 vs t=20),
    # so the deterministic FIFO tiebreak fires b first.
    assert log == [
        (10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")
    ]


def test_yield_from_subroutine(env):
    """Processes can factor logic into sub-generators with yield from."""

    def sub():
        yield env.timeout(5)
        return "sub-result"

    def work():
        value = yield from sub()
        return value.upper()

    proc = env.process(work())
    assert env.run_until_complete(proc) == "SUB-RESULT"
