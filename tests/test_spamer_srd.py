"""Unit tests for the SPAMeR routing device and security policy."""

import pytest

from repro.config import SystemConfig
from repro.errors import RegistrationError
from repro.mem.bus import CoherenceNetwork
from repro.mem.address import Segment
from repro.sim.kernel import Environment
from repro.spamer.delay import FixedDelay, NeverPush, ZeroDelay
from repro.spamer.security import SecurityPolicy
from repro.spamer.srd import SpamerRoutingDevice
from repro.vlink.endpoint import ConsumerEndpoint
from repro.vlink.packets import Message


def make_srd(env, algorithm=None, security=None, **overrides):
    cfg = SystemConfig(num_cores=4, **overrides)
    return SpamerRoutingDevice(
        env, cfg, CoherenceNetwork(env, cfg), algorithm or ZeroDelay(),
        security=security,
    )


def make_endpoint(env, endpoint_id=0, sqi=1, num_lines=2, core_id=0):
    seg = Segment(0x10000 * (endpoint_id + 1), 4096)
    return ConsumerEndpoint(env, endpoint_id, sqi, seg, core_id,
                            num_lines, spec_enabled=True)


def push(env, device, sqi=1, payload="data", txn=0):
    device.accept_push(Message(payload=payload, sqi=sqi, producer_id=0, seq=0,
                               transaction_id=txn, produced_at=env.now))


def test_registration_seeds_spec_head(env):
    srd = make_srd(env)
    ep = make_endpoint(env)
    srd.register_spec_target(ep)
    row = srd.linktab.row(1)
    assert row.spec_head is not None
    assert srd.specbuf.entry(row.spec_head).endpoint is ep


def test_legacy_endpoint_registration_rejected(env):
    srd = make_srd(env)
    seg = Segment(0x1000, 4096)
    legacy = ConsumerEndpoint(env, 0, 1, seg, 0, 1, spec_enabled=False)
    with pytest.raises(RegistrationError):
        srd.register_spec_target(legacy)


def test_speculative_push_without_request(env):
    srd = make_srd(env)
    ep = make_endpoint(env)
    srd.register_spec_target(ep)
    push(env, srd, payload="spec!")
    env.run()
    assert ep.lines[0].data.payload == "spec!"
    assert srd.stats.get("spec_pushes") == 1
    assert srd.stats.get("spec_hits") == 1
    assert srd.stats.get("ondemand_pushes") == 0


def test_offset_advances_on_hit_only(env):
    srd = make_srd(env)
    ep = make_endpoint(env, num_lines=2)
    srd.register_spec_target(ep)
    entry = srd.specbuf.entry(0)
    push(env, srd, payload="a", txn=0)
    env.run()
    assert entry.offset == 1
    # Fill line 1 externally so the next spec push misses.
    ep.lines[1].try_fill("blocker")
    push(env, srd, payload="b", txn=1)
    env.run(until=env.now + 200)
    assert entry.offset == 1  # unchanged across the miss
    assert srd.stats.get("spec_failures") >= 1


def test_on_fly_throttles_to_one_outstanding(env):
    srd = make_srd(env, algorithm=FixedDelay(10_000))
    ep = make_endpoint(env)
    srd.register_spec_target(ep)
    push(env, srd, payload="a", txn=0)
    push(env, srd, payload="b", txn=1)
    env.run(until=500)
    # Only the first selection happened; the second packet is buffered.
    assert srd.stats.get("spec_selected") == 1
    assert len(srd.linktab.row(1).buffered_data) == 1


def test_ring_rotation_across_endpoints(env):
    srd = make_srd(env)
    eps = [make_endpoint(env, endpoint_id=i) for i in range(3)]
    for ep in eps:
        srd.register_spec_target(ep)
    for i in range(3):
        push(env, srd, payload=i, txn=i)
        env.run()
    # Round-robin across the SQI's ring: each endpoint received one message.
    fills = [sum(line.fills for line in ep.lines) for ep in eps]
    assert fills == [1, 1, 1]


def test_never_push_buffers_forever(env):
    srd = make_srd(env, algorithm=NeverPush())
    srd.register_spec_target(make_endpoint(env))
    push(env, srd)
    env.run()
    assert srd.stats.get("spec_selected") == 0
    assert len(srd.linktab.row(1).buffered_data) == 1


def test_failed_spec_push_retries_until_line_frees(env):
    srd = make_srd(env)
    ep = make_endpoint(env, num_lines=1)
    srd.register_spec_target(ep)
    ep.lines[0].try_fill("blocker")
    push(env, srd, payload="waiting")
    env.run(until=1000)
    assert srd.stats.get("spec_failures") >= 1
    ep.lines[0].consume()
    env.run(until=2000)
    assert ep.lines[0].data.payload == "waiting"


def test_on_demand_wins_over_speculation(env):
    """The Stage-3 mux picks consTgt whenever a request is pending."""
    srd = make_srd(env)
    spec_ep = make_endpoint(env, endpoint_id=0)
    srd.register_spec_target(spec_ep)
    from repro.vlink.packets import ConsRequest
    legacy_line = make_endpoint(env, endpoint_id=1).lines[0]
    srd.accept_request(ConsRequest(sqi=1, line=legacy_line, issued_at=0))
    env.run()
    push(env, srd, payload="routed")
    env.run()
    assert legacy_line.data.payload == "routed"
    assert srd.stats.get("ondemand_hits") == 1
    assert srd.stats.get("spec_pushes") == 0


# ------------------------------------------------------------------ security
def test_security_quota_enforced(env):
    policy = SecurityPolicy(max_entries_per_core=1)
    srd = make_srd(env, security=policy)
    srd.register_spec_target(make_endpoint(env, endpoint_id=0, core_id=2))
    with pytest.raises(RegistrationError):
        srd.register_spec_target(make_endpoint(env, endpoint_id=1, core_id=2))
    assert policy.registered_by(2) == 1


def test_security_disabled_sqi_blocks_registration_and_spec(env):
    policy = SecurityPolicy()
    policy.disable_sqi(1)
    srd = make_srd(env, security=policy)
    with pytest.raises(RegistrationError):
        srd.register_spec_target(make_endpoint(env))


def test_security_disable_endpoint_stops_speculation(env):
    policy = SecurityPolicy()
    srd = make_srd(env, security=policy)
    ep = make_endpoint(env)
    srd.register_spec_target(ep)
    policy.disable_endpoint(ep.endpoint_id)
    push(env, srd)
    env.run()
    assert srd.stats.get("spec_pushes") == 0
    assert len(srd.linktab.row(1).buffered_data) == 1
    # Re-enable: the buffered packet is not retried until a kick, but new
    # data speculates again.
    policy.enable_endpoint(ep.endpoint_id)
    push(env, srd, payload="second", txn=1)
    env.run()
    assert srd.stats.get("spec_pushes") >= 1


def test_security_policy_validation():
    with pytest.raises(RegistrationError):
        SecurityPolicy(max_entries_per_core=-1)


def test_spec_failure_rate_metric(env):
    srd = make_srd(env)
    ep = make_endpoint(env, num_lines=1)
    srd.register_spec_target(ep)
    ep.lines[0].try_fill("blocker")
    push(env, srd)
    env.run(until=400)
    assert srd.spec_failure_rate() > 0.0
