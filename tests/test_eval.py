"""Tests for metrics, runner, experiments, sweep and area/power models."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.eval import (
    PAPER_TUNED_PARAMS,
    Setting,
    comparison_experiment,
    default_parameter_grid,
    estimate_power,
    estimate_srd_area,
    estimate_vlrd_area,
    inlining_experiment,
    paper_power_bounds,
    render_fig8,
    render_fig9,
    render_fig10a,
    render_fig10b,
    render_table1,
    render_table2,
    run_workload,
    sensitivity_sweep,
    standard_settings,
    table2,
    trace_experiment,
    tuned_setting,
)
from repro.eval.metrics import RunMetrics
from repro.spamer.delay import TunedParams

SCALE = 0.06


def make_metrics(**overrides) -> RunMetrics:
    base = dict(
        workload="w", setting="s", exec_cycles=1000,
        messages_delivered=10, messages_produced=10,
        push_attempts=20, push_failures=5,
        ondemand_pushes=10, ondemand_failures=1,
        spec_pushes=10, spec_failures=4,
        bus_busy_cycles=100, bus_packets=40, request_packets=10,
        avg_line_empty=600.0, avg_line_valid=400.0,
    )
    base.update(overrides)
    return RunMetrics(**base)


# -------------------------------------------------------------------- metrics
def test_derived_metrics():
    m = make_metrics()
    assert m.failure_rate == 0.25
    assert m.spec_failure_rate == 0.4
    assert m.bus_utilization == 0.1
    assert m.push_energy == 20.0
    assert m.push_frequency == 0.02
    assert m.exec_ms == pytest.approx(1000 / 2e6)


def test_metrics_normalization():
    base = make_metrics(exec_cycles=2000, push_attempts=10)
    fast = make_metrics(exec_cycles=1000, push_attempts=30)
    assert fast.speedup_over(base) == 2.0
    assert fast.normalized_delay(base) == 0.5
    assert fast.normalized_energy(base) == 3.0


def test_metrics_zero_guards():
    m = make_metrics(push_attempts=0, push_failures=0, spec_pushes=0,
                     spec_failures=0)
    assert m.failure_rate == 0.0
    assert m.spec_failure_rate == 0.0


# --------------------------------------------------------------------- runner
def test_standard_settings_order():
    labels = [s.label for s in standard_settings()]
    assert labels == [
        "VL(baseline)", "SPAMeR(0delay)", "SPAMeR(adapt)", "SPAMeR(tuned)"
    ]


def test_run_workload_produces_metrics():
    m = run_workload("ping-pong", standard_settings()[0], scale=SCALE)
    assert m.workload == "ping-pong"
    assert m.exec_cycles > 0
    assert m.messages_delivered == m.messages_produced > 0


def test_tuned_setting_builds_with_params():
    setting = tuned_setting(TunedParams(zeta=128))
    system = setting.build_system()
    assert system.device.algorithm.params.zeta == 128


# ---------------------------------------------------------------- experiments
def test_table_renders():
    t1 = render_table1()
    assert "16xAArch64 OoO CPU @ 2 GHz" in t1
    t2 = render_table2()
    assert "(4:1)x1" in t2 and "bitonic" in t2
    assert len(table2()) == 8


def test_comparison_experiment_and_figures():
    result = comparison_experiment(
        workloads=["ping-pong", "incast"],
        scale=SCALE,
    )
    sp = result.speedups()
    assert sp["ping-pong"]["VL(baseline)"] == 1.0
    assert sp["incast"]["SPAMeR(0delay)"] > 1.0
    gm = result.geomean_speedups()
    assert gm["VL(baseline)"] == 1.0
    # Breakdown sums to execution time.
    br = result.breakdown()
    m = result.metrics["incast"]["VL(baseline)"]
    empty, nonempty = br["incast"]["VL(baseline)"]
    assert empty + nonempty == pytest.approx(m.exec_cycles)
    for render in (render_fig8, render_fig9, render_fig10a, render_fig10b):
        out = render(result)
        assert "incast" in out


def test_trace_experiment_identifies_request_bound_transactions():
    r = trace_experiment(scale=0.05)
    assert len(r.transactions) > 0
    assert r.speculative_count == 0          # VL never speculates
    assert r.request_bound_count > 0         # the paper's dark transactions
    assert r.total_potential_saving > 0


def test_trace_experiment_spamer_is_speculative():
    r = trace_experiment(setting=standard_settings()[1], scale=0.05)
    assert r.speculative_count == len(r.transactions)
    assert r.request_bound_count == 0


def test_inlining_speedup_positive():
    res = inlining_experiment(scale=SCALE)
    assert res["geomean"] > 1.0
    assert all(v >= 0.95 for k, v in res.items())


# ---------------------------------------------------------------------- sweep
def test_default_grid_contains_paper_point_dimensions():
    grid = default_parameter_grid()
    assert len(grid) == 3 * 3 * 3 * 2 * 2
    assert PAPER_TUNED_PARAMS in grid


def test_sensitivity_sweep_normalizes_to_baseline():
    points = sensitivity_sweep(
        "incast", params_grid=[PAPER_TUNED_PARAMS], scale=SCALE
    )
    labels = [p.label for p in points]
    assert labels[0] == "VL (baseline)"
    assert points[0].normalized_delay == 1.0
    assert points[0].normalized_energy == 1.0
    tuned_points = [p for p in points if p.is_paper_choice]
    assert len(tuned_points) == 1
    assert tuned_points[0].normalized_delay < 1.0  # faster than VL


# ----------------------------------------------------------------- area/power
def test_srd_area_matches_paper_anchor():
    est = estimate_srd_area()
    assert est.buffer_total_mm2 == pytest.approx(0.156, rel=1e-6)
    assert est.total_mm2 == pytest.approx(0.170, rel=1e-6)
    assert est.share_of_soc(16) < 0.01  # "< 1% of the overall SoC area"


def test_srd_within_15pct_of_vlrd():
    srd = estimate_srd_area().total_mm2
    vlrd = estimate_vlrd_area().total_mm2
    assert srd / vlrd < 1.15


def test_specbuf_size_scales_area():
    small = estimate_srd_area(DEFAULT_CONFIG.with_overrides(specbuf_entries=16))
    assert small.total_mm2 < estimate_srd_area().total_mm2


def test_power_bounds_match_paper():
    bounds = paper_power_bounds()
    assert bounds["VL(baseline)"].dynamic_mw == pytest.approx(9.33)
    assert bounds["VL(baseline)"].leakage_mw == pytest.approx(0.82)
    tuned = bounds["SPAMeR(tuned)"]
    assert tuned.total_mw == pytest.approx(9.33 * 5.03 + 0.82, rel=1e-3)
    assert tuned.total_mw < 47.75 + 0.01     # "47.75 mW ... at most"
    assert tuned.share_of_soc() < 0.0023 + 1e-4  # "about 0.23%"


def test_power_rejects_negative_frequency():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        estimate_power(-1.0)
