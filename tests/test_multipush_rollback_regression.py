"""Mutation-kill pair for the multi-push rollback machinery.

In the style of :mod:`tests.test_sticky_slot_regression`: a positive
control proves the guarded path is actually exercised by the pinned
workload, then each hand-written mutant — a plausible "simplification" a
refactor might introduce — must be *detected* by the verification stack,
not silently absorbed:

* **skip-rollback-invalidation**: the invalidation packet arrives but the
  unconfirmed consumer line is never vacated.  The line can never become
  poppable, the consumer spins forever, and the run blows its cycle
  budget — the simulator, not a metric, reports the bug.

* **double-charge-network**: the rollback charges *two* invalidation
  traversals for one landed stash.  The second arrival finds the line
  already vacated and trips the cacheline guard (only a VALID unconfirmed
  burst fill may be rolled back) as a hard :class:`DeviceError`.

The pinned program is the deterministic doomed-claim-lands shape found by
parameter scan (see tests/test_multipush_semantics.py): zero compute on
both sides staggers follower fills against consumer pops, so rolled-back
claims land and must be invalidated over the network.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import DeviceError, SimulationError
from repro.eval.runner import multipush_setting
from repro.mem.bus import PacketKind
from repro.spamer.multipush import MultiPushSpeculation
from repro.verify.fuzz import LinkSpec, ProgramSpec, run_fuzz_case

#: Deterministic doomed-claim-lands shape: 2 producers race into one
#: consumer with no compute anywhere, so burst followers land unconfirmed
#: and a pop out of predicted order dooms claims that already filled.
INVALIDATION = ProgramSpec(
    links=(LinkSpec(2, 1, 16),), producer_compute=0, consumer_compute=0
)
CONFIG = SystemConfig(num_cores=8, lines_per_endpoint=4)
SETTING = multipush_setting(4, 0.0)


def run_pinned(limit: int = 50_000_000):
    return run_fuzz_case(INVALIDATION, SETTING, config=CONFIG, limit=limit)


# ---------------------------------------------------------------- positive
def test_pinned_spec_exercises_the_invalidation_path():
    """Both mutated code paths must run, or the kills below prove nothing."""
    result = run_pinned()
    assert result.ok, result.mismatches() or result.violations
    stats = result.system.aggregate_device_stats()
    assert stats.get("spec_rollbacks") >= 1
    assert stats.get("rollback_invalidations") >= 1


# ------------------------------------------------------------------- kills
def test_skipping_line_rollback_on_invalidation_is_detected(monkeypatch):
    """Mutant: the invalidation arrives but never vacates the line.

    The stale unconfirmed fill blocks the consumer's line ring forever;
    the pinned program (healthy quiesce ~1.4k cycles) cannot finish inside
    a 300k-cycle budget.  Either detector — the stall watchdog
    (:class:`~repro.errors.SimDeadlockError`) or the kernel's run limit —
    is a kill; both derive from :class:`SimulationError`.
    """

    def skipping(self, burst, claim, spec_entry):
        # BUG: claim.line.rollback() dropped — only the bookkeeping runs.
        burst.invalidations -= 1
        self._maybe_flush(burst, spec_entry)

    monkeypatch.setattr(MultiPushSpeculation, "_invalidated", skipping)
    with pytest.raises(SimulationError):
        run_pinned(limit=300_000)


def test_double_charging_the_invalidation_network_is_detected(monkeypatch):
    """Mutant: one landed stash charged two invalidation traversals.

    The first arrival vacates the line; the second finds it EMPTY and the
    cacheline rollback guard raises instead of double-counting wasted-push
    bytes silently.
    """
    orig = MultiPushSpeculation.complete_rollback

    def double_charging(self, entry, hit, now):
        if hit:
            # BUG: a duplicate of the hit branch of complete_rollback —
            # the same stash dispatches a second invalidation transit.
            spec_entry = self.specbuf.entry(entry.spec_entry_index)
            burst = self._bursts[spec_entry.index]
            claim = burst.by_entry[id(entry)]
            burst.invalidations += 1
            network = self.device.network
            src = network.srd_node(self.device.srd_index)
            dst = network.core_node(claim.line.core_id)
            self.stats.add("rollback_invalidations")
            network.transit(
                PacketKind.COHERENCE, txn=entry.message.txn, src=src, dst=dst
            ).subscribe(
                lambda _ev, b=burst, c=claim, s=spec_entry: self._invalidated(
                    b, c, s
                )
            )
        orig(self, entry, hit, now)

    monkeypatch.setattr(
        MultiPushSpeculation, "complete_rollback", double_charging
    )
    with pytest.raises(
        DeviceError, match="only unconfirmed burst fills may be rolled back"
    ):
        run_pinned()
