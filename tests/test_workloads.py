"""Tests for the 8 benchmarks: topology (Table 2), execution, validation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.system import System
from repro.workloads import (
    Bitonic,
    Fir,
    Firewall,
    Halo,
    Incast,
    PingPong,
    Pipeline,
    Sweep,
    WorkCounter,
    make_workload,
    workload_names,
)

SCALE = 0.06  # keep each run well under a second


# -------------------------------------------------------------------- registry
def test_registry_matches_table2_order():
    assert workload_names() == [
        "ping-pong", "halo", "sweep", "incast",
        "pipeline", "firewall", "FIR", "bitonic",
    ]


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        make_workload("quantum-sort")


# -------------------------------------------------------------------- topology
@pytest.mark.parametrize(
    "name,expected",
    [
        ("ping-pong", "(1:1)x2"),
        ("halo", "(1:1)x48"),
        ("sweep", "(1:1)x48"),
        ("incast", "(4:1)x1"),
        ("pipeline", "(1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1"),
        ("firewall", "(1:1)x3+(2:1)x1"),
        ("FIR", "(1:1)x9"),
        ("bitonic", "(1:6)x1+(6:1)x1"),
    ],
)
def test_topologies_match_table2(name, expected):
    w = make_workload(name)
    assert "+".join(spec.label() for spec in w.topology()) == expected


def test_thread_counts_fit_16_cores():
    for name in workload_names():
        w = make_workload(name)
        assert 2 <= w.num_threads() <= 16


def test_table2_rows_have_descriptions():
    for name in workload_names():
        row = make_workload(name).table2_row()
        assert len(row) > 10


# ------------------------------------------------------------------- execution
@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("device,algo", [("vl", None), ("spamer", "0delay")])
def test_workload_runs_and_conserves_messages(name, device, algo):
    w = make_workload(name, scale=SCALE)
    system = System(device=device, algorithm=algo)
    w.build(system)
    system.run_to_completion(limit=100_000_000)
    w.validate()  # conservation (+ FIR numerics, bitonic sortedness)
    assert w.total_messages() > 0
    assert system.messages_delivered() == w.total_messages()


def test_workloads_are_deterministic():
    def run_once():
        w = make_workload("firewall", scale=SCALE)
        system = System(device="spamer", algorithm="tuned", seed=123)
        w.build(system)
        return system.run_to_completion(limit=100_000_000)

    assert run_once() == run_once()


def test_different_seeds_change_timing():
    def run_seed(seed):
        w = make_workload("incast", scale=SCALE)
        system = System(device="vl", seed=seed)
        w.build(system)
        return system.run_to_completion(limit=100_000_000)

    assert run_seed(1) != run_seed(2)


def test_scale_controls_message_count():
    small = make_workload("ping-pong", scale=0.05)
    big = make_workload("ping-pong", scale=0.1)
    for w in (small, big):
        system = System(device="vl")
        w.build(system)
        system.run_to_completion(limit=100_000_000)
    assert big.total_messages() == 2 * small.total_messages()


def test_invalid_scale_rejected():
    with pytest.raises(WorkloadError):
        make_workload("ping-pong", scale=0)


# ------------------------------------------------------------------ validation
def test_validate_detects_loss():
    w = make_workload("ping-pong", scale=SCALE)
    w.note_produced("ghost")
    with pytest.raises(WorkloadError, match="conservation"):
        w.validate()


def test_work_counter_guards_overrun():
    counter = WorkCounter(2)
    counter.mark_done()
    counter.mark_done()
    assert counter.all_done()
    with pytest.raises(WorkloadError):
        counter.mark_done()


# ---------------------------------------------------------------- FIR numerics
def test_fir_output_matches_convolution():
    w = make_workload("FIR", scale=SCALE)
    system = System(device="spamer", algorithm="0delay")
    w.build(system)
    system.run_to_completion(limit=100_000_000)
    w.validate()
    x = np.asarray(w.inputs)
    expected = np.convolve(x, w.coefficients)[: len(x)]
    got = np.empty(len(x))
    for n, y in w.results:
        got[n] = y
    assert np.allclose(got, expected)


def test_fir_validate_rejects_corrupted_output():
    w = make_workload("FIR", scale=SCALE)
    system = System(device="vl")
    w.build(system)
    system.run_to_completion(limit=100_000_000)
    w.results[0] = (w.results[0][0], w.results[0][1] + 1.0)
    with pytest.raises(WorkloadError, match="mismatch"):
        w.validate()


# ------------------------------------------------------------- bitonic results
def test_bitonic_blocks_come_back_sorted():
    w = make_workload("bitonic", scale=SCALE)
    system = System(device="spamer", algorithm="adapt")
    w.build(system)
    system.run_to_completion(limit=100_000_000)
    w.validate()
    assert len(w.sorted_blocks) == w._blocks
    for block in w.sorted_blocks.values():
        assert list(block) == sorted(block)


# ---------------------------------------------------------------- class knobs
def test_incast_master_lines_differ_by_mode():
    for device, algo, expected in (("vl", None, 1), ("spamer", "0delay", 32)):
        w = make_workload("incast", scale=SCALE)
        system = System(device=device, algorithm=algo)
        w.build(system)
        master = system.library.consumers[0]
        assert len(master.lines) == expected
