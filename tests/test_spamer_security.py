"""Tests for the speculation security controls (spamer/security.py)."""

import pytest

from repro.errors import RegistrationError
from repro.mem.address import Segment
from repro.spamer.security import SecurityPolicy
from repro.vlink.endpoint import ConsumerEndpoint


def make_endpoint(env, endpoint_id=0, sqi=1, core_id=0):
    return ConsumerEndpoint(
        env, endpoint_id, sqi, Segment(0x1000, 4096), core_id, 4, spec_enabled=True
    )


def test_negative_quota_rejected():
    with pytest.raises(RegistrationError):
        SecurityPolicy(max_entries_per_core=-1)


def test_speculation_allowed_by_default(env):
    policy = SecurityPolicy()
    assert policy.speculation_allowed(make_endpoint(env))


def test_sqi_kill_switch(env):
    policy = SecurityPolicy()
    ep = make_endpoint(env, sqi=3)
    policy.disable_sqi(3)
    assert not policy.speculation_allowed(ep)
    assert policy.speculation_allowed(make_endpoint(env, sqi=4))
    policy.enable_sqi(3)
    assert policy.speculation_allowed(ep)
    policy.enable_sqi(3)  # idempotent on an already-enabled SQI


def test_endpoint_kill_switch(env):
    policy = SecurityPolicy()
    ep = make_endpoint(env, endpoint_id=7)
    policy.disable_endpoint(7)
    assert not policy.speculation_allowed(ep)
    assert policy.speculation_allowed(make_endpoint(env, endpoint_id=8))
    policy.enable_endpoint(7)
    assert policy.speculation_allowed(ep)


def test_registration_refused_on_disabled_sqi(env):
    policy = SecurityPolicy()
    policy.disable_sqi(1)
    with pytest.raises(RegistrationError, match="SQI 1"):
        policy.check_registration(make_endpoint(env, sqi=1))
    assert policy.registered_by(0) == 0  # refusal does not consume quota


def test_per_core_quota(env):
    policy = SecurityPolicy(max_entries_per_core=2)
    policy.check_registration(make_endpoint(env, core_id=0))
    policy.check_registration(make_endpoint(env, core_id=0))
    with pytest.raises(RegistrationError, match="quota"):
        policy.check_registration(make_endpoint(env, core_id=0))
    # other cores have their own budget
    policy.check_registration(make_endpoint(env, core_id=1))
    assert policy.registered_by(0) == 2
    assert policy.registered_by(1) == 1
    assert policy.registered_by(9) == 0


def test_zero_quota_rejects_everything(env):
    policy = SecurityPolicy(max_entries_per_core=0)
    with pytest.raises(RegistrationError):
        policy.check_registration(make_endpoint(env))


def test_unlimited_quota(env):
    policy = SecurityPolicy()
    for _ in range(100):
        policy.check_registration(make_endpoint(env, core_id=0))
    assert policy.registered_by(0) == 100
