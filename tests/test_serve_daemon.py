"""Daemon lifecycle: warm pool, cache hits, crash isolation, spool protocol.

The daemon's polling loop (:meth:`ServeDaemon.step`) is driven directly so
every scenario — including worker death and deadlocked simulations — runs
deterministically in-process; the spool tests cover the same loop the
``repro serve start`` process runs.
"""

import json
import os
import pickle

import pytest

from repro.errors import AdmissionError, ServeError, SimDeadlockError
from repro.eval.parallel import RunRequest, run_requests
from repro.eval.runner import setting_by_name
from repro.serve import (
    JobState,
    ResultCache,
    ServeClient,
    ServeDaemon,
    Spool,
    metrics_bytes,
)

SCALE = 0.05
SEED = 0xC0FFEE


def _request(workload="ping-pong", setting="tuned", seed=SEED, **kwargs):
    return RunRequest.from_setting(
        workload, setting_by_name(setting), scale=SCALE, seed=seed, **kwargs
    )


def _die(request):
    """A runner whose worker process dies hard (no exception to pickle)."""
    os._exit(13)


# --------------------------------------------------------------- lifecycle
def test_daemon_runs_jobs_and_matches_run_requests():
    requests = [_request("ping-pong"), _request("incast")]
    with ServeDaemon(jobs=1) as daemon:
        jobs = [daemon.submit(r) for r in requests]
        daemon.drain()
    expected = run_requests(requests)
    assert [j.state for j in jobs] == [JobState.DONE, JobState.DONE]
    assert [j.metrics for j in jobs] == expected
    for job in jobs:
        assert job.wait_s is not None and job.wait_s >= 0
        assert job.service_s is not None and job.service_s >= 0


def test_cache_hit_is_byte_identical_and_skips_the_queue():
    request = _request()
    with ServeDaemon(jobs=1) as daemon:
        first = daemon.submit(request)
        daemon.drain()
        assert not first.cache_hit
        hit = daemon.submit(request)
        assert hit.cache_hit
        assert hit.state is JobState.DONE
        # Born terminal: no queue depth consumed, nothing to drain.
        assert daemon.queue.depth == 0
        assert metrics_bytes(hit.metrics) == metrics_bytes(first.metrics)
        assert daemon.cache.hits == 1
        counters = daemon.metrics.as_dict()["counters"]
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.cache.misses"] == 1


def test_cache_disabled_daemon_recomputes():
    request = _request()
    with ServeDaemon(jobs=1, cache=False) as daemon:
        daemon.submit(request)
        daemon.drain()
        again = daemon.submit(request)
        daemon.drain()
        assert not again.cache_hit
        assert again.state is JobState.DONE


def test_stop_is_idempotent_and_cancels_backlog():
    daemon = ServeDaemon(jobs=1)
    daemon.start()
    job = daemon.submit(_request())
    daemon.stop()
    daemon.stop()  # second call is a no-op
    assert daemon.stopped
    assert job.state in (JobState.DONE, JobState.CANCELLED)
    with pytest.raises(AdmissionError):
        daemon.submit(_request())


def test_drain_finishes_in_flight_jobs():
    with ServeDaemon(jobs=1) as daemon:
        jobs = [daemon.submit(_request()) for _ in range(3)]
        # Dispatch without harvesting, then drain: everything completes.
        daemon.step()
        daemon.drain()
        assert all(j.state is JobState.DONE for j in jobs)


# ---------------------------------------------------------- crash isolation
def test_deadlock_fails_typed_and_daemon_keeps_serving():
    # The `never` ablation on fetch-skipping consumers deadlocks by
    # construction; the daemon must fail that job with the typed error —
    # .tick/.blocked intact across the process boundary — and keep going.
    with ServeDaemon(jobs=1) as daemon:
        bad = daemon.submit(_request("incast", setting="never"))
        good = daemon.submit(_request("ping-pong"))
        daemon.drain()
        assert bad.state is JobState.FAILED
        assert isinstance(bad.error, SimDeadlockError)
        assert bad.error.tick > 0
        assert bad.error.blocked
        assert good.state is JobState.DONE
        counters = daemon.metrics.as_dict()["counters"]
        assert counters["serve.jobs.failed"] == 1
        assert counters["serve.jobs.completed"] == 1


def test_worker_death_fails_job_and_rebuilds_pool():
    daemon = ServeDaemon(jobs=1, runner=_die)
    daemon.start()
    job = daemon.submit(_request())
    daemon.drain()
    assert job.state is JobState.FAILED
    assert isinstance(job.error, ServeError)
    assert "worker died" in str(job.error)
    counters = daemon.metrics.as_dict()["counters"]
    assert counters["serve.pool.rebuilds"] == 1
    # The rebuilt pool serves the next job (with a working runner again).
    from repro.eval.parallel import execute_request

    daemon._runner = execute_request
    recovered = daemon.submit(_request())
    daemon.drain()
    assert recovered.state is JobState.DONE
    daemon.stop()


# -------------------------------------------------------------------- spool
def test_spool_round_trip_submit_to_result(tmp_path):
    spool = Spool(tmp_path / "spool")
    request = _request()
    job_id = spool.submit(request)
    daemon = ServeDaemon(spool=spool, jobs=1)
    daemon.start()
    daemon.drain()
    payload = spool.read_result(job_id)
    assert payload is not None
    assert payload["state"] == "done"
    assert payload["error"] is None
    metrics = pickle.loads(payload["metrics_bytes"])
    assert metrics == run_requests([request])[0]
    # The cache landed on disk under the spool, so a *fresh* daemon on
    # the same spool serves the repeat as a hit.
    daemon.stop()
    second = ServeDaemon(spool=spool, jobs=1)
    second.start()
    repeat_id = spool.submit(request)
    second.drain()
    repeat = spool.read_result(repeat_id)
    assert repeat["cache_hit"] is True
    assert repeat["metrics_bytes"] == payload["metrics_bytes"]
    second.stop()


def test_spool_rejection_travels_typed(tmp_path):
    spool = Spool(tmp_path / "spool")
    ids = [spool.submit(_request(seed=SEED + i)) for i in range(4)]
    daemon = ServeDaemon(spool=spool, jobs=1, max_depth=1, cache=False)
    daemon.start()
    daemon._ingest()  # first fills the queue; the rest hit the gate
    rejected = [
        job_id for job_id in ids
        if (payload := spool.read_result(job_id)) is not None
        and payload["state"] == "rejected"
    ]
    assert rejected
    error = spool.read_result(rejected[0])["error"]
    assert isinstance(error, AdmissionError)
    assert error.limit == 1
    # The client surface re-raises it typed.
    client = ServeClient(spool)
    with pytest.raises(AdmissionError):
        client.result(rejected[0], timeout=1.0)
    daemon.stop()


def test_client_status_and_stats(tmp_path):
    spool = Spool(tmp_path / "spool")
    client = ServeClient(spool)
    assert not client.ping()
    job_id = client.submit(_request())
    assert client.status(job_id)["state"] == "pending"
    daemon = ServeDaemon(spool=spool, jobs=1)
    daemon.start()
    daemon.drain()
    status = client.status(job_id)
    assert status["state"] == "done"
    assert status["cache_hit"] is False
    spool.write_status(daemon.status())
    stats = client.stats()
    assert stats["completed"] == 1
    assert stats["cache"]["stores"] == 1
    daemon.stop()


# -------------------------------------------------------------- observability
def test_event_log_records_the_job_lifecycle(tmp_path):
    events_path = tmp_path / "events.jsonl"
    with ServeDaemon(jobs=1, events_path=events_path) as daemon:
        job = daemon.submit(_request())
        daemon.drain()
    lines = [json.loads(line) for line in events_path.read_text().splitlines()]
    by_event = {line["event"] for line in lines}
    assert {"start", "submitted", "dispatched", "done", "drained"} <= by_event
    done = next(l for l in lines if l["event"] == "done")
    assert done["job"] == job.job_id
    assert done["service_ms"] >= 0


def test_serve_metrics_separate_wait_from_service():
    with ServeDaemon(jobs=1) as daemon:
        daemon.submit(_request())
        daemon.drain()
        doc = daemon.metrics.as_dict()
        assert "serve.job.wait_ms" in doc["histograms"]
        assert "serve.job.service_ms" in doc["histograms"]
        assert doc["gauges"]["serve.pool.workers"] == 1.0
        status = daemon.status()
        assert status["workers"] == 1
        assert status["completed"] == 1
