"""Typed errors must survive a pickle round-trip with diagnostics intact.

The parallel executor ships worker-side failures back to the parent
process via pickle; a typed error that loses its payload (or worse, fails
to unpickle) would degrade every crash report into an opaque
``PicklingError``.  These tests pin the ``__reduce__`` contract for the
two errors that carry structured diagnostics.
"""

import pickle

import pytest

from repro.errors import SimDeadlockError, VerificationError


@pytest.mark.parametrize("protocol", range(2, pickle.HIGHEST_PROTOCOL + 1))
def test_deadlock_error_round_trips(protocol):
    err = SimDeadlockError(
        "no runnable work at tick 42", tick=42, blocked=("core0", "core3")
    )
    clone = pickle.loads(pickle.dumps(err, protocol))
    assert type(clone) is SimDeadlockError
    assert str(clone) == str(err)
    assert clone.tick == 42
    assert clone.blocked == ("core0", "core3")


@pytest.mark.parametrize("protocol", range(2, pickle.HIGHEST_PROTOCOL + 1))
def test_verification_error_round_trips(protocol):
    from repro.verify.invariants import InvariantViolation

    violation = InvariantViolation(
        tick=7, rule="conservation", detail="1 message lost"
    )
    err = VerificationError("1 invariant violated", violations=(violation,))
    clone = pickle.loads(pickle.dumps(err, protocol))
    assert type(clone) is VerificationError
    assert str(clone) == str(err)
    assert clone.violations == (violation,)
    assert clone.violations[0].rule == "conservation"


def test_deadlock_error_defaults_survive():
    clone = pickle.loads(pickle.dumps(SimDeadlockError("bare")))
    assert clone.tick == 0 and clone.blocked == ()
