"""ServeExecutor: the run_requests-shaped surface over the serve layer.

The contract under test is substitution: anywhere ``run_requests`` goes —
``repro batch``, the load sweep, the burst autotuner — a
:class:`~repro.serve.ServeExecutor` must produce byte-identical results,
embedded or over a spool, cached or fresh.  Plus the warm-pool satellite:
``run_requests(pool=...)`` reuses a live executor without changing a bit.
"""

import dataclasses
import threading

import pytest

from repro.errors import AdmissionError, ConfigError
from repro.eval.batch import run_batch
from repro.eval.parallel import RunRequest, make_pool, run_requests
from repro.eval.runner import setting_by_name
from repro.serve import ServeDaemon, ServeExecutor, Spool

SCALE = 0.05
SEED = 0xC0FFEE


def _requests(n=4):
    matrix = [
        ("ping-pong", "vl"), ("ping-pong", "tuned"),
        ("incast", "vl"), ("incast", "tuned"),
    ]
    return [
        RunRequest.from_setting(w, setting_by_name(s), scale=SCALE, seed=SEED)
        for w, s in matrix[:n]
    ]


def _snap(metrics_list):
    return [dataclasses.asdict(m) for m in metrics_list]


# ---------------------------------------------------------------- embedded
def test_embedded_executor_matches_run_requests():
    requests = _requests()
    expected = _snap(run_requests(requests))
    with ServeExecutor.local(jobs=1) as executor:
        assert _snap(executor(requests)) == expected
        # Second pass: pure cache hits, still byte-identical.
        assert _snap(executor(requests)) == expected
        assert executor.daemon.cache.hits == len(requests)


def test_embedded_executor_retries_past_the_admission_gate():
    requests = _requests()
    # max_depth=1 guarantees mid-grid rejections; the executor must treat
    # them as flow control and still return every result in order.
    with ServeExecutor.local(jobs=1, max_depth=1) as executor:
        assert _snap(executor(requests)) == _snap(run_requests(requests))


def test_executor_reraises_the_first_typed_failure():
    from repro.errors import SimDeadlockError

    bad = RunRequest.from_setting(
        "incast", setting_by_name("never"), scale=SCALE, seed=SEED
    )
    with ServeExecutor.local(jobs=1) as executor:
        with pytest.raises(SimDeadlockError):
            executor([_requests(1)[0], bad])


def test_executor_constructor_contracts():
    with pytest.raises(ConfigError):
        ServeExecutor()  # neither backend
    daemon = ServeDaemon(jobs=1)
    try:
        with pytest.raises(ConfigError):
            ServeExecutor(daemon=daemon, client=object())  # both
        with pytest.raises(ConfigError):
            ServeExecutor(daemon=daemon, chunk=0)
    finally:
        daemon.stop()


# ------------------------------------------------------------------ remote
def test_remote_executor_matches_run_requests(tmp_path):
    requests = _requests(2)
    expected = _snap(run_requests(requests))
    spool = Spool(tmp_path / "spool")
    daemon = ServeDaemon(spool=spool, jobs=1)
    thread = threading.Thread(target=daemon.serve_forever,
                              kwargs={"poll_s": 0.01}, daemon=True)
    thread.start()
    try:
        executor = ServeExecutor.remote(spool, timeout=120.0)
        assert _snap(executor(requests)) == expected
    finally:
        spool.request_stop()
        thread.join(timeout=30.0)
    assert not thread.is_alive()


# ------------------------------------------------------------- eval routing
def test_run_batch_routes_through_the_executor():
    spec = {
        "name": "serve-routing",
        "workloads": ["ping-pong"],
        "settings": ["vl", "tuned"],
        "scale": SCALE,
    }
    direct = run_batch(spec)
    with ServeExecutor.local(jobs=1) as executor:
        served = run_batch(spec, executor=executor)
    assert served == direct


def test_load_experiment_routes_through_the_executor():
    from repro.eval.load import load_experiment

    kwargs = dict(
        workload="ping-pong", settings=("tuned",),
        topologies=("single-bus",), rhos=(0.5,), scale=SCALE,
    )
    direct = load_experiment(**kwargs)
    with ServeExecutor.local(jobs=1) as executor:
        served = load_experiment(executor=executor, **kwargs)
    assert served.to_json() == direct.to_json()


def test_autotune_burst_routes_through_the_executor():
    from repro.eval.autotune import autotune_burst

    kwargs = dict(ks=(1, 2), p_mins=(0.75,), scale=0.02)
    direct = autotune_burst("incast", **kwargs)
    with ServeExecutor.local(jobs=1) as executor:
        served = autotune_burst("incast", executor=executor, **kwargs)
    assert _snap([p.metrics for p in served.points]) == _snap(
        [p.metrics for p in direct.points]
    )
    assert served.best.score == direct.best.score
    assert served.baseline_score == direct.baseline_score


# --------------------------------------------------------------- warm pool
def test_run_requests_reuses_a_live_pool_byte_identically():
    requests = _requests(2)
    expected = _snap(run_requests(requests, jobs=2))
    pool = make_pool(2)
    try:
        first = run_requests(requests, pool=pool)
        second = run_requests(requests, pool=pool)
        assert _snap(first) == expected
        assert _snap(second) == expected
    finally:
        pool.shutdown(wait=True)


def test_make_pool_is_prewarmed():
    pool = make_pool(2, warm=True)
    try:
        # Warmed pools have already spawned their full complement.
        assert len(pool._processes) == 2
    finally:
        pool.shutdown(wait=True)
