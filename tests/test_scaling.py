"""Tests for the interconnect scaling study (repro.eval.scaling + CLI)."""

import json

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.eval.scaling import (
    ScalingResult,
    scaling_config,
    scaling_experiment,
    scaling_requests,
)

# One tiny 2-cell matrix reused by most tests: fast, still exercises the
# cross-topology baseline bookkeeping.
TINY = dict(cores=(8,), topologies=("single-bus", "mesh"), settings=("vl", "tuned"),
            scale=0.05)


# ----------------------------------------------------------------- config
def test_scaling_config_keeps_table1_at_16_cores():
    config = scaling_config(16, topology="single-bus")
    stock = SystemConfig()
    assert config.prodbuf_entries == stock.prodbuf_entries == 64
    assert config.linktab_entries == stock.linktab_entries
    assert config.num_cores == 16


def test_scaling_config_grows_buffers_per_core():
    config = scaling_config(64)
    assert config.num_cores == 64
    assert config.topology == "mesh"
    assert config.prodbuf_entries == 256  # 4 per core
    assert config.specbuf_entries == 256
    config = scaling_config(8)
    assert config.prodbuf_entries == 64  # never below Table 1's pool


def test_scaling_config_rejects_zero_cores():
    with pytest.raises(ConfigError):
        scaling_config(0)


# --------------------------------------------------------------- requests
def test_request_matrix_structure_and_order():
    requests = scaling_requests(cores=(8, 16), topologies=("single-bus", "mesh"),
                                settings=("vl", "tuned"), scale=0.05)
    assert len(requests) == 8  # 2 cores x 2 topologies x 2 settings
    cells = [(r.config.num_cores, r.config.topology) for r in requests]
    # (cores, topology, setting) nesting order, settings innermost.
    assert cells == [(8, "single-bus")] * 2 + [(8, "mesh")] * 2 + \
        [(16, "single-bus")] * 2 + [(16, "mesh")] * 2
    assert all(r.workload == "scaling-halo" for r in requests)


# ------------------------------------------------------------- experiment
def test_tiny_experiment_report_shape():
    result = scaling_experiment(**TINY)
    assert len(result.rows) == 4
    rendered = result.render()
    assert "Scaling study" in rendered
    assert "single-bus" in rendered and "mesh" in rendered
    # Baselines are per-(cores, topology): both VL rows read 1.00x.
    assert rendered.count("1.00x") == 2
    doc = json.loads(result.to_json())
    assert len(doc) == 4
    assert {row["setting"] for row in doc} == {"VL(baseline)", "SPAMeR(tuned)"}
    assert all(row["speedup"] is not None for row in doc)


def test_net_columns_only_on_noc_rows():
    result = scaling_experiment(**TINY)
    by_topology = {row["topology"]: row for row in result.rows}
    assert by_topology["single-bus"]["net_util"] == 0.0
    assert by_topology["mesh"]["net_util"] > 0.0


def test_experiment_deterministic_across_jobs():
    serial = scaling_experiment(**TINY, jobs=1)
    parallel = scaling_experiment(**TINY, jobs=2)
    assert serial.render() == parallel.render()
    assert serial.to_json() == parallel.to_json()


def test_speedup_without_baseline_row_is_dash():
    result = ScalingResult()
    result.rows.append({
        "cores": 8, "topology": "mesh", "srds": 1, "setting": "SPAMeR(tuned)",
        "cycles": 100, "messages": 4, "bus_util": 0.1, "net_util": 0.0,
        "net_wait": 0,
    })
    assert result.speedup(result.rows[0]) is None
    assert "| -" in result.render()


# -------------------------------------------------------------------- CLI
def test_scale_cli_smoke(tmp_path, capsys):
    out_file = tmp_path / "scale.json"
    assert main([
        "scale", "--cores", "8", "--topology", "mesh", "--settings",
        "vl,tuned", "--scale", "0.05", "--out", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "Scaling study" in out
    assert "mesh" in out
    doc = json.loads(out_file.read_text())
    assert len(doc) == 2


def test_scale_cli_multi_srd(capsys):
    assert main([
        "scale", "--cores", "8", "--topology", "crossbar", "--settings",
        "tuned", "--srds", "2", "--scale", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    assert "| 2" in out  # srds column


# ------------------------------------------------------------------ bench
def test_bench_net_flag_builds_scaling_matrix(capsys):
    import importlib.util
    from pathlib import Path

    bench_path = Path(__file__).resolve().parents[1] / "tools" / "bench.py"
    spec = importlib.util.spec_from_file_location("bench_tool_net", bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    assert bench.main(["--net", "--quick", "--scale", "0.05", "--jobs", "1"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["name"] == "net-scaling-wallclock"
    assert doc["identical"] is True
    assert doc["matrix"]["workloads"] == ["scaling-halo"]
    assert doc["matrix"]["cores"] == [8, 16]
    assert doc["matrix"]["runs"] == 8
